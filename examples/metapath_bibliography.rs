//! Meta-path walks over a heterogeneous bibliographic graph.
//!
//! Reproduces the paper's §2.2 motivating scenario: a publication graph
//! with authors and papers, where the scheme
//! `isAuthor → cites → authoredBy` generates citation chains — long walks
//! alternating author→paper, paper→paper, paper→author hops.
//!
//! Edge types: 0 = `isAuthor` (author → paper), 1 = `authoredBy`
//! (paper → author), 2 = `cites` (paper → paper).
//!
//! ```text
//! cargo run --release --example metapath_bibliography
//! ```

use knightking::prelude::*;
use knightking::sampling::DeterministicRng as Rng;

const AUTHORS: u32 = 2_000;
const PAPERS: u32 = 8_000;

fn build_bibliography(seed: u64) -> CsrGraph {
    let mut rng = Rng::new(seed);
    // Vertices [0, AUTHORS) are authors; [AUTHORS, AUTHORS+PAPERS) papers.
    let mut b = GraphBuilder::directed((AUTHORS + PAPERS) as usize).with_edge_types();
    // Each paper has 1-4 authors and cites up to 12 earlier papers
    // (preferentially recent ones, giving a citation skew).
    for p in 0..PAPERS {
        let paper = AUTHORS + p;
        let n_auth = 1 + rng.next_bounded(4) as u32;
        for _ in 0..n_auth {
            let a = rng.next_bounded(AUTHORS as u64) as u32;
            b.add_typed_edge(a, paper, 0); // isAuthor
            b.add_typed_edge(paper, a, 1); // authoredBy
        }
        if p > 0 {
            let n_cites = rng.next_bounded(13).min(p as u64);
            for _ in 0..n_cites {
                // Bias towards recent papers: sample two, keep the later.
                let c1 = rng.next_bounded(p as u64) as u32;
                let c2 = rng.next_bounded(p as u64) as u32;
                b.add_typed_edge(paper, AUTHORS + c1.max(c2), 2); // cites
            }
        }
    }
    b.build()
}

fn kind(v: VertexId) -> &'static str {
    if v < AUTHORS {
        "author"
    } else {
        "paper"
    }
}

fn main() {
    let graph = build_bibliography(17);
    println!(
        "bibliographic graph: {} authors, {} papers, {} typed edges",
        AUTHORS,
        PAPERS,
        graph.edge_count()
    );

    // Citation-chain scheme: isAuthor → cites → authoredBy, repeated
    // cyclically (§2.2: "generating long citation chains").
    let scheme = vec![0u8, 2, 1];
    let walk = MetaPath::new(vec![scheme], 30, 23);

    // Start walkers at authors only.
    let starts: Vec<VertexId> = (0..AUTHORS).collect();
    let result = RandomWalkEngine::new(&graph, walk, WalkConfig::with_nodes(4, 29))
        .run(WalkerStarts::Explicit(starts));

    let full = result.paths.iter().filter(|p| p.len() == 31).count();
    let lens: Vec<usize> = result.paths.iter().map(|p| p.len() - 1).collect();
    let mean_len = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
    println!(
        "\n{} citation-chain walks in {:?}: mean length {:.1}, {} reached the full 30 hops",
        result.paths.len(),
        result.elapsed,
        mean_len,
        full
    );
    println!(
        "(walks end early when a paper cites nothing — the engine detects the \
         zero-probability-mass case exactly; {} full scans were triggered)",
        result.metrics.fallback_scans
    );

    // Show one chain with vertex roles.
    let sample = result
        .paths
        .iter()
        .find(|p| p.len() >= 7)
        .expect("some chain of length ≥ 2 template repetitions");
    println!("\nsample chain:");
    for w in sample.windows(2).take(6) {
        let arrow = match (kind(w[0]), kind(w[1])) {
            ("author", "paper") => "isAuthor",
            ("paper", "author") => "authoredBy",
            _ => "cites",
        };
        println!(
            "  {} {} --{arrow}--> {} {}",
            kind(w[0]),
            w[0],
            kind(w[1]),
            w[1]
        );
    }

    // Sanity: the pattern must alternate author/paper/paper/author/...
    for p in &result.paths {
        for (k, w) in p.windows(2).enumerate() {
            let expected = match k % 3 {
                0 => ("author", "paper"),
                1 => ("paper", "paper"),
                _ => ("paper", "author"),
            };
            assert_eq!((kind(w[0]), kind(w[1])), expected, "scheme violated");
        }
    }
    println!("\nall chains verified against the isAuthor → cites → authoredBy template");
}
