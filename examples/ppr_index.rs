//! Fully personalized PageRank via pre-computed walk fingerprints.
//!
//! The PowerWalk-style usage the paper describes (§2.2): run many short
//! walks with restart probability `Pt` from *every* vertex, store the walk
//! endpoints/visits as an index ("fingerprints"), and answer PPR queries
//! from visit frequencies. A vertex's PPR vector w.r.t. source `s` is
//! estimated by the normalized visit counts of walks started at `s`.
//!
//! ```text
//! cargo run --release --example ppr_index
//! ```

use std::collections::HashMap;

use knightking::prelude::*;

/// Walks started per source vertex (more walks → tighter estimates).
const WALKS_PER_SOURCE: u64 = 16;

fn main() {
    let graph = gen::presets::livejournal_like(12, gen::GenOptions::seeded(5));
    let v = graph.vertex_count() as u64;
    println!("graph: |V| = {}, stored |E| = {}", v, graph.edge_count());

    // Pt = 1/80 → expected walk length 79; |V|·16 walkers.
    let starts: Vec<VertexId> = (0..v * WALKS_PER_SOURCE)
        .map(|i| (i % v) as VertexId)
        .collect();
    let result = RandomWalkEngine::new(&graph, Ppr::new(1.0 / 80.0), WalkConfig::with_nodes(4, 9))
        .run(WalkerStarts::Explicit(starts));
    println!(
        "index built: {} walks, {} total steps in {:?}",
        result.paths.len(),
        result.metrics.steps,
        result.elapsed
    );
    let longest = result.paths.iter().map(|p| p.len()).max().unwrap();
    println!("longest walk: {longest} steps (expected mean ≈ 80 — the straggler effect of §6.2)");

    // Build the index: per-source visit counts.
    let mut index: HashMap<VertexId, HashMap<VertexId, u64>> = HashMap::new();
    for path in &result.paths {
        let source = path[0];
        let per_source = index.entry(source).or_default();
        for &x in path {
            *per_source.entry(x).or_default() += 1;
        }
    }

    // Answer a query: top-10 PPR for the highest-degree vertex.
    let source = (0..graph.vertex_count() as VertexId)
        .max_by_key(|&x| graph.degree(x))
        .unwrap();
    let counts = &index[&source];
    let total: u64 = counts.values().sum();
    let mut scored: Vec<(VertexId, f64)> = counts
        .iter()
        .map(|(&x, &c)| (x, c as f64 / total as f64))
        .collect();
    scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "\ntop-10 personalized PageRank for source {source} (degree {}):",
        graph.degree(source)
    );
    for (x, score) in scored.iter().take(10) {
        println!(
            "  vertex {x:>6}  ppr ≈ {score:.4}  (degree {:>5}, direct neighbor: {})",
            graph.degree(*x),
            graph.has_edge(source, *x)
        );
    }
    println!("\n(the source itself should rank first — restart mass concentrates there)");
}
