//! node2vec walk-corpus generation — the paper's motivating application.
//!
//! node2vec feeds its walk sequences into a SkipGram model; the random
//! walk phase dominates the pipeline (a Spark implementation spends 98.8%
//! of its time there, §1). This example generates the corpus the
//! embedding stage would consume: `|V|` walks of length 80, then reports
//! corpus statistics and the vertex co-occurrence counts a SkipGram window
//! would see.
//!
//! ```text
//! cargo run --release --example node2vec_corpus
//! ```

use std::collections::HashMap;

use knightking::prelude::*;

/// SkipGram context window radius.
const WINDOW: usize = 5;

fn main() {
    let graph = gen::presets::friendster_like(13, gen::GenOptions::paper_weighted(11));
    println!(
        "graph: |V| = {}, stored |E| = {} (weighted)",
        graph.vertex_count(),
        graph.edge_count()
    );

    // BFS-flavoured walks (q > 1 keeps them local), as node2vec recommends
    // for structural equivalence tasks.
    let result = RandomWalkEngine::new(
        &graph,
        Node2Vec::new(1.0, 2.0, 80),
        WalkConfig::with_nodes(4, 3),
    )
    .run(WalkerStarts::PerVertex);

    let corpus = &result.paths;
    let tokens: usize = corpus.iter().map(|p| p.len()).sum();
    println!(
        "\ncorpus: {} sequences, {} tokens, generated in {:?}",
        corpus.len(),
        tokens,
        result.elapsed
    );
    println!(
        "sampling: {:.3} Pd evaluations/step, {} remote state queries",
        result.metrics.edges_per_step(),
        result.metrics.queries
    );

    // Vocabulary coverage: how many vertices appear at least once.
    let mut seen = vec![false; graph.vertex_count()];
    for path in corpus {
        for &v in path {
            seen[v as usize] = true;
        }
    }
    let covered = seen.iter().filter(|&&s| s).count();
    println!(
        "vocabulary coverage: {covered}/{} vertices ({:.1}%)",
        graph.vertex_count(),
        100.0 * covered as f64 / graph.vertex_count() as f64
    );

    // SkipGram-style co-occurrence pairs within the window, for the most
    // frequent vertex.
    let mut freq: HashMap<VertexId, u64> = HashMap::new();
    for path in corpus {
        for &v in path {
            *freq.entry(v).or_default() += 1;
        }
    }
    let (&hot, &hot_count) = freq
        .iter()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty corpus");
    println!(
        "\nmost visited vertex: {hot} ({hot_count} visits, degree {})",
        graph.degree(hot)
    );

    let mut ctx: HashMap<VertexId, u64> = HashMap::new();
    for path in corpus {
        for (i, &v) in path.iter().enumerate() {
            if v != hot {
                continue;
            }
            let lo = i.saturating_sub(WINDOW);
            let hi = (i + WINDOW + 1).min(path.len());
            for &c in &path[lo..hi] {
                if c != hot {
                    *ctx.entry(c).or_default() += 1;
                }
            }
        }
    }
    let mut top: Vec<(VertexId, u64)> = ctx.into_iter().collect();
    top.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("top-5 SkipGram contexts of vertex {hot}:");
    for (v, c) in top.iter().take(5) {
        println!(
            "  vertex {v:>6}: {c} co-occurrences (neighbor: {})",
            graph.has_edge(hot, *v)
        );
    }

    // --- Close the loop: train the embeddings the corpus exists for.
    use knightking::walks::embedding::{train_skipgram, SkipGramConfig};
    let t0 = std::time::Instant::now();
    let emb = train_skipgram(
        corpus,
        graph.vertex_count(),
        SkipGramConfig {
            dims: 32,
            epochs: 1,
            ..Default::default()
        },
    );
    println!(
        "\ntrained {}-d SkipGram embeddings in {:?} (walks took {:?} — the paper's point)",
        emb.dims(),
        t0.elapsed(),
        result.elapsed,
    );
    println!("nearest neighbors of vertex {hot} in embedding space:");
    for (v, sim) in emb.most_similar(hot, 5) {
        println!(
            "  vertex {v:>6}: cosine {sim:.3} (graph neighbor: {})",
            graph.has_edge(hot, v)
        );
    }
}
