//! Writing a custom second-order algorithm against the KnightKing API.
//!
//! Implements a "triangle-closing walk": from `v` (having come from `t`),
//! strongly prefer candidates `x` that close a triangle with the previous
//! vertex (`x` adjacent to `t`), never revisit `t`, and rarely take
//! non-triangle edges. Useful as a community-exploration primitive — and
//! a template showing every API hook: dynamic component, bounds, outlier
//! declaration, state queries, custom walker state, and termination.
//!
//! ```text
//! cargo run --release --example custom_walk
//! ```

use knightking::prelude::*;

/// Per-walker statistics we maintain ourselves via `on_move`.
#[derive(Debug, Clone, Default)]
struct Stats {
    triangles_closed: u32,
}

// Custom walker state needs a wire encoding so walkers can migrate
// between processes on the TCP transport.
impl Wire for Stats {
    fn wire_size(&self) -> usize {
        self.triangles_closed.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.triangles_closed.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(Stats {
            triangles_closed: u32::decode(input)?,
        })
    }
}

struct TriangleWalk {
    /// Preference multiplier for triangle-closing candidates.
    boost: f64,
    len: u32,
}

impl WalkerProgram for TriangleWalk {
    type Data = Stats;
    type Query = VertexId; // candidate x, routed to owner of prev t
    type Answer = bool; // does t know x?
    const SECOND_ORDER: bool = true;

    fn init_data(&self, _id: u64, _start: VertexId) -> Stats {
        Stats::default()
    }

    fn should_terminate(&self, w: &mut Walker<Stats>) -> bool {
        w.step >= self.len
    }

    fn state_query(&self, w: &Walker<Stats>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        match w.prev {
            Some(t) if e.dst != t => Some((t, e.dst)),
            _ => None,
        }
    }

    fn answer_query(&self, g: &GraphRef<'_>, t: VertexId, x: VertexId) -> bool {
        g.has_edge(t, x)
    }

    fn dynamic_comp(
        &self,
        _g: &GraphRef<'_>,
        w: &Walker<Stats>,
        e: EdgeView,
        a: Option<bool>,
    ) -> f64 {
        match w.prev {
            None => 1.0,
            Some(t) if e.dst == t => 0.0, // never return
            _ => {
                if a.expect("queried") {
                    self.boost // close the triangle
                } else {
                    1.0
                }
            }
        }
    }

    // The triangle bars tower over everything else: declare Q over the
    // ordinary edges only... except we cannot name *which* edges close
    // triangles without the query. So here the outlier mechanism does not
    // apply (outliers must be locatable by destination), and we set the
    // envelope to the true maximum instead — the API still keeps sampling
    // exact, just with more rejected darts.
    fn upper_bound(&self, _g: &GraphRef<'_>, w: &Walker<Stats>) -> f64 {
        if w.prev.is_none() {
            1.0
        } else {
            self.boost
        }
    }

    fn lower_bound(&self, _g: &GraphRef<'_>, _w: &Walker<Stats>) -> f64 {
        0.0 // the return edge has Pd = 0, so no useful lower bound exists
    }

    fn on_move(&self, g: &GraphRef<'_>, w: &mut Walker<Stats>) {
        // After advancing, prev→current→(previous prev) closed a triangle
        // iff current is adjacent to the vertex before prev — we cannot
        // see that far back, so count closures as current-adjacent-to-prev
        // of the *last* hop: current ~ prev is the edge we walked, so
        // check the triangle with two hops via the recorded prev.
        if let Some(t) = w.prev {
            if g.has_edge(t, w.current) && w.step >= 2 {
                w.data.triangles_closed += 1;
            }
        }
    }
}

fn main() {
    let graph = gen::presets::friendster_like(12, gen::GenOptions::seeded(3));
    println!(
        "graph: |V| = {}, stored |E| = {}",
        graph.vertex_count(),
        graph.edge_count()
    );

    for boost in [1.0, 4.0, 16.0] {
        let walk = TriangleWalk { boost, len: 40 };
        let result = RandomWalkEngine::new(&graph, walk, WalkConfig::with_nodes(4, 13))
            .run(WalkerStarts::Count(2_000));

        // How often does a hop land on a neighbor of the previous vertex?
        let mut closing = 0u64;
        let mut hops = 0u64;
        for p in &result.paths {
            for w in p.windows(3) {
                hops += 1;
                if graph.has_edge(w[0], w[2]) {
                    closing += 1;
                }
            }
        }
        println!(
            "boost {boost:>4}: {:.1}% of hops close a triangle \
             ({:.2} Pd evals/step, {} queries, {:?})",
            100.0 * closing as f64 / hops as f64,
            result.metrics.edges_per_step(),
            result.metrics.queries,
            result.elapsed,
        );
    }
    println!("\nhigher boost → walks increasingly trapped inside triangle-dense communities");
}
