//! Quickstart: run DeepWalk and node2vec on a synthetic social graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use knightking::prelude::*;

fn main() {
    // A LiveJournal-flavoured R-MAT graph: 2^14 vertices, mild skew.
    let graph = gen::presets::livejournal_like(14, gen::GenOptions::seeded(42));
    let (mean, var) = graph.degree_stats();
    println!(
        "graph: |V| = {}, stored |E| = {}, degree mean {:.1} variance {:.0}",
        graph.vertex_count(),
        graph.edge_count(),
        mean,
        var
    );

    // --- DeepWalk: static, truncated at 80 steps, one walker per vertex.
    let deepwalk = RandomWalkEngine::new(
        &graph,
        DeepWalk::new(80),
        WalkConfig::with_nodes(4, 7), // 4 simulated cluster nodes
    )
    .run(WalkerStarts::PerVertex);
    println!(
        "\nDeepWalk: {} walks, {} steps in {:?} ({:.2} M steps/s)",
        deepwalk.paths.len(),
        deepwalk.metrics.steps,
        deepwalk.elapsed,
        deepwalk.metrics.steps as f64 / deepwalk.elapsed.as_secs_f64() / 1e6,
    );
    println!(
        "first walk: {:?} ...",
        &deepwalk.paths[0][..8.min(deepwalk.paths[0].len())]
    );

    // --- node2vec: second-order, the paper's p = 2, q = 0.5.
    let node2vec = RandomWalkEngine::new(
        &graph,
        Node2Vec::new(2.0, 0.5, 80),
        WalkConfig::with_nodes(4, 7),
    )
    .run(WalkerStarts::PerVertex);
    println!(
        "\nnode2vec: {} walks, {} steps in {:?}",
        node2vec.paths.len(),
        node2vec.metrics.steps,
        node2vec.elapsed,
    );
    println!(
        "rejection sampling cost: {:.3} Pd evaluations/step, {:.3} trials/step, {} state queries",
        node2vec.metrics.edges_per_step(),
        node2vec.metrics.trials_per_step(),
        node2vec.metrics.queries,
    );
    println!(
        "pre-accepted darts: {} ({:.1}% of trials)",
        node2vec.metrics.pre_accepts,
        100.0 * node2vec.metrics.pre_accepts as f64 / node2vec.metrics.trials as f64,
    );
}
