#![warn(missing_docs)]

//! `knightking-serve`: a resident walk service.
//!
//! Batch execution (`RandomWalkEngine::run`) loads the graph, runs one
//! walk workload, and exits — fine for offline embedding pipelines,
//! wasteful when walks arrive continuously. This crate keeps the graph
//! **resident**: a [`WalkService`] runs the engine's BSP loop forever
//! and admits new walk requests at superstep boundaries, so a request's
//! latency is its own walk length plus at most one superstep of queueing,
//! not a full graph reload.
//!
//! The pieces:
//!
//! * [`protocol`] — the request/response wire protocol (`REQ`/`RESP`
//!   frames on `knightking-net`'s frame layer) plus client helpers;
//! * [`service`] — [`WalkService`] / [`ServiceHandle`]: the bounded
//!   admission queue (reject-with-retry-after on overflow), per-request
//!   deadlines, and drain-then-exit shutdown;
//! * [`listener`] — the TCP front door: every client connection lives
//!   in one `knightking-reactor` event-loop thread, and each request is
//!   queued under its tenant's weighted-fair-queueing lane (tenants come
//!   from the hello; weights and quotas from [`ServiceConfig`]);
//! * [`stats`] — request latency and queue-depth histograms in the same
//!   report schemas as `knightking-obs` profiles, plus the live metrics
//!   plane: per-superstep gauges, a bounded time series, the
//!   `Request::Stats` snapshot, and Prometheus text exposition;
//! * [`trace`] — the bounded leader-side log of sampled request traces,
//!   exporting JSONL and Chrome trace-event JSON (Perfetto-viewable);
//! * [`metrics_http`] — the `--metrics-addr` scrape endpoint;
//! * [`signal`] — SIGINT/SIGTERM → [`knightking_core::CancelToken`].
//!
//! Served walks are **byte-deterministic**: a request carries its own
//! seed, and each of its walkers draws from the private RNG stream of
//! its request-local index, so the paths returned for a request are
//! byte-identical to a batch `run` with the same seed and starts — on
//! one node or many, in-process or over TCP.
//!
//! ```
//! use knightking_core::{WalkConfig, Walker, WalkerProgram};
//! use knightking_graph::gen;
//! use knightking_serve::{ServiceConfig, StartSpec, Status, WalkRequest, WalkService};
//!
//! struct Fixed(u32);
//! impl WalkerProgram for Fixed {
//!     type Data = ();
//!     type Query = ();
//!     type Answer = ();
//!     const DYNAMIC: bool = false;
//!     fn init_data(&self, _id: u64, _start: u32) {}
//!     fn should_terminate(&self, w: &mut Walker<()>) -> bool {
//!         w.step >= self.0
//!     }
//! }
//!
//! let graph = gen::uniform_degree(64, 4, gen::GenOptions::seeded(1));
//! let (service, handle) = WalkService::new(ServiceConfig::default());
//! let client = handle.clone();
//! let t = std::thread::spawn(move || {
//!     let rx = client.submit(WalkRequest {
//!         seed: 7,
//!         starts: StartSpec::Count(5),
//!         deadline_ms: 0,
//!         stitch: false,
//!     });
//!     let resp = rx.recv().unwrap();
//!     assert_eq!(resp.status, Status::Ok);
//!     assert_eq!(resp.paths.len(), 5);
//!     client.shutdown();
//! });
//! service.run(&graph, Fixed(8), WalkConfig::single_node(0));
//! t.join().unwrap();
//! ```

pub mod listener;
pub mod metrics_http;
pub mod protocol;
mod qos;
pub mod service;
pub mod signal;
pub mod stats;
pub mod trace;

pub use listener::{serve_listener, serve_listener_with, ListenerConfig};
pub use metrics_http::metrics_listener;
pub use protocol::{
    Request, StartSpec, Status, WalkRequest, WalkResponse, DEFAULT_TENANT, SERVE_MAGIC,
    SERVE_VERSION,
};
pub use service::{Responder, ServiceConfig, ServiceHandle, WalkService};
pub use stats::{SeriesPoint, ServeStats, StatsReport, TenantStat};
pub use trace::TraceLog;
