//! The serve request/response protocol.
//!
//! Rides on `knightking-net`'s frame layer: after the client hello
//! ([`SERVE_MAGIC`] + [`SERVE_VERSION`] + a tenant id), every request
//! travels as one `REQ` frame whose sequence number is a client-chosen
//! request id, and every response as one `RESP` frame echoing that id.
//! Payloads use the same hand-rolled [`Wire`] codec as every other byte
//! that crosses a KnightKing socket.
//!
//! The hello exists so a serve listener can immediately distinguish a
//! query client from a stray cluster peer (whose handshake starts with
//! `KKNT`) and fail with a clear error instead of a frame-decode panic.
//! Since version 4 it also names the client's **tenant** — the identity
//! per-tenant fair queueing and quotas key on ([`connect_as`]); clients
//! that name none land in [`DEFAULT_TENANT`].

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use knightking_dyn::UpdateBatch;
use knightking_graph::VertexId;
use knightking_net::frame::{read_frame, tag, write_frame};
use knightking_net::{from_bytes, to_bytes, Wire, WireError};

use crate::stats::StatsReport;

/// First four bytes a query client sends ("KnightKing SerVe").
pub const SERVE_MAGIC: [u8; 4] = *b"KKSV";

/// Serve-protocol version, bumped on any wire change. Version 2 added
/// [`Request::Update`] and [`Status::Updated`]; version 3 added
/// [`Request::Stats`] and [`Status::Stats`]; version 4 added the tenant
/// id to the hello and per-tenant counters to [`StatsReport`]; version 5
/// added [`WalkRequest::stitch`] and [`Status::Stitched`] for
/// segment-pool approximate execution.
pub const SERVE_VERSION: u16 = 5;

/// Longest tenant id a hello may carry.
pub const MAX_TENANT_LEN: usize = 64;

/// The tenant requests fall under when the hello names none.
pub const DEFAULT_TENANT: &str = "default";

/// Checks a tenant id: at most [`MAX_TENANT_LEN`] bytes of
/// `[A-Za-z0-9._-]` (empty is allowed and means [`DEFAULT_TENANT`]).
///
/// # Errors
///
/// Fails with `InvalidInput` naming the violation.
pub fn validate_tenant(tenant: &str) -> io::Result<()> {
    if tenant.len() > MAX_TENANT_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "tenant id of {} bytes exceeds the {MAX_TENANT_LEN}-byte limit",
                tenant.len()
            ),
        ));
    }
    if let Some(b) = tenant
        .bytes()
        .find(|b| !(b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')))
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("tenant id contains byte {b:#04x}; only [A-Za-z0-9._-] is allowed"),
        ));
    }
    Ok(())
}

/// Encodes the client hello: magic, version, and a length-prefixed
/// tenant id.
///
/// # Errors
///
/// Fails with `InvalidInput` when the tenant id is invalid.
pub fn hello_bytes(tenant: &str) -> io::Result<Vec<u8>> {
    validate_tenant(tenant)?;
    let mut out = Vec::with_capacity(7 + tenant.len());
    out.extend_from_slice(&SERVE_MAGIC);
    out.extend_from_slice(&SERVE_VERSION.to_le_bytes());
    out.push(tenant.len() as u8);
    out.extend_from_slice(tenant.as_bytes());
    Ok(out)
}

/// Tries to split one hello off the front of `buf` — the listener-side
/// incremental parser. Returns the (normalized) tenant plus the bytes
/// consumed, or `None` when the hello is still incomplete. An empty
/// tenant id normalizes to [`DEFAULT_TENANT`].
///
/// # Errors
///
/// Fails with `InvalidData` on a bad magic (likely a stray cluster
/// peer), an unsupported version, or a malformed tenant id.
pub fn split_hello(buf: &[u8]) -> io::Result<Option<(String, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    if buf[0..4] != SERVE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a serve client: bad hello magic (is this a cluster peer?)",
        ));
    }
    if buf.len() < 7 {
        return Ok(None);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != SERVE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("serve protocol version {version} not supported (want {SERVE_VERSION})"),
        ));
    }
    let n = buf[6] as usize;
    if n > MAX_TENANT_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("tenant id of {n} bytes exceeds the {MAX_TENANT_LEN}-byte limit"),
        ));
    }
    if buf.len() < 7 + n {
        return Ok(None);
    }
    let tenant = std::str::from_utf8(&buf[7..7 + n])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "tenant id is not UTF-8"))?;
    validate_tenant(tenant).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let tenant = if tenant.is_empty() {
        DEFAULT_TENANT.to_string()
    } else {
        tenant.to_string()
    };
    Ok(Some((tenant, 7 + n)))
}

/// Where a request's walkers start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartSpec {
    /// `n` walkers placed by the engine's default strategy (walker `i`
    /// starts at vertex `i mod |V|`), matching `WalkerStarts::Count`.
    Count(u64),
    /// Explicit start vertices; walker `i` starts at `starts[i]`.
    Explicit(Vec<VertexId>),
}

impl Wire for StartSpec {
    fn wire_size(&self) -> usize {
        1 + match self {
            StartSpec::Count(n) => n.wire_size(),
            StartSpec::Explicit(v) => v.wire_size(),
        }
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            StartSpec::Count(n) => {
                out.push(0);
                n.encode(out)
            }
            StartSpec::Explicit(v) => {
                out.push(1);
                v.encode(out)
            }
        }
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        match u8::decode(input)? {
            0 => Ok(StartSpec::Count(u64::decode(input)?)),
            1 => Ok(StartSpec::Explicit(Vec::decode(input)?)),
            b => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire: invalid StartSpec tag {b}"),
            )),
        }
    }
}

/// One walk query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkRequest {
    /// Per-request seed: the served paths are byte-identical to a batch
    /// run with this seed and the same starts.
    pub seed: u64,
    /// Start placement.
    pub starts: StartSpec,
    /// Deadline in milliseconds from admission-queue entry; `0` means
    /// none. An expired request's walkers are force-terminated and the
    /// response carries [`Status::DeadlineExceeded`].
    pub deadline_ms: u64,
    /// Ask for stitched (segment-pool) execution: the service splices
    /// precomputed segments instead of stepping, falling back to exact
    /// steps where a pool runs dry, and answers with
    /// [`Status::Stitched`]. Requires the service to hold a pool for the
    /// served program; answered [`Status::Invalid`] otherwise. Stitched
    /// requests stay pinned to their admission epoch like exact ones.
    pub stitch: bool,
}

impl Wire for WalkRequest {
    fn wire_size(&self) -> usize {
        self.seed.wire_size()
            + self.starts.wire_size()
            + self.deadline_ms.wire_size()
            + self.stitch.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.seed.encode(out)?;
        self.starts.encode(out)?;
        self.deadline_ms.encode(out)?;
        self.stitch.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(WalkRequest {
            seed: u64::decode(input)?,
            starts: StartSpec::decode(input)?,
            deadline_ms: u64::decode(input)?,
            stitch: bool::decode(input)?,
        })
    }
}

/// Everything a client can ask of a serve listener.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a walk and return its paths.
    Walk(WalkRequest),
    /// Ask the service to drain in-flight work and exit. Acked with
    /// [`Status::Ok`] before the drain completes.
    Shutdown,
    /// Apply a graph update batch (edge adds, deletions, reweights). The
    /// service applies the batch at the next superstep boundary on every
    /// rank in lockstep; already-admitted walkers keep sampling their
    /// pinned epoch, walkers admitted afterwards see the new one. Acked
    /// with [`Status::Updated`] carrying the new graph epoch, or
    /// [`Status::Invalid`] if the batch references out-of-range vertices
    /// or the served graph is a static CSR.
    Update(UpdateBatch),
    /// Ask for a live stats snapshot. Answered with [`Status::Stats`];
    /// never queued — the listener reads the shared stats directly, so a
    /// busy or draining service still answers.
    Stats,
}

impl Wire for Request {
    fn wire_size(&self) -> usize {
        1 + match self {
            Request::Walk(r) => r.wire_size(),
            Request::Shutdown => 0,
            Request::Update(b) => b.wire_size(),
            Request::Stats => 0,
        }
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            Request::Walk(r) => {
                out.push(0);
                r.encode(out)
            }
            Request::Shutdown => {
                out.push(1);
                Ok(())
            }
            Request::Update(b) => {
                out.push(2);
                b.encode(out)
            }
            Request::Stats => {
                out.push(3);
                Ok(())
            }
        }
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        match u8::decode(input)? {
            0 => Ok(Request::Walk(WalkRequest::decode(input)?)),
            1 => Ok(Request::Shutdown),
            2 => Ok(Request::Update(UpdateBatch::decode(input)?)),
            3 => Ok(Request::Stats),
            b => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire: invalid Request tag {b}"),
            )),
        }
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The walk completed; the response carries its paths.
    Ok,
    /// Admission queue full — backpressure, not failure. Retry after the
    /// indicated delay.
    Rejected {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before its walkers finished; they
    /// were force-terminated and their paths discarded.
    DeadlineExceeded,
    /// The service is draining toward exit and admits nothing new.
    ShuttingDown,
    /// The request was malformed (e.g. a start vertex outside the graph);
    /// the message names the problem.
    Invalid(String),
    /// An update batch was applied; walkers admitted from now on sample
    /// the graph at this epoch.
    Updated {
        /// The graph epoch the batch created.
        epoch: u64,
    },
    /// A live stats snapshot (the answer to [`Request::Stats`]).
    Stats(Box<StatsReport>),
    /// The walk completed via stitched execution; the response carries
    /// its paths. The counters report how much of the walk was spliced
    /// from the segment pool versus stepped exactly, so clients can judge
    /// the approximation at a glance.
    Stitched {
        /// Precomputed segments spliced into the walks.
        segments_spliced: u64,
        /// Exact steps taken where pools ran dry.
        fallback_steps: u64,
    },
}

impl Wire for Status {
    fn wire_size(&self) -> usize {
        1 + match self {
            Status::Ok | Status::DeadlineExceeded | Status::ShuttingDown => 0,
            Status::Rejected { retry_after_ms } => retry_after_ms.wire_size(),
            Status::Invalid(msg) => 4 + msg.len(),
            Status::Updated { epoch } => epoch.wire_size(),
            Status::Stats(r) => r.wire_size(),
            Status::Stitched {
                segments_spliced,
                fallback_steps,
            } => segments_spliced.wire_size() + fallback_steps.wire_size(),
        }
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            Status::Ok => out.push(0),
            Status::Rejected { retry_after_ms } => {
                out.push(1);
                retry_after_ms.encode(out)?;
            }
            Status::DeadlineExceeded => out.push(2),
            Status::ShuttingDown => out.push(3),
            Status::Invalid(msg) => {
                out.push(4);
                (msg.len() as u32).encode(out)?;
                out.extend_from_slice(msg.as_bytes());
            }
            Status::Updated { epoch } => {
                out.push(5);
                epoch.encode(out)?;
            }
            Status::Stats(r) => {
                out.push(6);
                r.encode(out)?;
            }
            Status::Stitched {
                segments_spliced,
                fallback_steps,
            } => {
                out.push(7);
                segments_spliced.encode(out)?;
                fallback_steps.encode(out)?;
            }
        }
        Ok(())
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        match u8::decode(input)? {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Rejected {
                retry_after_ms: u64::decode(input)?,
            }),
            2 => Ok(Status::DeadlineExceeded),
            3 => Ok(Status::ShuttingDown),
            4 => {
                let len = u32::decode(input)? as usize;
                if input.len() < len {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "wire: truncated Status message",
                    ));
                }
                let (head, tail) = input.split_at(len);
                let msg = String::from_utf8(head.to_vec()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "wire: Status message not UTF-8")
                })?;
                *input = tail;
                Ok(Status::Invalid(msg))
            }
            5 => Ok(Status::Updated {
                epoch: u64::decode(input)?,
            }),
            6 => Ok(Status::Stats(Box::new(StatsReport::decode(input)?))),
            7 => Ok(Status::Stitched {
                segments_spliced: u64::decode(input)?,
                fallback_steps: u64::decode(input)?,
            }),
            b => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire: invalid Status tag {b}"),
            )),
        }
    }
}

/// The answer to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResponse {
    /// Outcome.
    pub status: Status,
    /// One walk per admitted walker, in walker order; empty unless
    /// `status` is [`Status::Ok`] (a zero-walker request yields `Ok` with
    /// no paths).
    pub paths: Vec<Vec<VertexId>>,
}

impl Wire for WalkResponse {
    fn wire_size(&self) -> usize {
        self.status.wire_size() + self.paths.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.status.encode(out)?;
        self.paths.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(WalkResponse {
            status: Status::decode(input)?,
            paths: Vec::decode(input)?,
        })
    }
}

/// Connects to a serve listener and sends the protocol hello as
/// [`DEFAULT_TENANT`].
///
/// # Errors
///
/// Propagates connection failures.
pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
    connect_as(addr, "")
}

/// Connects to a serve listener announcing `tenant` (empty means
/// [`DEFAULT_TENANT`]). The tenant determines which fair-queueing lane
/// and quota the connection's requests fall under.
///
/// # Errors
///
/// Propagates connection failures; an invalid tenant id fails with
/// `InvalidInput` before anything is sent.
pub fn connect_as<A: ToSocketAddrs>(addr: A, tenant: &str) -> io::Result<TcpStream> {
    let hello = hello_bytes(tenant)?;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&hello)?;
    Ok(stream)
}

/// Sends one request as a `REQ` frame; `req_id` is echoed in the
/// response.
///
/// # Errors
///
/// Propagates I/O failures; an unencodable request (e.g. an update batch
/// over wire limits) fails with `InvalidInput`.
pub fn send_request<W: Write>(w: &mut W, req_id: u64, req: &Request) -> io::Result<()> {
    let payload = to_bytes(req).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    write_frame(w, tag::REQ, req_id, &payload)?;
    w.flush()
}

/// Reads one `RESP` frame and checks it answers `req_id`.
///
/// # Errors
///
/// Fails with `InvalidData` on a non-`RESP` frame or a mismatched
/// request id, or with the underlying I/O error.
pub fn read_response<R: Read>(r: &mut R, req_id: u64) -> io::Result<WalkResponse> {
    let frame = read_frame(r)?;
    if frame.tag != tag::RESP {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a RESP frame, got tag {}", frame.tag),
        ));
    }
    if frame.seq != req_id {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response answers request {}, expected {req_id}", frame.seq),
        ));
    }
    from_bytes(&frame.payload)
}

/// One full round trip: send `req`, await its response.
///
/// # Errors
///
/// Propagates I/O and protocol failures.
pub fn round_trip(stream: &mut TcpStream, req_id: u64, req: &Request) -> io::Result<WalkResponse> {
    send_request(stream, req_id, req)?;
    read_response(stream, req_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_dyn::{EdgeAdd, EdgeRef, EdgeReweight};

    fn round_trips<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(bytes.len(), v.wire_size(), "wire_size must be exact");
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn requests_round_trip() {
        round_trips(Request::Walk(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(100),
            deadline_ms: 0,
            stitch: false,
        }));
        round_trips(Request::Walk(WalkRequest {
            seed: u64::MAX,
            starts: StartSpec::Explicit(vec![0, 9, 3]),
            deadline_ms: 250,
            stitch: true,
        }));
        round_trips(Request::Shutdown);
        round_trips(Request::Update(UpdateBatch {
            adds: vec![EdgeAdd {
                src: 3,
                dst: 4,
                weight: 2.5,
                edge_type: 1,
            }],
            dels: vec![EdgeRef { src: 0, dst: 1 }],
            reweights: vec![EdgeReweight {
                src: 2,
                dst: 3,
                weight: 0.5,
            }],
        }));
        round_trips(Request::Update(UpdateBatch::default()));
        round_trips(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        round_trips(WalkResponse {
            status: Status::Ok,
            paths: vec![vec![1, 2, 3], vec![], vec![9]],
        });
        round_trips(WalkResponse {
            status: Status::Rejected { retry_after_ms: 50 },
            paths: Vec::new(),
        });
        round_trips(WalkResponse {
            status: Status::DeadlineExceeded,
            paths: Vec::new(),
        });
        round_trips(WalkResponse {
            status: Status::ShuttingDown,
            paths: Vec::new(),
        });
        round_trips(WalkResponse {
            status: Status::Invalid("start vertex 99 is out of range".into()),
            paths: Vec::new(),
        });
        round_trips(WalkResponse {
            status: Status::Updated { epoch: 12 },
            paths: Vec::new(),
        });
        let mut report = StatsReport {
            admitted: 4,
            completed: 3,
            supersteps: 99,
            latency_p99_us: 1234,
            phase_ns: [9, 8, 7, 6, 5, 4, 3, 2, 1, 10],
            ..StatsReport::default()
        };
        report.series.push(crate::stats::SeriesPoint {
            superstep: 98,
            active_walkers: 6,
            queue_depth: 1,
            admitted: 4,
            completed: 3,
        });
        round_trips(WalkResponse {
            status: Status::Stats(Box::new(report)),
            paths: Vec::new(),
        });
        round_trips(WalkResponse {
            status: Status::Stitched {
                segments_spliced: 42,
                fallback_steps: 7,
            },
            paths: vec![vec![0, 5, 2], vec![3]],
        });
    }

    #[test]
    fn truncated_status_message_is_an_error_not_a_panic() {
        let full = to_bytes(&Status::Invalid("hello".into())).unwrap();
        let cut = &full[..full.len() - 2];
        assert!(from_bytes::<Status>(cut).is_err());
    }

    #[test]
    fn hello_round_trips_through_incremental_parse() {
        for tenant in ["", "default", "team-a", "p99.critical_7"] {
            let bytes = hello_bytes(tenant).unwrap();
            for cut in 0..bytes.len() {
                assert_eq!(split_hello(&bytes[..cut]).unwrap(), None, "prefix {cut}");
            }
            let (got, used) = split_hello(&bytes).unwrap().unwrap();
            let want = if tenant.is_empty() {
                DEFAULT_TENANT
            } else {
                tenant
            };
            assert_eq!(got, want);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn hello_rejects_bad_magic_version_and_tenant() {
        let mut bytes = hello_bytes("x").unwrap();
        bytes[0] = b'X';
        assert!(split_hello(&bytes)
            .unwrap_err()
            .to_string()
            .contains("magic"));

        let mut bytes = hello_bytes("x").unwrap();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(split_hello(&bytes)
            .unwrap_err()
            .to_string()
            .contains("version 99"));

        // An overlong length byte fails before the name even arrives.
        let mut bytes = hello_bytes("x").unwrap();
        bytes[6] = (MAX_TENANT_LEN + 1) as u8;
        assert!(split_hello(&bytes[..7])
            .unwrap_err()
            .to_string()
            .contains("64-byte"));

        // Client side refuses bad tenant ids outright.
        assert!(hello_bytes("has space").is_err());
        assert!(hello_bytes(&"x".repeat(MAX_TENANT_LEN + 1)).is_err());
        assert!(hello_bytes(&"x".repeat(MAX_TENANT_LEN)).is_ok());

        // Server side: a non-allowed byte inside the name.
        let mut bytes = hello_bytes("ab").unwrap();
        let n = bytes.len();
        bytes[n - 1] = b'!';
        assert!(split_hello(&bytes).is_err());
    }
}
