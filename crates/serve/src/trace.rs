//! Leader-side trace log for sampled request traces.
//!
//! Nodes record [`SpanEvent`]s for traced requests at superstep
//! boundaries and ship them in their `ServeDelta`s; the leader's
//! `QueueDriver` appends them here. The log is bounded (newest spans are
//! dropped when full, and counted — a truncated trace must never look
//! complete) and exports two formats: the repo's JSONL schema (`span`
//! lines) and the Chrome trace-event format, which Perfetto and
//! `chrome://tracing` open directly.
//!
//! In the Chrome export a span's *process* is the rank that recorded it
//! and its *thread* is the trace id, so one request's timeline reads as
//! one lane per rank and concurrent requests stack vertically.

use std::io::{self, Write};

use knightking_core::SpanEvent;

/// Default trace-log capacity: enough for thousands of traced requests
/// while bounding resident memory (~3 MB of spans).
pub const TRACE_LOG_CAP: usize = 65_536;

/// A bounded log of span events gathered from every rank.
#[derive(Debug, Clone)]
pub struct TraceLog {
    cap: usize,
    spans: Vec<SpanEvent>,
    dropped: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(TRACE_LOG_CAP)
    }
}

impl TraceLog {
    /// A log holding at most `cap` spans (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceLog {
            cap: cap.max(1),
            spans: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends a span, dropping (and counting) it if the log is full.
    /// Oldest spans win: a trace's admit event is the anchor the rest of
    /// its timeline hangs off.
    pub fn push(&mut self, span: SpanEvent) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Appends every span of an iterator.
    pub fn extend(&mut self, spans: impl IntoIterator<Item = SpanEvent>) {
        for s in spans {
            self.push(s);
        }
    }

    /// Spans retained, in arrival order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the log holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans dropped because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes one `span` JSONL line per retained span, plus a final
    /// `spans_dropped` line when any were lost.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for s in &self.spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"trace\":{},\"node\":{},\"superstep\":{},\
                 \"ts_us\":{},\"dur_us\":{},\"kind\":\"{}\",\"value\":{}}}",
                s.trace,
                s.node,
                s.superstep,
                s.ts_us,
                s.dur_us,
                s.kind.name(),
                s.kind.value()
            )?;
        }
        if self.dropped > 0 {
            writeln!(
                w,
                "{{\"type\":\"spans_dropped\",\"count\":{}}}",
                self.dropped
            )?;
        }
        Ok(())
    }

    /// Writes the Chrome trace-event JSON rendering: one complete (`X`)
    /// event per span with `pid` = rank and `tid` = trace id. Zero-length
    /// spans get a 1 µs duration so viewers draw them.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(
                w,
                "{sep}\n{{\"name\":\"{}\",\"cat\":\"walk\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"superstep\":{},\"value\":{}}}}}",
                s.kind.name(),
                s.ts_us,
                s.dur_us.max(1),
                s.node,
                s.trace,
                s.superstep,
                s.kind.value()
            )?;
        }
        writeln!(w, "\n]}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_core::SpanEventKind;

    fn span(trace: u64, node: u32, kind: SpanEventKind) -> SpanEvent {
        SpanEvent {
            trace,
            node,
            superstep: 4,
            ts_us: 100,
            dur_us: 25,
            kind,
        }
    }

    #[test]
    fn bounded_and_counts_drops() {
        let mut log = TraceLog::new(2);
        log.push(span(1, 0, SpanEventKind::Admit { walkers: 2 }));
        log.push(span(1, 0, SpanEventKind::Superstep { hops: 2 }));
        log.push(span(1, 0, SpanEventKind::Complete { walkers: 2 }));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        // Oldest retained: the admit anchor survives.
        assert!(matches!(log.spans()[0].kind, SpanEventKind::Admit { .. }));
    }

    #[test]
    fn jsonl_emits_span_lines_and_drop_marker() {
        let mut log = TraceLog::new(1);
        log.push(span(7, 1, SpanEventKind::Exchange { bytes: 512 }));
        log.push(span(7, 1, SpanEventKind::Kill));
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\"kind\":\"exchange\""));
        assert!(lines[0].contains("\"value\":512"));
        assert!(lines[1].contains("\"type\":\"spans_dropped\""));
        assert!(lines[1].contains("\"count\":1"));
    }

    #[test]
    fn chrome_trace_shape() {
        let mut log = TraceLog::default();
        log.push(span(3, 0, SpanEventKind::Admit { walkers: 5 }));
        log.push(SpanEvent {
            dur_us: 0,
            ..span(3, 1, SpanEventKind::Superstep { hops: 5 })
        });
        let mut buf = Vec::new();
        log.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"pid\":1"));
        assert!(text.contains("\"tid\":3"));
        // Zero-duration spans are widened so viewers draw them.
        assert!(text.contains("\"dur\":1"));
        // Balanced braces/brackets — structurally valid JSON.
        assert_eq!(
            text.matches(['{', '[']).count(),
            text.matches(['}', ']']).count()
        );
    }

    #[test]
    fn empty_log_exports_are_valid() {
        let log = TraceLog::default();
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
        let mut buf = Vec::new();
        log.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"traceEvents\":["));
        assert!(log.is_empty());
    }
}
