//! The resident walk service: admission queue, leader-side driver, and
//! the handles clients use to reach them.
//!
//! A [`WalkService`] owns the shared state (queue, stats, shutdown flag)
//! and runs the engine's serve loop; any number of cloned
//! [`ServiceHandle`]s feed it requests from listener threads or
//! in-process callers. The `QueueDriver` is the `ServeDriver` the
//! leader node plugs into [`RandomWalkEngine::run_service`]: it admits
//! queued requests at superstep boundaries (bounded per superstep),
//! routes path fragments back to their requests, enforces deadlines, and
//! answers each request's response channel when its last walker lands.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use knightking_cluster::comm::run_cluster_with_metrics;
use knightking_core::result::PathEntry;
use knightking_core::{
    AdmitRequest, Directives, EpochUpdate, GraphRef, Msg, NoopDriver, RandomWalkEngine, ServeDelta,
    ServeDriver, StitchError, StitchedDriver, Transport, WalkConfig, WalkMetrics, WalkResult,
    WalkerProgram, WalkerStarts,
};
use knightking_dyn::{DynGraph, UpdateBatch};
use knightking_graph::VertexId;
use knightking_stitch::SegmentPool;

use crate::protocol::{StartSpec, Status, WalkRequest, WalkResponse, DEFAULT_TENANT};
use crate::qos::{FairQueue, Shed};
use crate::stats::{SeriesPoint, ServeStats, StatsReport};
use crate::trace::TraceLog;

/// Admission-control knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Requests the admission queue holds before rejecting with
    /// `Status::Rejected` — the service's backpressure bound.
    pub queue_capacity: usize,
    /// Requests admitted into the engine per superstep. Bounds how much
    /// one superstep's admission can stall in-flight walkers.
    pub max_admit_per_superstep: usize,
    /// `retry_after_ms` carried by rejections.
    pub retry_after_ms: u64,
    /// Trace one of every `trace_sample` admitted requests (`0` disables
    /// tracing). Sampling keeps heavy traffic cheap: untraced requests
    /// record nothing anywhere.
    pub trace_sample: u64,
    /// Fair-queueing weights for named tenants: tenant `i`'s share of
    /// admitted walkers tracks `weight_i / Σ weight_j` over any busy
    /// interval. Tenants not listed here get `default_tenant_weight`.
    pub tenant_weights: Vec<(String, u32)>,
    /// Weight for tenants absent from `tenant_weights`.
    pub default_tenant_weight: u32,
    /// Max requests one tenant may hold queued at once; `0` disables the
    /// quota. Exceeding it sheds with `Status::Rejected` while the
    /// global queue may still have room for other tenants.
    pub tenant_quota: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            max_admit_per_superstep: 8,
            retry_after_ms: 50,
            trace_sample: 0,
            tenant_weights: Vec::new(),
            default_tenant_weight: 1,
            tenant_quota: 0,
        }
    }
}

/// How a finished request's response reaches its client.
pub enum Responder {
    /// In-process callers: the response travels over an mpsc channel
    /// (what [`ServiceHandle::submit`] hands back).
    Channel(mpsc::Sender<WalkResponse>),
    /// The reactor listener: the callback encodes the response into a
    /// `RESP` frame and hands it to the poller thread. Runs on whatever
    /// thread resolves the request (driver or submitter), so it must be
    /// quick and non-blocking.
    Callback(Box<dyn FnOnce(WalkResponse) + Send>),
}

impl Responder {
    pub(crate) fn respond(self, resp: WalkResponse) {
        match self {
            // A dropped receiver means the client went away; nothing to
            // deliver to.
            Responder::Channel(tx) => {
                let _ = tx.send(resp);
            }
            Responder::Callback(f) => f(resp),
        }
    }
}

/// A queued request plus everything needed to answer it.
pub(crate) struct QueuedReq {
    pub(crate) tenant: String,
    pub(crate) req: WalkRequest,
    pub(crate) enqueued: Instant,
    pub(crate) responder: Responder,
}

/// A queued graph update awaiting its superstep boundary.
struct QueuedUpdate {
    batch: UpdateBatch,
    responder: Responder,
}

/// State shared between the service loop and its handles.
pub(crate) struct ServeShared {
    cfg: ServiceConfig,
    queue: Mutex<FairQueue>,
    updates: Mutex<VecDeque<QueuedUpdate>>,
    shutdown: AtomicBool,
    stats: Mutex<ServeStats>,
    trace: Mutex<TraceLog>,
    conns: AtomicUsize,
}

/// A clonable handle for submitting requests and steering the service.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<ServeShared>,
}

impl ServiceHandle {
    /// Submits a walk request as [`DEFAULT_TENANT`]. The response
    /// arrives on the returned channel — immediately for rejections
    /// ([`Status::Rejected`] when the queue or the tenant's quota is
    /// full, [`Status::ShuttingDown`] after shutdown), or once the walk
    /// completes, misses its deadline, or fails validation.
    pub fn submit(&self, req: WalkRequest) -> mpsc::Receiver<WalkResponse> {
        self.submit_as("", req)
    }

    /// Like [`submit`](ServiceHandle::submit), under `tenant`'s
    /// fair-queueing lane and quota (empty means [`DEFAULT_TENANT`]).
    pub fn submit_as(&self, tenant: &str, req: WalkRequest) -> mpsc::Receiver<WalkResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(tenant, req, Responder::Channel(tx));
        rx
    }

    /// The responder-parameterized submit the listener uses: the
    /// response is delivered through `responder` — synchronously (before
    /// this returns) for rejections and shutdown, later from the driver
    /// otherwise.
    pub fn submit_with(&self, tenant: &str, req: WalkRequest, responder: Responder) {
        if self.is_shutdown() {
            responder.respond(WalkResponse {
                status: Status::ShuttingDown,
                paths: Vec::new(),
            });
            return;
        }
        let tenant = if tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            tenant
        };
        let queued = QueuedReq {
            tenant: tenant.to_string(),
            req,
            enqueued: Instant::now(),
            responder,
        };
        let mut queue = lock(&self.shared.queue);
        match queue.push(queued) {
            Ok(()) => {}
            Err((back, why)) => {
                // Release the queue before touching stats: poll() locks
                // stats → queue, so holding queue → stats here could
                // deadlock.
                drop(queue);
                {
                    let mut stats = lock(&self.shared.stats);
                    stats.rejected += 1;
                    if why == Shed::TenantQuota {
                        stats.shed += 1;
                    }
                }
                back.responder.respond(WalkResponse {
                    status: Status::Rejected {
                        retry_after_ms: self.shared.cfg.retry_after_ms,
                    },
                    paths: Vec::new(),
                });
            }
        }
    }

    /// Submits a graph update batch. The service broadcasts it to every
    /// rank and applies it at the next superstep boundary; the response
    /// carries [`Status::Updated`] with the new graph epoch once the
    /// batch has been scheduled, [`Status::Invalid`] if it fails
    /// validation or the served graph is a static CSR, or the usual
    /// backpressure/shutdown statuses. Walkers admitted before the
    /// update keep sampling their pinned epoch.
    pub fn submit_update(&self, batch: UpdateBatch) -> mpsc::Receiver<WalkResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_update_with(batch, Responder::Channel(tx));
        rx
    }

    /// The responder-parameterized update submit (listener-side twin of
    /// [`submit_with`](ServiceHandle::submit_with)).
    pub fn submit_update_with(&self, batch: UpdateBatch, responder: Responder) {
        if self.is_shutdown() {
            responder.respond(WalkResponse {
                status: Status::ShuttingDown,
                paths: Vec::new(),
            });
            return;
        }
        let mut updates = lock(&self.shared.updates);
        if updates.len() >= self.shared.cfg.queue_capacity {
            // Same lock-order discipline as `submit_with`: never hold a
            // queue lock while taking stats.
            drop(updates);
            lock(&self.shared.stats).rejected += 1;
            responder.respond(WalkResponse {
                status: Status::Rejected {
                    retry_after_ms: self.shared.cfg.retry_after_ms,
                },
                paths: Vec::new(),
            });
            return;
        }
        updates.push_back(QueuedUpdate { batch, responder });
    }

    /// Asks the service to drain in-flight and already-queued work, then
    /// exit. New submissions are refused from this point on. Idempotent;
    /// callable from any thread (e.g. a signal watcher).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// A snapshot of the service's counters and histograms.
    pub fn stats(&self) -> ServeStats {
        lock(&self.shared.stats).clone()
    }

    /// The flat stats snapshot served to `Request::Stats` clients and
    /// the metrics endpoint. Locks stats, the trace log, and the queue
    /// in sequence (never nested).
    pub fn report(&self) -> StatsReport {
        let stats = lock(&self.shared.stats).clone();
        let (spans, dropped) = {
            let t = lock(&self.shared.trace);
            (t.len() as u64, t.dropped())
        };
        let mut report = stats.report(spans, dropped);
        report.tenants = lock(&self.shared.queue).tenant_stats();
        report
    }

    /// A snapshot of the gathered trace log (spans from every rank).
    pub fn trace_log(&self) -> TraceLog {
        lock(&self.shared.trace).clone()
    }

    /// Listener connections currently open (used to drain writers before
    /// process exit).
    pub fn active_connections(&self) -> usize {
        self.shared.conns.load(Ordering::Acquire)
    }

    pub(crate) fn conn_opened(&self) {
        self.shared.conns.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn conn_closed(&self) {
        self.shared.conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Locks a mutex, ignoring poisoning: every guarded structure here stays
/// consistent under panic (counters and queues, no multi-step
/// invariants).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The resident walk service.
pub struct WalkService {
    shared: Arc<ServeShared>,
}

impl WalkService {
    /// Creates a service and its first handle.
    pub fn new(cfg: ServiceConfig) -> (WalkService, ServiceHandle) {
        let queue = FairQueue::new(
            cfg.queue_capacity,
            cfg.tenant_quota,
            cfg.default_tenant_weight,
            &cfg.tenant_weights,
        );
        let shared = Arc::new(ServeShared {
            cfg,
            queue: Mutex::new(queue),
            updates: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(ServeStats::default()),
            trace: Mutex::new(TraceLog::default()),
            conns: AtomicUsize::new(0),
        });
        (
            WalkService {
                shared: shared.clone(),
            },
            ServiceHandle { shared },
        )
    }

    /// Runs the service on an in-process cluster of `cfg.n_nodes` node
    /// threads, blocking until a shutdown drains. Path recording is
    /// forced on (responses are the paths).
    ///
    /// Accepts a `&CsrGraph` (static: update submissions are refused
    /// with `Status::Invalid`) or a `&DynGraph` (live updates apply at
    /// superstep boundaries).
    ///
    /// Returns the leader node's accumulated [`WalkMetrics`].
    pub fn run<'g, P: WalkerProgram>(
        &self,
        graph: impl Into<GraphRef<'g>>,
        program: P,
        mut cfg: WalkConfig,
    ) -> WalkMetrics {
        cfg.record_paths = true;
        let n_nodes = cfg.n_nodes;
        let graph: GraphRef<'g> = graph.into();
        let engine = RandomWalkEngine::new(graph, program, cfg);
        let shared = &self.shared;
        let (mut outs, _comm) = run_cluster_with_metrics::<Msg<P>, _, _>(n_nodes, |ctx| {
            let mut ctx = ctx;
            if ctx.node == 0 {
                let mut driver = QueueDriver::new(shared.clone(), graph);
                engine.run_service(&mut ctx, Some(&mut driver))
            } else {
                engine.run_service(&mut ctx, None::<&mut NoopDriver>)
            }
        });
        self.drain_queue_shutting_down();
        outs.swap_remove(0)
    }

    /// Like [`run`](WalkService::run), with an optional segment pool:
    /// when `pool` is `Some`, requests with the stitch flag are answered
    /// by splicing its precomputed segments (leader-side, at their
    /// admission epoch) and marked [`Status::Stitched`]; exact requests
    /// are untouched. Without a pool, stitched requests are refused with
    /// [`Status::Invalid`].
    ///
    /// # Errors
    ///
    /// Fails up front — before any node thread starts — when a pool is
    /// supplied for a program that stitched execution cannot answer
    /// (second-order or otherwise walker-state-dependent).
    pub fn run_with_pool<'g, P: WalkerProgram + Clone + Send + 'g>(
        &self,
        graph: impl Into<GraphRef<'g>>,
        program: P,
        mut cfg: WalkConfig,
        pool: Option<SegmentPool>,
    ) -> Result<WalkMetrics, StitchError> {
        cfg.record_paths = true;
        let n_nodes = cfg.n_nodes;
        let graph: GraphRef<'g> = graph.into();
        let stitch = match pool {
            None => None,
            Some(pool) => Some(StitchExec::new(graph, &program, pool)?),
        };
        // The node closure is shared across node threads; only node 0
        // takes the exec out.
        let stitch = Mutex::new(stitch);
        let engine = RandomWalkEngine::new(graph, program, cfg);
        let shared = &self.shared;
        let stitch = &stitch;
        let (mut outs, _comm) = run_cluster_with_metrics::<Msg<P>, _, _>(n_nodes, |ctx| {
            let mut ctx = ctx;
            if ctx.node == 0 {
                let mut driver = QueueDriver::new(shared.clone(), graph);
                driver.stitch = lock(stitch).take();
                engine.run_service(&mut ctx, Some(&mut driver))
            } else {
                engine.run_service(&mut ctx, None::<&mut NoopDriver>)
            }
        });
        self.drain_queue_shutting_down();
        Ok(outs.swap_remove(0))
    }

    /// Runs the service as the **leader rank of a real cluster** (e.g.
    /// rank 0 over a `TcpTransport` mesh). Blocks until shutdown drains.
    pub fn run_leader<'g, P: WalkerProgram, T: Transport<Msg<P>>>(
        &self,
        graph: impl Into<GraphRef<'g>>,
        program: P,
        mut cfg: WalkConfig,
        transport: &mut T,
    ) -> WalkMetrics {
        cfg.record_paths = true;
        let graph: GraphRef<'g> = graph.into();
        let engine = RandomWalkEngine::new(graph, program, cfg);
        let mut driver = QueueDriver::new(self.shared.clone(), graph);
        let metrics = engine.run_service(transport, Some(&mut driver));
        self.drain_queue_shutting_down();
        metrics
    }

    /// [`run_leader`](WalkService::run_leader) with an optional segment
    /// pool — the cluster twin of
    /// [`run_with_pool`](WalkService::run_with_pool). The pool stays
    /// leader-resident: workers never load or see segments, since
    /// stitched requests execute entirely on the leader.
    ///
    /// # Errors
    ///
    /// Fails before serving when the pool's program is not stitchable.
    pub fn run_leader_with_pool<'g, P, T>(
        &self,
        graph: impl Into<GraphRef<'g>>,
        program: P,
        mut cfg: WalkConfig,
        transport: &mut T,
        pool: Option<SegmentPool>,
    ) -> Result<WalkMetrics, StitchError>
    where
        P: WalkerProgram + Clone + Send + 'g,
        T: Transport<Msg<P>>,
    {
        cfg.record_paths = true;
        let graph: GraphRef<'g> = graph.into();
        let stitch = match pool {
            None => None,
            Some(pool) => Some(StitchExec::new(graph, &program, pool)?),
        };
        let engine = RandomWalkEngine::new(graph, program, cfg);
        let mut driver = QueueDriver::new(self.shared.clone(), graph);
        driver.stitch = stitch;
        let metrics = engine.run_service(transport, Some(&mut driver));
        self.drain_queue_shutting_down();
        Ok(metrics)
    }

    /// Runs a **non-leader rank** of a real cluster: no queue, no
    /// driver — the rank is steered entirely by the leader's broadcast
    /// directives. Call with the same graph, program, and config as the
    /// leader (the SPMD contract).
    pub fn run_worker<'g, P: WalkerProgram, T: Transport<Msg<P>>>(
        graph: impl Into<GraphRef<'g>>,
        program: P,
        mut cfg: WalkConfig,
        transport: &mut T,
    ) -> WalkMetrics {
        cfg.record_paths = true;
        let engine = RandomWalkEngine::new(graph, program, cfg);
        engine.run_service(transport, None::<&mut NoopDriver>)
    }

    /// Answers any request or update that slipped into a queue after the
    /// final poll (the submit/shutdown race window) so no client blocks
    /// on a response that will never come.
    fn drain_queue_shutting_down(&self) {
        // Collect under the locks, respond after releasing them: a
        // callback responder may itself take service locks (e.g. a
        // stats snapshot).
        let drained: Vec<QueuedReq> = lock(&self.shared.queue).drain_all();
        for q in drained {
            q.responder.respond(WalkResponse {
                status: Status::ShuttingDown,
                paths: Vec::new(),
            });
        }
        let drained: Vec<QueuedUpdate> = lock(&self.shared.updates).drain(..).collect();
        for u in drained {
            u.responder.respond(WalkResponse {
                status: Status::ShuttingDown,
                paths: Vec::new(),
            });
        }
    }
}

/// Leader-side stitched-execution resources: the segment pool plus a
/// runner monomorphized over the served program (boxed so `QueueDriver`
/// stays non-generic). Stitched requests run synchronously in the
/// leader's poll — the leader holds a full [`GraphRef`] at any world
/// size, and splicing does no sampling, so the run is cheap relative to
/// a superstep.
pub(crate) struct StitchExec<'g> {
    /// The segment pool; consumed across requests, invalidated on
    /// updates.
    pool: SegmentPool,
    /// Runs the stitched driver: `(pool, starts, epoch, seed)`.
    run: StitchRunner<'g>,
}

/// The boxed stitched-driver entry point held by [`StitchExec`].
type StitchRunner<'g> =
    Box<dyn Fn(&mut SegmentPool, &[VertexId], u64, u64) -> WalkResult + Send + 'g>;

impl<'g> StitchExec<'g> {
    /// Builds the exec for `program` over `graph`, validating
    /// stitchability (same typed error the CLI raises at parse time).
    fn new<P: WalkerProgram + Clone + Send + 'g>(
        graph: GraphRef<'g>,
        program: &P,
        pool: SegmentPool,
    ) -> Result<Self, StitchError> {
        let driver = StitchedDriver::new(graph, program.clone())?;
        Ok(StitchExec {
            pool,
            run: Box::new(move |pool, starts, epoch, seed| driver.run(pool, starts, epoch, seed)),
        })
    }
}

/// One admitted request awaiting completion.
struct Pending {
    tenant: String,
    base: u64,
    n: u64,
    finished: u64,
    frags: Vec<PathEntry>,
    deadline: Option<Instant>,
    enqueued: Instant,
    responder: Responder,
}

/// The leader-side [`ServeDriver`] bridging the admission queue and the
/// engine's serve loop.
pub(crate) struct QueueDriver<'g> {
    shared: Arc<ServeShared>,
    vertex_count: usize,
    /// `Some` when serving a dynamic graph: the leader validates update
    /// batches and assigns their epochs. `None` (static CSR) refuses
    /// updates with `Status::Invalid`.
    dyn_graph: Option<&'g DynGraph>,
    /// The graph epoch of the most recently scheduled update (starts at
    /// the graph's epoch at service start). Leader-authoritative: the
    /// engine applies updates at exactly these epochs, in order.
    epoch: u64,
    /// Cluster-wide minimum pinned epoch gathered from this superstep's
    /// deltas; `u64::MAX` when no node reported a live walker.
    min_pinned: u64,
    /// The last retirement watermark broadcast, so idle supersteps don't
    /// re-issue O(V) retirement sweeps.
    last_retire: u64,
    /// Next request tag; 0 is reserved for batch walkers.
    next_tag: u64,
    /// Next global walker-id base. Bases grow monotonically, so every
    /// in-flight request owns a disjoint id range.
    next_base: u64,
    pending: HashMap<u64, Pending>,
    /// Walker-id base → request tag, for routing path fragments. A
    /// fragment's owner is the greatest base at or below its walker id
    /// (checked against the request's range before accepting).
    bases: BTreeMap<u64, u64>,
    /// The latest cumulative [`LiveSample`] per node, refreshed from
    /// each superstep's deltas.
    ///
    /// [`LiveSample`]: knightking_core::LiveSample
    live_nodes: Vec<knightking_core::LiveSample>,
    /// Requests admitted so far, for trace sampling (request `k` is
    /// traced when `k % trace_sample == 0`).
    admit_seq: u64,
    /// Tags of in-flight traced requests, so their completion can end
    /// the trace on every node via `Directives::end_traces`.
    traced: Vec<u64>,
    /// Stitched-execution resources; `None` when the service holds no
    /// segment pool (stitch-flagged requests are then refused).
    stitch: Option<StitchExec<'g>>,
    /// Cumulative leader-side stitched counters. Folded into the stats
    /// after every `apply_live` (which overwrites the stitch counters
    /// with node sums — zero in practice, since stitched requests never
    /// enter the BSP loop).
    stitch_totals: WalkMetrics,
}

impl<'g> QueueDriver<'g> {
    pub(crate) fn new(shared: Arc<ServeShared>, graph: GraphRef<'g>) -> Self {
        QueueDriver {
            shared,
            vertex_count: graph.vertex_count(),
            dyn_graph: graph.dyn_graph(),
            epoch: graph.dyn_graph().map_or(0, |g| g.epoch()),
            min_pinned: u64::MAX,
            last_retire: 0,
            next_tag: 1,
            next_base: 0,
            pending: HashMap::new(),
            bases: BTreeMap::new(),
            live_nodes: Vec::new(),
            admit_seq: 0,
            traced: Vec::new(),
            stitch: None,
            stitch_totals: WalkMetrics::default(),
        }
    }

    /// Completes one request: shifts fragment ids back to request-local,
    /// reassembles paths, and responds.
    fn complete(&mut self, tag: u64, stats: &mut ServeStats) {
        let p = self.pending.remove(&tag).expect("completing a known tag");
        self.bases.remove(&p.base);
        let mut frags = p.frags;
        for e in &mut frags {
            e.walker -= p.base;
        }
        let paths = WalkResult::assemble_paths(p.n, frags);
        stats.completed += 1;
        stats
            .latency_us
            .record(p.enqueued.elapsed().as_micros() as u64);
        // stats → queue nesting matches poll()'s lock order.
        lock(&self.shared.queue).note_completed(&p.tenant);
        p.responder.respond(WalkResponse {
            status: Status::Ok,
            paths,
        });
    }

    /// Materializes and validates a request's start vertices, reusing the
    /// engine's own validation so the error names the offending vertex.
    fn materialize_starts(&self, spec: &StartSpec) -> Result<Vec<VertexId>, String> {
        let starts = match spec {
            StartSpec::Count(n) => WalkerStarts::Count(*n),
            StartSpec::Explicit(v) => WalkerStarts::Explicit(v.clone()),
        };
        starts.validate(self.vertex_count)?;
        Ok(starts.materialize(self.vertex_count))
    }
}

impl ServeDriver for QueueDriver<'_> {
    fn absorb(&mut self, node: usize, delta: ServeDelta) {
        self.min_pinned = self.min_pinned.min(delta.min_pinned);
        if self.live_nodes.len() <= node {
            self.live_nodes
                .resize(node + 1, knightking_core::LiveSample::default());
        }
        self.live_nodes[node] = delta.live;
        if !delta.spans.is_empty() {
            lock(&self.shared.trace).extend(delta.spans);
        }
        for e in delta.paths {
            // Route by id range. Fragments of killed requests find either
            // no base or a foreign range and are dropped.
            let Some((&base, &tag)) = self.bases.range(..=e.walker).next_back() else {
                continue;
            };
            if let Some(p) = self.pending.get_mut(&tag) {
                if e.walker < base + p.n {
                    p.frags.push(e);
                }
            }
        }
        for f in delta.finished {
            if let Some(p) = self.pending.get_mut(&f.tag) {
                p.finished += 1;
            }
        }
    }

    fn poll(&mut self, _superstep: u64) -> Directives {
        let mut dir = Directives::default();
        let shared = self.shared.clone();
        let mut stats = lock(&shared.stats);
        stats.supersteps += 1;
        stats.apply_live(&self.live_nodes);
        // apply_live overwrote the stitch counters with node sums; add
        // the leader's own, where stitched requests actually run.
        stats.segments_spliced += self.stitch_totals.segments_spliced;
        stats.stitch_pool_dry += self.stitch_totals.stitch_pool_dry;
        stats.stitch_fallback_steps += self.stitch_totals.stitch_fallback_steps;
        stats.epoch = self.epoch;
        // Lag of the oldest pinned walker behind the live epoch (0 when
        // idle or fully caught up). min_pinned is this superstep's
        // gather; it resets below after retirement uses it.
        stats.pinned_lag = self.epoch - self.min_pinned.min(self.epoch);

        // Completions first: every walker of the request has landed.
        let done: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.finished >= p.n)
            .map(|(&t, _)| t)
            .collect();
        let completed_now = done.len() as u64;
        for tag in done {
            if let Some(i) = self.traced.iter().position(|&t| t == tag) {
                self.traced.swap_remove(i);
                dir.end_traces.push(tag);
            }
            self.complete(tag, &mut stats);
        }
        stats.completed_per_superstep.record(completed_now);

        // Deadlines: force-terminate overdue requests. Their walkers are
        // killed engine-side; fragments already collected are dropped.
        let now = Instant::now();
        let overdue: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline.is_some_and(|d| now >= d))
            .map(|(&t, _)| t)
            .collect();
        for tag in overdue {
            let p = self.pending.remove(&tag).expect("expiring a known tag");
            self.bases.remove(&p.base);
            // Traced tags leave `traced` too: the kill directive already
            // ends span recording on every node.
            self.traced.retain(|&t| t != tag);
            dir.kill.push(tag);
            stats.deadline_exceeded += 1;
            p.responder.respond(WalkResponse {
                status: Status::DeadlineExceeded,
                paths: Vec::new(),
            });
        }

        // Updates: at most one batch per superstep, so each batch gets
        // its own epoch and every rank applies it at one well-defined
        // boundary (before that superstep's admissions). The response
        // goes out at scheduling time — the apply itself is infallible
        // once the batch validates, since validation is ownership- and
        // rank-independent.
        if let Some(u) = lock(&shared.updates).pop_front() {
            let verdict = match self.dyn_graph {
                None => Err("the served graph is a static CSR and cannot take live \
                     updates; serve a dynamic graph"
                    .to_string()),
                Some(g) => g.validate(&u.batch).map_err(|e| e.to_string()),
            };
            match verdict {
                Err(msg) => {
                    u.responder.respond(WalkResponse {
                        status: Status::Invalid(msg),
                        paths: Vec::new(),
                    });
                }
                Ok(()) => {
                    self.epoch += 1;
                    // Segments through any touched vertex are stale from
                    // this epoch on; stitched requests pinned earlier keep
                    // splicing them.
                    if let Some(exec) = self.stitch.as_mut() {
                        exec.pool.invalidate(&u.batch, self.epoch);
                    }
                    dir.update = Some(EpochUpdate {
                        epoch: self.epoch,
                        batch: u.batch,
                    });
                    stats.updates += 1;
                    u.responder.respond(WalkResponse {
                        status: Status::Updated { epoch: self.epoch },
                        paths: Vec::new(),
                    });
                }
            }
        }

        // Retirement: nothing below the cluster-wide minimum pinned
        // epoch (or the live epoch, when no walker is in flight) can
        // ever be read again. Re-broadcast only when the watermark
        // advances — a retirement sweep is O(V) on every rank.
        if self.dyn_graph.is_some() {
            let watermark = self.min_pinned.min(self.epoch);
            if watermark > self.last_retire {
                dir.retire = watermark;
                self.last_retire = watermark;
            }
        }
        self.min_pinned = u64::MAX;

        // Admissions: bounded batch off the queue, in weighted
        // fair-queueing order across tenants.
        let mut queue = lock(&shared.queue);
        stats.queue_depth.record(queue.len() as u64);
        let mut admitted_now = 0u64;
        while (admitted_now as usize) < shared.cfg.max_admit_per_superstep {
            let Some(q) = queue.pop() else { break };
            let starts = match self.materialize_starts(&q.req.starts) {
                Ok(s) => s,
                Err(msg) => {
                    q.responder.respond(WalkResponse {
                        status: Status::Invalid(msg),
                        paths: Vec::new(),
                    });
                    continue;
                }
            };
            if q.req.stitch {
                // Stitched requests run synchronously right here: the
                // leader holds a full graph view at any world size and
                // splicing does no sampling, so the run is admission-cost.
                // They never enter the BSP loop, count against the
                // per-superstep admission budget, and pin the current
                // epoch exactly like freshly admitted exact walkers.
                let Some(exec) = self.stitch.as_mut() else {
                    q.responder.respond(WalkResponse {
                        status: Status::Invalid(
                            "this service holds no segment pool; start it with a pool \
                             (kk serve --pool) or resend the request without --stitch"
                                .to_string(),
                        ),
                        paths: Vec::new(),
                    });
                    continue;
                };
                if q.req.deadline_ms > 0
                    && q.enqueued.elapsed() >= Duration::from_millis(q.req.deadline_ms)
                {
                    stats.deadline_exceeded += 1;
                    q.responder.respond(WalkResponse {
                        status: Status::DeadlineExceeded,
                        paths: Vec::new(),
                    });
                    continue;
                }
                let result = (exec.run)(&mut exec.pool, &starts, self.epoch, q.req.seed);
                self.stitch_totals.merge(&result.metrics);
                stats.segments_spliced += result.metrics.segments_spliced;
                stats.stitch_pool_dry += result.metrics.stitch_pool_dry;
                stats.stitch_fallback_steps += result.metrics.stitch_fallback_steps;
                stats.admitted += 1;
                stats.completed += 1;
                stats
                    .latency_us
                    .record(q.enqueued.elapsed().as_micros() as u64);
                admitted_now += 1;
                queue.note_completed(&q.tenant);
                q.responder.respond(WalkResponse {
                    status: Status::Stitched {
                        segments_spliced: result.metrics.segments_spliced,
                        fallback_steps: result.metrics.stitch_fallback_steps,
                    },
                    paths: result.paths,
                });
                continue;
            }
            if starts.is_empty() {
                // Zero walkers: trivially complete.
                stats.completed += 1;
                stats
                    .latency_us
                    .record(q.enqueued.elapsed().as_micros() as u64);
                queue.note_completed(&q.tenant);
                q.responder.respond(WalkResponse {
                    status: Status::Ok,
                    paths: Vec::new(),
                });
                continue;
            }
            let tag = self.next_tag;
            self.next_tag += 1;
            let base = self.next_base;
            self.next_base += starts.len() as u64;
            self.bases.insert(base, tag);
            self.pending.insert(
                tag,
                Pending {
                    tenant: q.tenant,
                    base,
                    n: starts.len() as u64,
                    finished: 0,
                    frags: Vec::new(),
                    deadline: (q.req.deadline_ms > 0)
                        .then(|| q.enqueued + Duration::from_millis(q.req.deadline_ms)),
                    enqueued: q.enqueued,
                    responder: q.responder,
                },
            );
            let trace = shared.cfg.trace_sample > 0
                && self.admit_seq.is_multiple_of(shared.cfg.trace_sample);
            self.admit_seq += 1;
            if trace {
                self.traced.push(tag);
            }
            dir.admit.push(AdmitRequest {
                tag,
                base_id: base,
                seed: q.req.seed,
                starts,
                trace,
            });
            stats.admitted += 1;
            admitted_now += 1;
        }
        stats.admitted_per_superstep.record(admitted_now);
        stats.queue_len = queue.len() as u64;
        let point = SeriesPoint {
            superstep: stats.supersteps,
            active_walkers: stats.active_walkers,
            queue_depth: stats.queue_len,
            admitted: stats.admitted,
            completed: stats.completed,
        };
        stats.series.push(point);

        // Drain-then-exit: requests already queued at shutdown are still
        // admitted and finished; only new submissions are refused (the
        // handle gates those). The engine exits once no walker remains.
        dir.shutdown = shared.shutdown.load(Ordering::Acquire) && queue.is_empty();
        dir
    }
}
