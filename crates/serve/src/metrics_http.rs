//! A minimal HTTP/1.1 exposition endpoint for the metrics plane.
//!
//! `kk serve --metrics-addr` binds a second listener that answers every
//! request with the Prometheus text exposition (0.0.4) rendered from the
//! service's live [`StatsReport`] — `curl http://addr/metrics` (any path
//! works; scrapers only ever GET). Hand-rolled like every other wire
//! format in the repo: no HTTP library, just enough of the protocol for
//! Prometheus, `curl`, and browsers to scrape one plaintext document per
//! connection.
//!
//! Scrapes ride the same `knightking-reactor` event loop as the serve
//! front door, which is what makes them robust against misbehaving
//! peers: a client that trickles its request head one byte at a time is
//! parsed incrementally, a reader too slow to absorb the exposition is
//! flushed under write-interest and evicted at the write deadline, and
//! a half-open socket is reaped by the idle timer — all without a
//! thread parked on any of them.
//!
//! [`StatsReport`]: crate::stats::StatsReport

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::thread;
use std::time::Duration;

use knightking_reactor::{CloseReason, ConnHandler, ConnIo, Reactor, ReactorConfig, Token};

use crate::service::ServiceHandle;

/// Longest request head accepted before the connection is dropped.
const MAX_HEAD: usize = 8192;

/// The scrape handler: accumulate the request head, answer once, close.
struct ScrapeHandler {
    service: ServiceHandle,
}

/// Finds the end of an HTTP request head (`\r\n\r\n` or bare `\n\n`),
/// returning the offset just past it.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

impl ConnHandler for ScrapeHandler {
    type Conn = ();

    fn on_open(&mut self, _token: Token, _peer: SocketAddr) {}

    fn on_data(
        &mut self,
        io_: &mut ConnIo<'_>,
        _conn: &mut (),
        input: &mut Vec<u8>,
    ) -> io::Result<()> {
        let Some(end) = head_end(input) else {
            if input.len() > MAX_HEAD {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request head exceeds 8 KiB",
                ));
            }
            return Ok(());
        };
        input.drain(..end);
        let body = self.service.report().render_prometheus();
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        io_.send(header.as_bytes());
        io_.send(body.as_bytes());
        // One exposition per connection (how Prometheus scrapes):
        // close once the buffered response has flushed.
        io_.close();
        Ok(())
    }

    fn on_close(&mut self, _token: Token, _conn: (), _reason: CloseReason) {}
}

/// Accepts scrape connections on `listener` until the service shuts
/// down, serving them all from one reactor thread. Each connection gets
/// one rendered exposition and is closed (`Connection: close`), which
/// is how Prometheus scrapes by default.
///
/// # Errors
///
/// Propagates reactor setup failures. Per-connection errors only end
/// that connection.
pub fn metrics_listener(listener: TcpListener, handle: ServiceHandle) -> io::Result<()> {
    let rcfg = ReactorConfig {
        max_connections: 256,
        idle_timeout: Duration::from_secs(5),
        write_deadline: Duration::from_secs(2),
        ..ReactorConfig::default()
    };
    let reactor = {
        let service = handle.clone();
        Reactor::new(listener, rcfg, move |_rh| ScrapeHandler { service })?
    };
    let rh = reactor.handle();
    let watcher = thread::spawn(move || loop {
        if handle.is_shutdown() {
            rh.stop();
            return;
        }
        thread::sleep(Duration::from_millis(10));
    });
    let res = reactor.run();
    let _ = watcher.join();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, WalkService};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn scrape_returns_prometheus_text() {
        let (_service, handle) = WalkService::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = handle.clone();
        let t = thread::spawn(move || metrics_listener(listener, h));

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"));
        let body = resp.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("kk_requests_admitted_total 0"));
        assert!(body.contains("kk_supersteps_total 0"));
        // Content-Length matches the body exactly.
        let len: usize = resp
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());

        handle.shutdown();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn scrape_survives_one_byte_at_a_time_requests() {
        let (_service, handle) = WalkService::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = handle.clone();
        let t = thread::spawn(move || metrics_listener(listener, h));

        let mut conn = TcpStream::connect(addr).unwrap();
        for &b in b"GET / HTTP/1.1\r\n\r\n" {
            conn.write_all(&[b]).unwrap();
            conn.flush().unwrap();
        }
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("kk_supersteps_total"));

        handle.shutdown();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_scrapes_all_answered() {
        let (_service, handle) = WalkService::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = handle.clone();
        let t = thread::spawn(move || metrics_listener(listener, h));

        // Open all connections first, then send all requests: every
        // scrape is concurrently resident in the one reactor.
        let mut conns: Vec<TcpStream> =
            (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for c in &mut conns {
            c.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        }
        for mut c in conns {
            let mut resp = String::new();
            c.read_to_string(&mut resp).unwrap();
            assert!(resp.contains("kk_requests_admitted_total"), "{resp}");
        }

        handle.shutdown();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_head_drops_the_connection() {
        let (_service, handle) = WalkService::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = handle.clone();
        let t = thread::spawn(move || metrics_listener(listener, h));

        let mut conn = TcpStream::connect(addr).unwrap();
        // No blank line anywhere: the head never ends.
        let junk = vec![b'x'; MAX_HEAD + 1024];
        let _ = conn.write_all(&junk);
        let mut resp = Vec::new();
        let _ = conn.read_to_end(&mut resp);
        assert!(resp.is_empty(), "got a response to a bogus head");

        handle.shutdown();
        t.join().unwrap().unwrap();
    }
}
