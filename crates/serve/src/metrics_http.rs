//! A minimal HTTP/1.1 exposition endpoint for the metrics plane.
//!
//! `kk serve --metrics-addr` binds a second listener that answers every
//! request with the Prometheus text exposition (0.0.4) rendered from the
//! service's live [`StatsReport`] — `curl http://addr/metrics` (any path
//! works; scrapers only ever GET). Hand-rolled like every other wire
//! format in the repo: no HTTP library, just enough of the protocol for
//! Prometheus, `curl`, and browsers to scrape one plaintext document per
//! connection.
//!
//! [`StatsReport`]: crate::stats::StatsReport

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use crate::service::ServiceHandle;

/// Accepts scrape connections on `listener` until the service shuts
/// down. Each connection gets one rendered exposition and is closed
/// (`Connection: close`), which is how Prometheus scrapes by default.
///
/// # Errors
///
/// Propagates listener configuration failures. Per-connection errors
/// only end that connection.
pub fn metrics_listener(listener: TcpListener, handle: ServiceHandle) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if handle.is_shutdown() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are tiny; serve them inline rather than
                // spawning per-connection threads.
                let _ = serve_scrape(stream, &handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads (and discards) the request head, then writes one exposition.
fn serve_scrape(mut stream: TcpStream, handle: &ServiceHandle) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Drain the request head up to the blank line; cap how much we will
    // read so a misbehaving client can't hold the loop.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while head.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let body = handle.report().render_prometheus();
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, WalkService};

    #[test]
    fn scrape_returns_prometheus_text() {
        let (_service, handle) = WalkService::new(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = handle.clone();
        let t = thread::spawn(move || metrics_listener(listener, h));

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"));
        let body = resp.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("kk_requests_admitted_total 0"));
        assert!(body.contains("kk_supersteps_total 0"));
        // Content-Length matches the body exactly.
        let len: usize = resp
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());

        handle.shutdown();
        t.join().unwrap().unwrap();
    }
}
