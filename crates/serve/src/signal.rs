//! Minimal SIGINT/SIGTERM handling (no external crates): a C signal
//! handler flips an atomic flag; a watcher thread turns the flag into a
//! [`CancelToken`] cancellation so long-running walks and the serve loop
//! can drain and flush instead of dying mid-write.

use knightking_core::CancelToken;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;
    use std::time::Duration;

    use knightking_core::CancelToken;

    static FLAG: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a relaxed store.
        FLAG.store(true, Ordering::Relaxed);
    }

    pub fn install() -> CancelToken {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        let token = CancelToken::new();
        let watcher = token.clone();
        thread::spawn(move || loop {
            if FLAG.load(Ordering::Relaxed) {
                watcher.cancel();
                return;
            }
            thread::sleep(Duration::from_millis(50));
        });
        token
    }
}

#[cfg(not(unix))]
mod imp {
    use knightking_core::CancelToken;

    pub fn install() -> CancelToken {
        // No signal plumbing off unix; the token still works for
        // programmatic cancellation.
        CancelToken::new()
    }
}

/// Installs SIGINT/SIGTERM handlers (on unix) and returns a token they
/// cancel. Safe to call more than once; each call returns a fresh token
/// watched by its own thread.
pub fn install() -> CancelToken {
    imp::install()
}
