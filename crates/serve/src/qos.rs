//! Per-tenant admission control: weighted fair queueing and quotas.
//!
//! The admission queue is no longer one FIFO — each tenant (named in
//! the client hello) gets its own lane, and the driver pops requests by
//! **deficit round-robin**: every time the scheduler's cursor visits a
//! non-empty lane it banks `QUANTUM × weight` walkers of credit, and a
//! lane may dequeue its head request once its bank covers the request's
//! walker count. Over any busy interval, tenant `i` therefore admits
//! walkers in proportion to `weight_i / Σ weight_j` regardless of how
//! request sizes are distributed — one tenant's 10k-walker monsters
//! cannot starve another's single-walker lookups.
//!
//! Two backpressure layers ride on top, both answered with
//! `Status::Rejected { retry_after_ms }` so clients back off instead of
//! piling on:
//!
//! * a **global capacity** across all lanes (the pre-existing
//!   `queue_capacity` bound), and
//! * an optional **per-tenant quota** on lane depth, which sheds a
//!   flooding tenant while the queue still has room for everyone else.
//!   Quota sheds are counted separately (`shed`) so operators can tell
//!   "the service is full" from "tenant X is being throttled".
//!
//! Idle lanes forfeit their bank (classic DRR): fairness is about
//! sharing the present backlog, not hoarding credit from quiet hours.

use std::collections::{HashMap, VecDeque};

use crate::protocol::StartSpec;
use crate::service::QueuedReq;
use crate::stats::TenantStat;

/// Walkers of credit banked per cursor visit, scaled by lane weight.
/// Small enough that single-walker lanes interleave finely, large
/// enough that a typical request clears in a few rotations.
const QUANTUM: u64 = 64;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Shed {
    /// The global queue is at capacity.
    QueueFull,
    /// This tenant's lane is at its quota.
    TenantQuota,
}

/// One tenant's lane.
struct Lane {
    name: String,
    weight: u32,
    /// Banked walker credit (deficit counter).
    deficit: u64,
    queue: VecDeque<QueuedReq>,
    admitted: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
}

impl Lane {
    fn new(name: String, weight: u32) -> Lane {
        Lane {
            name,
            weight: weight.max(1),
            deficit: 0,
            queue: VecDeque::new(),
            admitted: 0,
            completed: 0,
            rejected: 0,
            shed: 0,
        }
    }
}

/// The weighted fair admission queue.
pub(crate) struct FairQueue {
    capacity: usize,
    /// Per-tenant lane-depth bound; `0` means unlimited.
    quota: usize,
    default_weight: u32,
    lanes: Vec<Lane>,
    index: HashMap<String, usize>,
    cursor: usize,
    len: usize,
}

/// A request's cost in walkers (its fair-queueing currency). Zero-walker
/// requests cost 1 so they still consume a scheduling slot.
fn cost(req: &QueuedReq) -> u64 {
    match &req.req.starts {
        StartSpec::Count(n) => (*n).max(1),
        StartSpec::Explicit(v) => (v.len() as u64).max(1),
    }
}

impl FairQueue {
    /// A queue bounded at `capacity` requests overall and `quota` per
    /// tenant (`0` = no per-tenant bound). `weights` pre-registers named
    /// tenants; anyone else gets `default_weight`.
    pub(crate) fn new(
        capacity: usize,
        quota: usize,
        default_weight: u32,
        weights: &[(String, u32)],
    ) -> FairQueue {
        let mut q = FairQueue {
            capacity,
            quota,
            default_weight: default_weight.max(1),
            lanes: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            len: 0,
        };
        for (name, w) in weights {
            let i = q.lane_index(name);
            q.lanes[i].weight = (*w).max(1);
        }
        q
    }

    fn lane_index(&mut self, tenant: &str) -> usize {
        if let Some(&i) = self.index.get(tenant) {
            return i;
        }
        let i = self.lanes.len();
        self.lanes
            .push(Lane::new(tenant.to_string(), self.default_weight));
        self.index.insert(tenant.to_string(), i);
        i
    }

    /// Queued requests across all lanes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether every lane is empty.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `req` on its tenant's lane, or hands it back with the
    /// shed reason when a bound is hit.
    pub(crate) fn push(&mut self, req: QueuedReq) -> Result<(), (QueuedReq, Shed)> {
        let i = self.lane_index(&req.tenant);
        if self.len >= self.capacity {
            self.lanes[i].rejected += 1;
            return Err((req, Shed::QueueFull));
        }
        if self.quota > 0 && self.lanes[i].queue.len() >= self.quota {
            self.lanes[i].rejected += 1;
            self.lanes[i].shed += 1;
            return Err((req, Shed::TenantQuota));
        }
        self.lanes[i].queue.push_back(req);
        self.len += 1;
        Ok(())
    }

    /// Dequeues the next request under deficit round-robin. Within a
    /// lane, order stays FIFO; across lanes, admitted walker counts
    /// track the weight ratio.
    pub(crate) fn pop(&mut self) -> Option<QueuedReq> {
        if self.len == 0 {
            return None;
        }
        let n = self.lanes.len();
        let mut visits = 0usize;
        loop {
            let i = self.cursor;
            let lane = &mut self.lanes[i];
            if lane.queue.is_empty() {
                // Idle lanes forfeit banked credit.
                lane.deficit = 0;
                self.cursor = (i + 1) % n;
                continue;
            }
            let c = cost(&lane.queue[0]);
            if lane.deficit >= c {
                lane.deficit -= c;
                lane.admitted += 1;
                self.len -= 1;
                // Cursor stays: the lane keeps its turn while credit
                // lasts, then pays its way back around.
                return lane.queue.pop_front();
            }
            lane.deficit += QUANTUM * u64::from(lane.weight);
            self.cursor = (i + 1) % n;
            visits += 1;
            if visits >= n {
                // A full rotation replenished every non-empty lane once
                // without serving anything: the cheapest head still owes
                // rotations. Bank them all at once instead of spinning.
                let rounds = self
                    .lanes
                    .iter()
                    .filter(|l| !l.queue.is_empty())
                    .map(|l| {
                        let per = QUANTUM * u64::from(l.weight);
                        cost(&l.queue[0]).saturating_sub(l.deficit).div_ceil(per)
                    })
                    .min()
                    .unwrap_or(0);
                for l in self.lanes.iter_mut().filter(|l| !l.queue.is_empty()) {
                    l.deficit += rounds * QUANTUM * u64::from(l.weight);
                }
                visits = 0;
            }
        }
    }

    /// Records a completion against `tenant`'s counters.
    pub(crate) fn note_completed(&mut self, tenant: &str) {
        if let Some(&i) = self.index.get(tenant) {
            self.lanes[i].completed += 1;
        }
    }

    /// Empties every lane (shutdown drain), returning the requests in
    /// lane order.
    pub(crate) fn drain_all(&mut self) -> Vec<QueuedReq> {
        self.len = 0;
        self.lanes
            .iter_mut()
            .flat_map(|l| l.queue.drain(..))
            .collect()
    }

    /// Per-tenant snapshot, sorted by name.
    pub(crate) fn tenant_stats(&self) -> Vec<TenantStat> {
        let mut v: Vec<TenantStat> = self
            .lanes
            .iter()
            .map(|l| TenantStat {
                name: l.name.clone(),
                weight: l.weight,
                queued: l.queue.len() as u64,
                admitted: l.admitted,
                completed: l.completed,
                rejected: l.rejected,
                shed: l.shed,
            })
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WalkRequest;
    use crate::service::Responder;
    use std::time::Instant;

    fn req(tenant: &str, walkers: u64) -> QueuedReq {
        QueuedReq {
            tenant: tenant.to_string(),
            req: WalkRequest {
                seed: 0,
                starts: StartSpec::Count(walkers),
                deadline_ms: 0,
                stitch: false,
            },
            enqueued: Instant::now(),
            responder: Responder::Callback(Box::new(|_| {})),
        }
    }

    #[test]
    fn single_tenant_stays_fifo() {
        let mut q = FairQueue::new(16, 0, 1, &[]);
        for w in [5, 1, 300, 2] {
            q.push(req("a", w)).map_err(|_| ()).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| cost(&r)).collect();
        assert_eq!(order, vec![5, 1, 300, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn weighted_shares_track_weights() {
        // Equal-cost requests, weights 1 : 3 — over a long run tenant b
        // should admit ~3x the walkers of tenant a.
        let mut q = FairQueue::new(1000, 0, 1, &[("b".to_string(), 3)]);
        for _ in 0..200 {
            q.push(req("a", 10)).map_err(|_| ()).unwrap();
            q.push(req("b", 10)).map_err(|_| ()).unwrap();
        }
        let (mut a, mut b) = (0u64, 0u64);
        for _ in 0..100 {
            let r = q.pop().unwrap();
            match r.tenant.as_str() {
                "a" => a += cost(&r),
                _ => b += cost(&r),
            }
        }
        // 100 pops of cost 10 = 1000 walkers; the 1:3 split is 250/750.
        // DRR is exact to within one quantum per lane.
        assert!((200..=320).contains(&a), "tenant a got {a}");
        assert!((680..=800).contains(&b), "tenant b got {b}");
    }

    #[test]
    fn giant_requests_do_not_starve_small_ones() {
        let mut q = FairQueue::new(100, 0, 1, &[]);
        // Tenant "big" queues 100k-walker monsters; "small" queues
        // 1-walker lookups. Both make progress, roughly alternating in
        // walker share.
        for _ in 0..3 {
            q.push(req("big", 100_000)).map_err(|_| ()).unwrap();
        }
        for _ in 0..50 {
            q.push(req("small", 1)).map_err(|_| ()).unwrap();
        }
        let mut popped = Vec::new();
        while let Some(r) = q.pop() {
            popped.push(r.tenant.clone());
        }
        assert_eq!(popped.len(), 53);
        // The small lane drains long before the last monster: count
        // smalls served before the final big.
        let last_big = popped.iter().rposition(|t| t == "big").unwrap();
        let smalls_before = popped[..last_big].iter().filter(|t| *t == "small").count();
        assert!(
            smalls_before >= 45,
            "only {smalls_before} small requests beat the last monster"
        );
    }

    #[test]
    fn quota_sheds_only_the_flooding_tenant() {
        let mut q = FairQueue::new(100, 2, 1, &[]);
        q.push(req("flood", 1)).map_err(|_| ()).unwrap();
        q.push(req("flood", 1)).map_err(|_| ()).unwrap();
        let (back, why) = q.push(req("flood", 1)).unwrap_err();
        assert_eq!(why, Shed::TenantQuota);
        assert_eq!(back.tenant, "flood");
        // Another tenant still gets in.
        q.push(req("calm", 1)).map_err(|_| ()).unwrap();
        assert_eq!(q.len(), 3);
        let stats = q.tenant_stats();
        let flood = stats.iter().find(|t| t.name == "flood").unwrap();
        assert_eq!(flood.rejected, 1);
        assert_eq!(flood.shed, 1);
        let calm = stats.iter().find(|t| t.name == "calm").unwrap();
        assert_eq!(calm.rejected, 0);
    }

    #[test]
    fn capacity_rejects_across_all_tenants() {
        let mut q = FairQueue::new(2, 0, 1, &[]);
        q.push(req("a", 1)).map_err(|_| ()).unwrap();
        q.push(req("b", 1)).map_err(|_| ()).unwrap();
        let (_, why) = q.push(req("c", 1)).unwrap_err();
        assert_eq!(why, Shed::QueueFull);
        let stats = q.tenant_stats();
        let c = stats.iter().find(|t| t.name == "c").unwrap();
        assert_eq!(c.rejected, 1);
        assert_eq!(c.shed, 0);
    }

    #[test]
    fn drain_returns_everything_and_counters_survive() {
        let mut q = FairQueue::new(10, 0, 2, &[]);
        for t in ["a", "b", "a"] {
            q.push(req(t, 1)).map_err(|_| ()).unwrap();
        }
        let _ = q.pop().unwrap();
        q.note_completed("a");
        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|r| r.tenant), None);
        let stats = q.tenant_stats();
        assert_eq!(stats.iter().map(|t| t.admitted).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|t| t.completed).sum::<u64>(), 1);
    }
}
