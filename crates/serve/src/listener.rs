//! The TCP front door: accepts query clients and bridges them to a
//! [`ServiceHandle`].
//!
//! One thread per connection; each connection may pipeline any number of
//! requests (responses come back in request order per connection, since
//! the handler waits for each walk before reading the next frame).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use knightking_net::frame::{read_frame, tag, write_frame};
use knightking_net::{from_bytes, to_bytes};

use crate::protocol::{Request, Status, WalkResponse, SERVE_MAGIC, SERVE_VERSION};
use crate::service::ServiceHandle;

/// Accepts query clients on `listener` until the service shuts down,
/// spawning a handler thread per connection. Returns once the accept
/// loop observes shutdown; connection threads may still be writing final
/// responses — wait on [`ServiceHandle::active_connections`] before
/// exiting the process.
///
/// # Errors
///
/// Propagates listener configuration failures. Per-connection errors
/// (bad hello, mid-stream disconnect) only end that connection.
pub fn serve_listener(listener: TcpListener, handle: ServiceHandle) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if handle.is_shutdown() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handle = handle.clone();
                handle.conn_opened();
                thread::spawn(move || {
                    let _ = handle_conn(stream, &handle);
                    handle.conn_closed();
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one client connection: hello, then a request/response loop
/// until the client closes or the service shuts down.
fn handle_conn(mut stream: TcpStream, handle: &ServiceHandle) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;

    let mut hello = [0u8; 6];
    stream.read_exact(&mut hello)?;
    if hello[0..4] != SERVE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a serve client: bad hello magic (is this a cluster peer?)",
        ));
    }
    let version = u16::from_le_bytes([hello[4], hello[5]]);
    if version != SERVE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("serve protocol version {version} not supported (want {SERVE_VERSION})"),
        ));
    }

    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            // Client hung up between requests: a normal close.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        if frame.tag != tag::REQ {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a REQ frame, got tag {}", frame.tag),
            ));
        }
        let resp = match from_bytes::<Request>(&frame.payload)? {
            Request::Walk(req) => {
                let rx = handle.submit(req);
                // A dropped responder means the service loop died or
                // drained out from under us.
                rx.recv().unwrap_or(WalkResponse {
                    status: Status::ShuttingDown,
                    paths: Vec::new(),
                })
            }
            Request::Shutdown => {
                handle.shutdown();
                WalkResponse {
                    status: Status::Ok,
                    paths: Vec::new(),
                }
            }
            Request::Update(batch) => {
                let rx = handle.submit_update(batch);
                rx.recv().unwrap_or(WalkResponse {
                    status: Status::ShuttingDown,
                    paths: Vec::new(),
                })
            }
            // Answered inline off the shared stats — never queued, so a
            // saturated or draining service still reports.
            Request::Stats => WalkResponse {
                status: Status::Stats(Box::new(handle.report())),
                paths: Vec::new(),
            },
        };
        let payload =
            to_bytes(&resp).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        write_frame(&mut stream, tag::RESP, frame.seq, &payload)?;
        stream.flush()?;
    }
}
