//! The TCP front door: a single reactor thread bridging query clients
//! to a [`ServiceHandle`].
//!
//! Every client connection lives in `knightking-reactor`'s
//! edge-triggered event loop — one poller thread holds them all, so ten
//! thousand idle subscribers cost ten thousand slab slots, not ten
//! thousand stacks. Bytes arriving on a connection run an incremental
//! state machine (hello → frames); a complete `REQ` frame dispatches
//! into the service with a callback [`Responder`] that encodes the
//! `RESP` frame and hands it back to the poller thread, which flushes
//! it under write-interest. Requests may be pipelined; responses are
//! written as their walks finish, matched to requests by the echoed
//! sequence number.
//!
//! The per-peer rank mesh (`knightking-net`'s `TcpTransport`) stays
//! thread-per-peer: a cluster has a handful of hot peers, exactly the
//! shape blocking I/O is best at. The reactor is for the many-cold-
//! clients shape only.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use knightking_net::frame::{split_frame, tag, write_frame};
use knightking_net::{from_bytes, to_bytes};
use knightking_reactor::{
    CloseReason, ConnHandler, ConnIo, Reactor, ReactorConfig, ReactorHandle, Token,
};

use crate::protocol::{split_hello, Request, Status, WalkResponse};
use crate::service::{Responder, ServiceHandle};

/// Front-door knobs (`kk serve` flags map onto these).
#[derive(Debug, Clone)]
pub struct ListenerConfig {
    /// Connections held at once; accepts beyond this are shed at the
    /// doorstep (closed before the hello) and counted.
    pub max_connections: usize,
    /// A connection with no traffic for this long is evicted.
    pub idle_timeout: Duration,
    /// A connection that cannot absorb its pending responses within
    /// this window is dropped (slow-reader protection).
    pub write_deadline: Duration,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            max_connections: 10_000,
            idle_timeout: Duration::from_secs(60),
            write_deadline: Duration::from_secs(10),
        }
    }
}

/// Per-connection protocol position.
enum ConnState {
    /// Waiting for (the rest of) the hello.
    Hello,
    /// Hello accepted; `tenant` keys this connection's QoS lane.
    Frames { tenant: String },
}

/// Reactor-side connection state.
struct KksvConn {
    state: ConnState,
}

/// The [`ConnHandler`] speaking KKSV on the poller thread.
struct KksvHandler {
    service: ServiceHandle,
    reactor: ReactorHandle,
    /// Requests handed to the service whose responders have not yet
    /// fired. Gates reactor shutdown: the loop must outlive every
    /// response still owed to a client.
    inflight: Arc<AtomicUsize>,
}

/// Encodes one `RESP` frame for `resp` answering request `seq`.
fn encode_resp(seq: u64, resp: &WalkResponse) -> io::Result<Vec<u8>> {
    let payload = to_bytes(resp).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let mut out = Vec::with_capacity(payload.len() + 16);
    write_frame(&mut out, tag::RESP, seq, &payload)?;
    Ok(out)
}

impl KksvHandler {
    /// A responder that routes the response back through the reactor to
    /// `token`, tagged with request id `seq`. May fire from any thread
    /// (the driver, or synchronously from `submit_with` on rejection).
    fn responder(&self, token: Token, seq: u64) -> Responder {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let reactor = self.reactor.clone();
        let inflight = self.inflight.clone();
        Responder::Callback(Box::new(move |resp| {
            match encode_resp(seq, &resp) {
                Ok(bytes) => reactor.send(token, bytes),
                // An unencodable response can never reach this client;
                // drop the connection rather than leave it hung.
                Err(_) => reactor.close(token),
            }
            inflight.fetch_sub(1, Ordering::AcqRel);
        }))
    }

    fn dispatch(
        &mut self,
        io_: &mut ConnIo<'_>,
        tenant: &str,
        seq: u64,
        payload: &[u8],
    ) -> io::Result<()> {
        match from_bytes::<Request>(payload)? {
            Request::Walk(req) => {
                let responder = self.responder(io_.token(), seq);
                self.service.submit_with(tenant, req, responder);
            }
            Request::Update(batch) => {
                let responder = self.responder(io_.token(), seq);
                self.service.submit_update_with(batch, responder);
            }
            Request::Shutdown => {
                self.service.shutdown();
                io_.send(&encode_resp(
                    seq,
                    &WalkResponse {
                        status: Status::Ok,
                        paths: Vec::new(),
                    },
                )?);
            }
            // Answered inline off the shared stats — never queued, so a
            // saturated or draining service still reports.
            Request::Stats => {
                io_.send(&encode_resp(
                    seq,
                    &WalkResponse {
                        status: Status::Stats(Box::new(self.service.report())),
                        paths: Vec::new(),
                    },
                )?);
            }
        }
        Ok(())
    }
}

impl ConnHandler for KksvHandler {
    type Conn = KksvConn;

    fn on_open(&mut self, _token: Token, _peer: SocketAddr) -> KksvConn {
        self.service.conn_opened();
        KksvConn {
            state: ConnState::Hello,
        }
    }

    fn on_data(
        &mut self,
        io_: &mut ConnIo<'_>,
        conn: &mut KksvConn,
        input: &mut Vec<u8>,
    ) -> io::Result<()> {
        loop {
            match &conn.state {
                ConnState::Hello => match split_hello(input)? {
                    None => return Ok(()),
                    Some((tenant, used)) => {
                        input.drain(..used);
                        conn.state = ConnState::Frames { tenant };
                    }
                },
                ConnState::Frames { tenant } => match split_frame(input)? {
                    None => return Ok(()),
                    Some((frame, used)) => {
                        input.drain(..used);
                        if frame.tag != tag::REQ {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("expected a REQ frame, got tag {}", frame.tag),
                            ));
                        }
                        let tenant = tenant.clone();
                        self.dispatch(io_, &tenant, frame.seq, &frame.payload)?;
                    }
                },
            }
        }
    }

    fn on_close(&mut self, _token: Token, _conn: KksvConn, _reason: CloseReason) {
        self.service.conn_closed();
    }
}

/// Accepts query clients on `listener` with default [`ListenerConfig`],
/// serving them from one reactor thread until the service shuts down
/// and every owed response has been flushed.
///
/// # Errors
///
/// Propagates reactor setup failures (poller fd creation, listener
/// registration). Per-connection errors (bad hello, mid-stream
/// disconnect) only end that connection.
pub fn serve_listener(listener: TcpListener, handle: ServiceHandle) -> io::Result<()> {
    serve_listener_with(listener, handle, ListenerConfig::default())
}

/// [`serve_listener`] with explicit front-door limits.
///
/// Shutdown sequencing: once [`ServiceHandle::shutdown`] is observed
/// *and* every request handed to the service has had its responder
/// fire, the reactor is told to stop; it then flushes every
/// connection's pending bytes before exiting, so no client loses a
/// response it was owed.
///
/// # Errors
///
/// Propagates reactor setup failures.
pub fn serve_listener_with(
    listener: TcpListener,
    handle: ServiceHandle,
    cfg: ListenerConfig,
) -> io::Result<()> {
    let inflight = Arc::new(AtomicUsize::new(0));
    let rcfg = ReactorConfig {
        max_connections: cfg.max_connections,
        idle_timeout: cfg.idle_timeout,
        write_deadline: cfg.write_deadline,
        ..ReactorConfig::default()
    };
    let reactor = {
        let service = handle.clone();
        let inflight = inflight.clone();
        Reactor::new(listener, rcfg, move |rh| KksvHandler {
            service,
            reactor: rh,
            inflight,
        })?
    };
    let rh = reactor.handle();
    let watcher = thread::spawn(move || loop {
        if handle.is_shutdown() && inflight.load(Ordering::Acquire) == 0 {
            // All responders fired ⇒ their frames are in the reactor's
            // command queue or already buffered; stop() drains both.
            rh.stop();
            return;
        }
        thread::sleep(Duration::from_millis(10));
    });
    let res = reactor.run();
    let _ = watcher.join();
    res
}
