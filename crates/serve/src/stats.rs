//! Service-level observability: request counters and latency/queue
//! histograms, sharing `knightking-obs`'s histogram type and report
//! schemas so existing profile consumers can ingest them unchanged.

use std::io::{self, Write};

use knightking_obs::{write_hist_jsonl, Pow2Histogram};

/// Counters and histograms accumulated over a service's lifetime.
///
/// Counters move on the leader's control path (once per superstep or per
/// request), never inside the walk itself, so serving stays as fast as
/// batch execution.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests admitted into the engine.
    pub admitted: u64,
    /// Requests completed with `Status::Ok`.
    pub completed: u64,
    /// Requests rejected at submission (queue full).
    pub rejected: u64,
    /// Requests force-terminated by deadline expiry.
    pub deadline_exceeded: u64,
    /// Graph update batches validated and scheduled for application.
    pub updates: u64,
    /// Supersteps the driver has polled.
    pub supersteps: u64,
    /// End-to-end request latency (queue entry → response), microseconds.
    pub latency_us: Pow2Histogram,
    /// Admission-queue depth sampled once per superstep.
    pub queue_depth: Pow2Histogram,
    /// Requests admitted per superstep.
    pub admitted_per_superstep: Pow2Histogram,
    /// Requests completed per superstep.
    pub completed_per_superstep: Pow2Histogram,
}

impl ServeStats {
    /// The histograms with their report names.
    pub fn histograms(&self) -> [(&'static str, &Pow2Histogram); 4] {
        [
            ("request_latency_us", &self.latency_us),
            ("queue_depth", &self.queue_depth),
            ("admitted_per_superstep", &self.admitted_per_superstep),
            ("completed_per_superstep", &self.completed_per_superstep),
        ]
    }

    /// Writes the machine-readable JSON-lines rendering: one `serve`
    /// counter line plus one `hist` line per histogram, in the same
    /// schema as `RunProfile::write_jsonl`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"serve\",\"admitted\":{},\"completed\":{},\"rejected\":{},\
             \"deadline_exceeded\":{},\"updates\":{},\"supersteps\":{}}}",
            self.admitted,
            self.completed,
            self.rejected,
            self.deadline_exceeded,
            self.updates,
            self.supersteps
        )?;
        for (name, h) in self.histograms() {
            write_hist_jsonl(w, 0, name, h)?;
        }
        Ok(())
    }

    /// Renders a human-readable summary table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: {} admitted, {} completed, {} rejected, {} deadline-exceeded, \
             {} updates over {} supersteps",
            self.admitted,
            self.completed,
            self.rejected,
            self.deadline_exceeded,
            self.updates,
            self.supersteps
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p99", "max"
        );
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "  {:<24} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeStats {
        let mut s = ServeStats {
            admitted: 10,
            completed: 8,
            rejected: 1,
            deadline_exceeded: 1,
            supersteps: 40,
            ..ServeStats::default()
        };
        for v in [100, 200, 5000] {
            s.latency_us.record(v);
        }
        s.queue_depth.record(3);
        s.admitted_per_superstep.record(1);
        s.completed_per_superstep.record(0);
        s
    }

    #[test]
    fn jsonl_lines_are_balanced_objects() {
        let mut buf = Vec::new();
        sample().write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            let open = line.matches(['{', '[']).count();
            let close = line.matches(['}', ']']).count();
            assert_eq!(open, close, "unbalanced: {line}");
        }
        assert!(text.contains("\"type\":\"serve\""));
        assert!(text.contains("\"name\":\"request_latency_us\""));
        assert!(text.contains("\"name\":\"queue_depth\""));
    }

    #[test]
    fn table_mentions_counters_and_histograms() {
        let t = sample().render_table();
        assert!(t.contains("10 admitted"));
        assert!(t.contains("request_latency_us"));
        assert!(t.contains("p99"));
    }
}
