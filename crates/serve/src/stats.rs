//! Service-level observability: request counters, latency/queue
//! histograms, and the live metrics plane (per-superstep gauges, a
//! bounded time-series ring, and Prometheus-style text exposition),
//! sharing `knightking-obs`'s histogram type and report schemas so
//! existing profile consumers can ingest them unchanged.

use std::io::{self, Write};

use knightking_core::LiveSample;
use knightking_net::{Wire, WireError};
use knightking_obs::{write_hist_jsonl, BoundedRing, Phase, Pow2Histogram, N_PHASES};

/// Time-series ring capacity: one sample per superstep, so this covers
/// the most recent ~1024 supersteps of a resident service.
pub const SERIES_CAP: usize = 1024;

/// One per-superstep snapshot in the stats time series. `admitted` and
/// `completed` are cumulative (diff successive points for rates);
/// `active_walkers` and `queue_depth` are instantaneous gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesPoint {
    /// Superstep the sample was taken at.
    pub superstep: u64,
    /// Cluster-wide active walker slots.
    pub active_walkers: u64,
    /// Admission-queue depth.
    pub queue_depth: u64,
    /// Requests admitted since service start (cumulative).
    pub admitted: u64,
    /// Requests completed since service start (cumulative).
    pub completed: u64,
}

impl Wire for SeriesPoint {
    fn wire_size(&self) -> usize {
        5 * 8
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.superstep.encode(out)?;
        self.active_walkers.encode(out)?;
        self.queue_depth.encode(out)?;
        self.admitted.encode(out)?;
        self.completed.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(SeriesPoint {
            superstep: u64::decode(input)?,
            active_walkers: u64::decode(input)?,
            queue_depth: u64::decode(input)?,
            admitted: u64::decode(input)?,
            completed: u64::decode(input)?,
        })
    }
}

/// Counters and histograms accumulated over a service's lifetime, plus
/// the live gauges the leader refreshes every superstep from the nodes'
/// [`LiveSample`]s.
///
/// Counters move on the leader's control path (once per superstep or per
/// request), never inside the walk itself, so serving stays as fast as
/// batch execution.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests admitted into the engine.
    pub admitted: u64,
    /// Requests completed with `Status::Ok`.
    pub completed: u64,
    /// Requests rejected at submission (queue full or tenant quota).
    pub rejected: u64,
    /// The subset of `rejected` shed by a per-tenant quota while the
    /// global queue still had room.
    pub shed: u64,
    /// Requests force-terminated by deadline expiry.
    pub deadline_exceeded: u64,
    /// Graph update batches validated and scheduled for application.
    pub updates: u64,
    /// Supersteps the driver has polled.
    pub supersteps: u64,
    /// Cluster-wide active walker slots (gauge, refreshed per superstep).
    pub active_walkers: u64,
    /// Admission-queue depth (gauge, refreshed per superstep).
    pub queue_len: u64,
    /// Current graph epoch (gauge; 0 on static graphs).
    pub epoch: u64,
    /// How many epochs behind the current epoch the oldest pinned walker
    /// is (gauge; 0 when nothing is pinned behind).
    pub pinned_lag: u64,
    /// Total walker steps across the cluster (counter).
    pub steps: u64,
    /// Total rejection-sampling trials across the cluster (counter).
    pub trials: u64,
    /// Total remote exchange bytes sent across the cluster (counter).
    pub exchange_bytes: u64,
    /// Sampler versions rebuilt or patched for graph updates (counter).
    pub sampler_rebuilds: u64,
    /// Sampler maintenance cost in entry-edits — degree per O(degree)
    /// rebuild, edges touched per O(log degree) radix point-patch
    /// (counter).
    pub sampler_rebuild_cost: u64,
    /// Precomputed segments spliced by stitched requests (counter; zero
    /// unless the service holds a segment pool).
    pub segments_spliced: u64,
    /// Stitched-execution pool misses — dry, invalidated, or never-built
    /// vertex pools (counter).
    pub stitch_pool_dry: u64,
    /// Exact steps taken by the stitched fallback path (counter).
    pub stitch_fallback_steps: u64,
    /// Cumulative nanoseconds per engine phase across the cluster
    /// (counters; all zeros when the engine was built without `obs`).
    pub phase_ns: [u64; N_PHASES],
    /// End-to-end request latency (queue entry → response), microseconds.
    pub latency_us: Pow2Histogram,
    /// Admission-queue depth sampled once per superstep.
    pub queue_depth: Pow2Histogram,
    /// Requests admitted per superstep.
    pub admitted_per_superstep: Pow2Histogram,
    /// Requests completed per superstep.
    pub completed_per_superstep: Pow2Histogram,
    /// Per-superstep snapshots, bounded (oldest overwritten).
    pub series: BoundedRing<SeriesPoint>,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            admitted: 0,
            completed: 0,
            rejected: 0,
            shed: 0,
            deadline_exceeded: 0,
            updates: 0,
            supersteps: 0,
            active_walkers: 0,
            queue_len: 0,
            epoch: 0,
            pinned_lag: 0,
            steps: 0,
            trials: 0,
            exchange_bytes: 0,
            sampler_rebuilds: 0,
            sampler_rebuild_cost: 0,
            segments_spliced: 0,
            stitch_pool_dry: 0,
            stitch_fallback_steps: 0,
            phase_ns: [0; N_PHASES],
            latency_us: Pow2Histogram::new(),
            queue_depth: Pow2Histogram::new(),
            admitted_per_superstep: Pow2Histogram::new(),
            completed_per_superstep: Pow2Histogram::new(),
            series: BoundedRing::new(SERIES_CAP),
        }
    }
}

impl ServeStats {
    /// Folds the latest per-node [`LiveSample`]s into the live gauges and
    /// counters. Samples are cumulative per node, so summing the latest
    /// sample from each node gives exact cluster totals.
    pub fn apply_live(&mut self, nodes: &[LiveSample]) {
        self.active_walkers = nodes.iter().map(|s| s.active).sum();
        self.steps = nodes.iter().map(|s| s.steps).sum();
        self.trials = nodes.iter().map(|s| s.trials).sum();
        self.exchange_bytes = nodes.iter().map(|s| s.exchange_bytes).sum();
        self.sampler_rebuilds = nodes.iter().map(|s| s.sampler_rebuilds).sum();
        self.sampler_rebuild_cost = nodes.iter().map(|s| s.sampler_rebuild_cost).sum();
        self.segments_spliced = nodes.iter().map(|s| s.segments_spliced).sum();
        self.stitch_pool_dry = nodes.iter().map(|s| s.stitch_pool_dry).sum();
        self.stitch_fallback_steps = nodes.iter().map(|s| s.stitch_fallback_steps).sum();
        for i in 0..N_PHASES {
            self.phase_ns[i] = nodes.iter().map(|s| s.phase_ns[i]).sum();
        }
    }

    /// The histograms with their report names.
    pub fn histograms(&self) -> [(&'static str, &Pow2Histogram); 4] {
        [
            ("request_latency_us", &self.latency_us),
            ("queue_depth", &self.queue_depth),
            ("admitted_per_superstep", &self.admitted_per_superstep),
            ("completed_per_superstep", &self.completed_per_superstep),
        ]
    }

    /// Builds the flat snapshot served to `Request::Stats` clients.
    /// `spans`/`spans_dropped` come from the service's trace log (the
    /// stats themselves don't own it).
    pub fn report(&self, spans: u64, spans_dropped: u64) -> StatsReport {
        StatsReport {
            admitted: self.admitted,
            completed: self.completed,
            rejected: self.rejected,
            shed: self.shed,
            deadline_exceeded: self.deadline_exceeded,
            updates: self.updates,
            supersteps: self.supersteps,
            active_walkers: self.active_walkers,
            queue_len: self.queue_len,
            epoch: self.epoch,
            pinned_lag: self.pinned_lag,
            steps: self.steps,
            trials: self.trials,
            exchange_bytes: self.exchange_bytes,
            sampler_rebuilds: self.sampler_rebuilds,
            sampler_rebuild_cost: self.sampler_rebuild_cost,
            segments_spliced: self.segments_spliced,
            stitch_pool_dry: self.stitch_pool_dry,
            stitch_fallback_steps: self.stitch_fallback_steps,
            latency_p50_us: self.latency_us.quantile(0.5),
            latency_p99_us: self.latency_us.quantile(0.99),
            latency_max_us: self.latency_us.max(),
            latency_count: self.latency_us.count(),
            latency_sum_us: self.latency_us.sum(),
            spans,
            spans_dropped,
            phase_ns: self.phase_ns,
            series: self.series.to_vec(),
            // Per-tenant counters live behind the queue lock, not here;
            // `ServiceHandle::report` fills them in.
            tenants: Vec::new(),
        }
    }

    /// Writes the machine-readable JSON-lines rendering: one `serve`
    /// counter line, one `hist` line per histogram, one `phase_total`
    /// line per engine phase (the `RunProfile` schema, so
    /// `scripts/profile-summary` ingests serve output unchanged), and one
    /// `series` line per retained time-series point.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"serve\",\"admitted\":{},\"completed\":{},\"rejected\":{},\
             \"shed\":{},\"deadline_exceeded\":{},\"updates\":{},\"supersteps\":{},\
             \"active_walkers\":{},\"queue_len\":{},\"epoch\":{},\"pinned_lag\":{},\
             \"steps\":{},\"trials\":{},\"exchange_bytes\":{},\
             \"sampler_rebuilds\":{},\"sampler_rebuild_cost\":{},\
             \"segments_spliced\":{},\"stitch_pool_dry\":{},\
             \"stitch_fallback_steps\":{}}}",
            self.admitted,
            self.completed,
            self.rejected,
            self.shed,
            self.deadline_exceeded,
            self.updates,
            self.supersteps,
            self.active_walkers,
            self.queue_len,
            self.epoch,
            self.pinned_lag,
            self.steps,
            self.trials,
            self.exchange_bytes,
            self.sampler_rebuilds,
            self.sampler_rebuild_cost,
            self.segments_spliced,
            self.stitch_pool_dry,
            self.stitch_fallback_steps
        )?;
        for (name, h) in self.histograms() {
            write_hist_jsonl(w, 0, name, h)?;
        }
        for phase in Phase::ALL {
            writeln!(
                w,
                "{{\"type\":\"phase_total\",\"node\":0,\"phase\":\"{}\",\"ns\":{},\"count\":{}}}",
                phase.name(),
                self.phase_ns[phase.index()],
                self.supersteps
            )?;
        }
        for p in self.series.iter() {
            writeln!(
                w,
                "{{\"type\":\"series\",\"superstep\":{},\"active_walkers\":{},\
                 \"queue_depth\":{},\"admitted\":{},\"completed\":{}}}",
                p.superstep, p.active_walkers, p.queue_depth, p.admitted, p.completed
            )?;
        }
        Ok(())
    }

    /// Renders a human-readable summary table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: {} admitted, {} completed, {} rejected ({} quota-shed), \
             {} deadline-exceeded, {} updates over {} supersteps",
            self.admitted,
            self.completed,
            self.rejected,
            self.shed,
            self.deadline_exceeded,
            self.updates,
            self.supersteps
        );
        let _ = writeln!(
            out,
            "  live: {} active walkers, queue {} deep, epoch {} (pin lag {}), \
             {} steps, {} exchange bytes",
            self.active_walkers,
            self.queue_len,
            self.epoch,
            self.pinned_lag,
            self.steps,
            self.exchange_bytes
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p99", "max"
        );
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "  {:<24} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            );
        }
        out
    }
}

/// The flat stats snapshot a `Request::Stats` client receives: every
/// counter and gauge plus bucket-resolution latency quantiles and the
/// recent time series. All-integer so it stays `Eq` and cheap to encode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Requests admitted into the engine.
    pub admitted: u64,
    /// Requests completed with `Status::Ok`.
    pub completed: u64,
    /// Requests rejected at submission.
    pub rejected: u64,
    /// The subset of `rejected` shed by a per-tenant quota.
    pub shed: u64,
    /// Requests force-terminated by deadline expiry.
    pub deadline_exceeded: u64,
    /// Graph update batches scheduled.
    pub updates: u64,
    /// Supersteps polled.
    pub supersteps: u64,
    /// Cluster-wide active walker slots (gauge).
    pub active_walkers: u64,
    /// Admission-queue depth (gauge).
    pub queue_len: u64,
    /// Current graph epoch (gauge).
    pub epoch: u64,
    /// Epoch lag of the oldest pinned walker (gauge).
    pub pinned_lag: u64,
    /// Total walker steps (counter).
    pub steps: u64,
    /// Total sampler trials (counter).
    pub trials: u64,
    /// Total exchange bytes sent (counter).
    pub exchange_bytes: u64,
    /// Sampler versions rebuilt or patched for graph updates (counter).
    pub sampler_rebuilds: u64,
    /// Sampler maintenance cost in entry-edits (counter): degree per
    /// rebuild, edges touched per radix point-patch.
    pub sampler_rebuild_cost: u64,
    /// Precomputed segments spliced by stitched requests (counter).
    pub segments_spliced: u64,
    /// Stitched-execution pool misses (counter).
    pub stitch_pool_dry: u64,
    /// Exact steps taken by the stitched fallback path (counter).
    pub stitch_fallback_steps: u64,
    /// Request latency p50, bucket-resolution microseconds.
    pub latency_p50_us: u64,
    /// Request latency p99, bucket-resolution microseconds.
    pub latency_p99_us: u64,
    /// Largest observed request latency, microseconds.
    pub latency_max_us: u64,
    /// Latency observations recorded.
    pub latency_count: u64,
    /// Sum of recorded latencies, microseconds.
    pub latency_sum_us: u64,
    /// Span events retained in the trace log.
    pub spans: u64,
    /// Span events dropped because the trace log was full.
    pub spans_dropped: u64,
    /// Cumulative nanoseconds per engine phase.
    pub phase_ns: [u64; N_PHASES],
    /// Recent per-superstep snapshots, oldest first.
    pub series: Vec<SeriesPoint>,
    /// Per-tenant queue/fairness counters, sorted by tenant name.
    pub tenants: Vec<TenantStat>,
}

/// One tenant's slice of the admission queue: its configured weight,
/// instantaneous lane depth, and cumulative outcome counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStat {
    /// Tenant id from the client hello.
    pub name: String,
    /// Fair-queueing weight (deficit round-robin replenishment scale).
    pub weight: u32,
    /// Requests waiting in this tenant's lane (gauge).
    pub queued: u64,
    /// Requests handed to the engine (cumulative).
    pub admitted: u64,
    /// Requests completed with `Status::Ok` (cumulative).
    pub completed: u64,
    /// Requests rejected at submission, quota and queue-full alike
    /// (cumulative).
    pub rejected: u64,
    /// The subset of `rejected` shed by this tenant's quota (cumulative).
    pub shed: u64,
}

impl Wire for TenantStat {
    fn wire_size(&self) -> usize {
        4 + self.name.len() + 4 + 5 * 8
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        (self.name.len() as u32).encode(out)?;
        out.extend_from_slice(self.name.as_bytes());
        self.weight.encode(out)?;
        self.queued.encode(out)?;
        self.admitted.encode(out)?;
        self.completed.encode(out)?;
        self.rejected.encode(out)?;
        self.shed.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        let len = u32::decode(input)? as usize;
        if input.len() < len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "wire: truncated tenant name",
            ));
        }
        let (head, tail) = input.split_at(len);
        let name = String::from_utf8(head.to_vec()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "wire: tenant name not UTF-8")
        })?;
        *input = tail;
        Ok(TenantStat {
            name,
            weight: u32::decode(input)?,
            queued: u64::decode(input)?,
            admitted: u64::decode(input)?,
            completed: u64::decode(input)?,
            rejected: u64::decode(input)?,
            shed: u64::decode(input)?,
        })
    }
}

impl StatsReport {
    /// The scalar fields in schema order, paired with their names —
    /// single source of truth for the wire codec.
    fn scalars(&self) -> [u64; 26] {
        [
            self.admitted,
            self.completed,
            self.rejected,
            self.shed,
            self.deadline_exceeded,
            self.updates,
            self.supersteps,
            self.active_walkers,
            self.queue_len,
            self.epoch,
            self.pinned_lag,
            self.steps,
            self.trials,
            self.exchange_bytes,
            self.sampler_rebuilds,
            self.sampler_rebuild_cost,
            self.segments_spliced,
            self.stitch_pool_dry,
            self.stitch_fallback_steps,
            self.latency_p50_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.latency_count,
            self.latency_sum_us,
            self.spans,
            self.spans_dropped,
        ]
    }

    /// Renders the Prometheus text exposition format (0.0.4) served on
    /// `kk serve --metrics-addr`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let counters: [(&str, u64); 15] = [
            ("kk_requests_admitted_total", self.admitted),
            ("kk_requests_completed_total", self.completed),
            ("kk_requests_rejected_total", self.rejected),
            ("kk_requests_shed_total", self.shed),
            (
                "kk_requests_deadline_exceeded_total",
                self.deadline_exceeded,
            ),
            ("kk_updates_total", self.updates),
            ("kk_supersteps_total", self.supersteps),
            ("kk_walker_steps_total", self.steps),
            ("kk_sampler_trials_total", self.trials),
            ("kk_exchange_bytes_total", self.exchange_bytes),
            ("kk_sampler_rebuilds_total", self.sampler_rebuilds),
            ("kk_sampler_rebuild_cost_total", self.sampler_rebuild_cost),
            ("kk_segments_spliced_total", self.segments_spliced),
            ("kk_stitch_pool_dry_total", self.stitch_pool_dry),
            ("kk_stitch_fallback_steps_total", self.stitch_fallback_steps),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        let _ = writeln!(out, "# TYPE kk_phase_ns_total counter");
        for phase in Phase::ALL {
            let _ = writeln!(
                out,
                "kk_phase_ns_total{{phase=\"{}\"}} {}",
                phase.name(),
                self.phase_ns[phase.index()]
            );
        }
        let gauges: [(&str, u64); 4] = [
            ("kk_active_walkers", self.active_walkers),
            ("kk_queue_depth", self.queue_len),
            ("kk_epoch", self.epoch),
            ("kk_pinned_epoch_lag", self.pinned_lag),
        ];
        for (name, v) in gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        let _ = writeln!(out, "# TYPE kk_request_latency_us summary");
        let _ = writeln!(
            out,
            "kk_request_latency_us{{quantile=\"0.5\"}} {}",
            self.latency_p50_us
        );
        let _ = writeln!(
            out,
            "kk_request_latency_us{{quantile=\"0.99\"}} {}",
            self.latency_p99_us
        );
        let _ = writeln!(out, "kk_request_latency_us_sum {}", self.latency_sum_us);
        let _ = writeln!(out, "kk_request_latency_us_count {}", self.latency_count);
        let _ = writeln!(
            out,
            "# TYPE kk_trace_spans_total counter\nkk_trace_spans_total {}",
            self.spans
        );
        let _ = writeln!(
            out,
            "# TYPE kk_trace_spans_dropped_total counter\nkk_trace_spans_dropped_total {}",
            self.spans_dropped
        );
        if !self.tenants.is_empty() {
            type TenantCol = (&'static str, &'static str, fn(&TenantStat) -> u64);
            let per_tenant: [TenantCol; 5] = [
                ("kk_tenant_queue_depth", "gauge", |t| t.queued),
                ("kk_tenant_admitted_total", "counter", |t| t.admitted),
                ("kk_tenant_completed_total", "counter", |t| t.completed),
                ("kk_tenant_rejected_total", "counter", |t| t.rejected),
                ("kk_tenant_shed_total", "counter", |t| t.shed),
            ];
            for (name, kind, get) in per_tenant {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for t in &self.tenants {
                    let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.name, get(t));
                }
            }
        }
        out
    }

    /// Renders one frame of the `kk top` terminal dashboard.
    pub fn render_dashboard(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kk top — superstep {}  epoch {}  pin-lag {}",
            self.supersteps, self.epoch, self.pinned_lag
        );
        let _ = writeln!(
            out,
            "  requests   {:>10} admitted  {:>10} completed  {:>8} rejected  {:>8} killed",
            self.admitted, self.completed, self.rejected, self.deadline_exceeded
        );
        let _ = writeln!(
            out,
            "  latency    p50 {:>8} µs   p99 {:>8} µs   max {:>8} µs   ({} requests)",
            self.latency_p50_us, self.latency_p99_us, self.latency_max_us, self.latency_count
        );
        let _ = writeln!(
            out,
            "  live       {:>10} active walkers   {:>6} queued   {:>12} steps   {:>12} xchg bytes",
            self.active_walkers, self.queue_len, self.steps, self.exchange_bytes
        );
        let _ = writeln!(
            out,
            "  traces     {:>10} spans ({} dropped)   {} updates applied",
            self.spans, self.spans_dropped, self.updates
        );
        let _ = writeln!(
            out,
            "  sampler    {:>10} rebuilds   {:>12} entry-edits   ({:.1} edits/rebuild)",
            self.sampler_rebuilds,
            self.sampler_rebuild_cost,
            if self.sampler_rebuilds == 0 {
                0.0
            } else {
                self.sampler_rebuild_cost as f64 / self.sampler_rebuilds as f64
            }
        );
        if self.segments_spliced + self.stitch_pool_dry + self.stitch_fallback_steps > 0 {
            let _ = writeln!(
                out,
                "  stitch     {:>10} segments spliced   {:>8} pool-dry   {:>10} fallback steps",
                self.segments_spliced, self.stitch_pool_dry, self.stitch_fallback_steps
            );
        }
        let total_ns: u64 = self.phase_ns.iter().sum();
        if total_ns > 0 {
            let _ = writeln!(out, "  phase breakdown:");
            let mut phases: Vec<(&'static str, u64)> = Phase::ALL
                .iter()
                .map(|p| (p.name(), self.phase_ns[p.index()]))
                .filter(|&(_, ns)| ns > 0)
                .collect();
            phases.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));
            for (name, ns) in phases {
                let _ = writeln!(
                    out,
                    "    {:<16} {:>12} ns  {:>5.1}%",
                    name,
                    ns,
                    100.0 * ns as f64 / total_ns as f64
                );
            }
        }
        // Sparkline over the most recent active-walker samples.
        if !self.series.is_empty() {
            const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            let tail: Vec<&SeriesPoint> = self.series.iter().rev().take(60).rev().collect();
            let peak = tail.iter().map(|p| p.active_walkers).max().unwrap_or(0);
            let mut line = String::new();
            for p in &tail {
                let scaled = (p.active_walkers * (BARS.len() as u64 - 1)) + peak / 2;
                let idx = scaled.checked_div(peak).unwrap_or(0);
                line.push(BARS[idx as usize]);
            }
            let _ = writeln!(out, "  active     {line}  (peak {peak})");
        }
        out
    }
}

impl Wire for StatsReport {
    fn wire_size(&self) -> usize {
        8 * (26 + N_PHASES) + self.series.wire_size() + self.tenants.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        for v in self.scalars() {
            v.encode(out)?;
        }
        for ns in &self.phase_ns {
            ns.encode(out)?;
        }
        self.series.encode(out)?;
        self.tenants.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        let mut scalars = [0u64; 26];
        for v in &mut scalars {
            *v = u64::decode(input)?;
        }
        let mut phase_ns = [0u64; N_PHASES];
        for ns in &mut phase_ns {
            *ns = u64::decode(input)?;
        }
        let [admitted, completed, rejected, shed, deadline_exceeded, updates, supersteps, active_walkers, queue_len, epoch, pinned_lag, steps, trials, exchange_bytes, sampler_rebuilds, sampler_rebuild_cost, segments_spliced, stitch_pool_dry, stitch_fallback_steps, latency_p50_us, latency_p99_us, latency_max_us, latency_count, latency_sum_us, spans, spans_dropped] =
            scalars;
        Ok(StatsReport {
            admitted,
            completed,
            rejected,
            shed,
            deadline_exceeded,
            updates,
            supersteps,
            active_walkers,
            queue_len,
            epoch,
            pinned_lag,
            steps,
            trials,
            exchange_bytes,
            sampler_rebuilds,
            sampler_rebuild_cost,
            segments_spliced,
            stitch_pool_dry,
            stitch_fallback_steps,
            latency_p50_us,
            latency_p99_us,
            latency_max_us,
            latency_count,
            latency_sum_us,
            spans,
            spans_dropped,
            phase_ns,
            series: Vec::decode(input)?,
            tenants: Vec::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_net::{from_bytes, to_bytes};

    fn sample() -> ServeStats {
        let mut s = ServeStats {
            admitted: 10,
            completed: 8,
            rejected: 1,
            deadline_exceeded: 1,
            supersteps: 40,
            sampler_rebuilds: 6,
            sampler_rebuild_cost: 48,
            segments_spliced: 20,
            stitch_pool_dry: 2,
            stitch_fallback_steps: 5,
            ..ServeStats::default()
        };
        for v in [100, 200, 5000] {
            s.latency_us.record(v);
        }
        s.queue_depth.record(3);
        s.admitted_per_superstep.record(1);
        s.completed_per_superstep.record(0);
        s.series.push(SeriesPoint {
            superstep: 39,
            active_walkers: 12,
            queue_depth: 3,
            admitted: 10,
            completed: 8,
        });
        s
    }

    #[test]
    fn jsonl_lines_are_balanced_objects() {
        let mut buf = Vec::new();
        sample().write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            let open = line.matches(['{', '[']).count();
            let close = line.matches(['}', ']']).count();
            assert_eq!(open, close, "unbalanced: {line}");
        }
        assert!(text.contains("\"type\":\"serve\""));
        assert!(text.contains("\"sampler_rebuilds\":6"));
        assert!(text.contains("\"sampler_rebuild_cost\":48"));
        assert!(text.contains("\"segments_spliced\":20"));
        assert!(text.contains("\"stitch_pool_dry\":2"));
        assert!(text.contains("\"stitch_fallback_steps\":5"));
        assert!(text.contains("\"name\":\"request_latency_us\""));
        assert!(text.contains("\"name\":\"queue_depth\""));
        assert!(text.contains("\"type\":\"series\""));
        assert!(text.contains("\"type\":\"phase_total\""));
    }

    #[test]
    fn table_mentions_counters_and_histograms() {
        let t = sample().render_table();
        assert!(t.contains("10 admitted"));
        assert!(t.contains("request_latency_us"));
        assert!(t.contains("p99"));
    }

    #[test]
    fn apply_live_sums_cumulative_node_samples() {
        let mut s = ServeStats::default();
        let a = LiveSample {
            active: 3,
            steps: 100,
            trials: 40,
            exchange_bytes: 1000,
            sampler_rebuilds: 4,
            sampler_rebuild_cost: 64,
            segments_spliced: 9,
            stitch_pool_dry: 3,
            stitch_fallback_steps: 7,
            phase_ns: [10, 0, 20, 30, 0, 0, 0, 5, 2, 1],
        };
        let b = LiveSample {
            active: 2,
            steps: 50,
            trials: 10,
            exchange_bytes: 200,
            sampler_rebuilds: 1,
            sampler_rebuild_cost: 8,
            segments_spliced: 1,
            stitch_pool_dry: 0,
            stitch_fallback_steps: 2,
            phase_ns: [1, 0, 2, 3, 0, 0, 0, 4, 1, 1],
        };
        s.apply_live(&[a, b]);
        assert_eq!(s.active_walkers, 5);
        assert_eq!(s.steps, 150);
        assert_eq!(s.trials, 50);
        assert_eq!(s.exchange_bytes, 1200);
        assert_eq!(s.sampler_rebuilds, 5);
        assert_eq!(s.sampler_rebuild_cost, 72);
        assert_eq!(s.segments_spliced, 10);
        assert_eq!(s.stitch_pool_dry, 3);
        assert_eq!(s.stitch_fallback_steps, 9);
        assert_eq!(s.phase_ns[0], 11);
        assert_eq!(s.phase_ns[3], 33);
        // Re-applying newer samples replaces, not double-counts.
        s.apply_live(&[a, b]);
        assert_eq!(s.steps, 150);
    }

    #[test]
    fn report_snapshots_quantiles_and_series() {
        let s = sample();
        let r = s.report(7, 2);
        assert_eq!(r.admitted, 10);
        assert_eq!(r.latency_count, 3);
        assert_eq!(r.latency_max_us, 5000);
        assert!(r.latency_p50_us >= 100 && r.latency_p50_us <= 255);
        assert_eq!(r.latency_p99_us, 5000);
        assert_eq!(r.spans, 7);
        assert_eq!(r.spans_dropped, 2);
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series[0].active_walkers, 12);
    }

    #[test]
    fn report_quantiles_on_empty_stats_are_zero() {
        let r = ServeStats::default().report(0, 0);
        assert_eq!(r.latency_p50_us, 0);
        assert_eq!(r.latency_p99_us, 0);
        assert_eq!(r.latency_max_us, 0);
        assert_eq!(r.latency_count, 0);
        assert!(r.series.is_empty());
    }

    #[test]
    fn stats_report_round_trips_on_the_wire() {
        let r = sample().report(7, 2);
        let bytes = to_bytes(&r).unwrap();
        assert_eq!(bytes.len(), r.wire_size());
        let back: StatsReport = from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn tenant_stats_round_trip_and_render() {
        let mut r = sample().report(7, 2);
        r.shed = 3;
        r.tenants = vec![
            TenantStat {
                name: "default".into(),
                weight: 1,
                queued: 2,
                admitted: 5,
                completed: 4,
                rejected: 1,
                shed: 0,
            },
            TenantStat {
                name: "pro".into(),
                weight: 4,
                queued: 0,
                admitted: 9,
                completed: 9,
                rejected: 3,
                shed: 3,
            },
        ];
        let bytes = to_bytes(&r).unwrap();
        assert_eq!(bytes.len(), r.wire_size());
        let back: StatsReport = from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        let text = r.render_prometheus();
        assert!(text.contains("kk_requests_shed_total 3"));
        assert!(text.contains("kk_tenant_queue_depth{tenant=\"default\"} 2"));
        assert!(text.contains("kk_tenant_admitted_total{tenant=\"pro\"} 9"));
        assert!(text.contains("kk_tenant_shed_total{tenant=\"pro\"} 3"));
    }

    #[test]
    fn prometheus_exposition_has_the_documented_metric_set() {
        let text = sample().report(7, 2).render_prometheus();
        for name in [
            "kk_requests_admitted_total",
            "kk_requests_completed_total",
            "kk_requests_rejected_total",
            "kk_requests_deadline_exceeded_total",
            "kk_updates_total",
            "kk_supersteps_total",
            "kk_walker_steps_total",
            "kk_sampler_trials_total",
            "kk_exchange_bytes_total",
            "kk_sampler_rebuilds_total",
            "kk_sampler_rebuild_cost_total",
            "kk_segments_spliced_total",
            "kk_stitch_pool_dry_total",
            "kk_stitch_fallback_steps_total",
            "kk_phase_ns_total{phase=\"exchange\"}",
            "kk_active_walkers",
            "kk_queue_depth",
            "kk_epoch",
            "kk_pinned_epoch_lag",
            "kk_request_latency_us{quantile=\"0.5\"}",
            "kk_request_latency_us{quantile=\"0.99\"}",
            "kk_trace_spans_total",
            "kk_trace_spans_dropped_total",
        ] {
            assert!(text.contains(name), "missing metric {name} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<u64>().is_ok(), "bad value in line: {line}");
        }
    }

    #[test]
    fn dashboard_renders_without_panicking_on_empty_and_full() {
        let empty = StatsReport::default().render_dashboard();
        assert!(empty.contains("kk top"));
        let mut s = sample();
        s.phase_ns = [5, 0, 100, 40, 0, 0, 0, 1, 6, 2];
        for i in 0..200 {
            s.series.push(SeriesPoint {
                superstep: 40 + i,
                active_walkers: i % 17,
                queue_depth: 1,
                admitted: 10 + i,
                completed: 8 + i,
            });
        }
        let full = s.report(3, 0).render_dashboard();
        assert!(full.contains("phase breakdown"));
        assert!(full.contains("segments spliced"));
        assert!(full.contains("local_compute"));
        assert!(full.contains("peak 16"));
    }
}
