//! End-to-end serving over real sockets: a 2-rank TCP cluster runs the
//! service, a listener accepts protocol clients, and a served query's
//! paths are byte-identical to a one-shot batch run with the same seed.

use std::net::TcpListener;
use std::thread;

use knightking_core::{RandomWalkEngine, WalkConfig, Walker, WalkerProgram, WalkerStarts};
use knightking_graph::gen;
use knightking_net::{reserve_loopback_addrs, TcpConfig, TcpTransport};
use knightking_serve::{
    protocol, serve_listener, Request, ServiceConfig, StartSpec, Status, WalkRequest, WalkService,
};

struct Fixed(u32);

impl WalkerProgram for Fixed {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;

    fn init_data(&self, _id: u64, _start: u32) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

#[test]
fn tcp_served_query_matches_batch_and_shuts_down() {
    let graph = gen::uniform_degree(80, 5, gen::GenOptions::seeded(23));
    let batch = RandomWalkEngine::new(&graph, Fixed(9), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(12));

    let peers = reserve_loopback_addrs(2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let (service, handle) = WalkService::new(ServiceConfig::default());

    thread::scope(|scope| {
        let graph = &graph;
        let service = &service;

        // Rank 0: the leader, driving admissions off the shared queue.
        let peers0 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(0, peers0, 0x5E12)).unwrap();
            service.run_leader(graph, Fixed(9), WalkConfig::with_nodes(2, 999), &mut t);
        });

        // Rank 1: a worker steered entirely by broadcast directives.
        let peers1 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(1, peers1, 0x5E12)).unwrap();
            WalkService::run_worker(graph, Fixed(9), WalkConfig::with_nodes(2, 999), &mut t);
        });

        // The front door.
        let lh = handle.clone();
        scope.spawn(move || serve_listener(listener, lh).unwrap());

        // A protocol client: query, verify, then ask for shutdown.
        let mut stream = protocol::connect(addr).unwrap();
        let resp = protocol::round_trip(
            &mut stream,
            41,
            &Request::Walk(WalkRequest {
                seed: 7,
                starts: StartSpec::Count(12),
                deadline_ms: 0,
            }),
        )
        .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.paths, batch.paths);

        let ack = protocol::round_trip(&mut stream, 42, &Request::Shutdown).unwrap();
        assert_eq!(ack.status, Status::Ok);
    });

    assert_eq!(handle.stats().completed, 1);
}
