//! End-to-end serving over real sockets: a 2-rank TCP cluster runs the
//! service, a listener accepts protocol clients, and a served query's
//! paths are byte-identical to a one-shot batch run with the same seed.

use std::net::TcpListener;
use std::thread;

use knightking_core::{
    RandomWalkEngine, SpanEventKind, WalkConfig, Walker, WalkerProgram, WalkerStarts,
};
use knightking_graph::gen;
use knightking_net::{reserve_loopback_addrs, TcpConfig, TcpTransport};
use knightking_serve::{
    protocol, serve_listener, Request, ServiceConfig, StartSpec, Status, WalkRequest, WalkService,
};

struct Fixed(u32);

impl WalkerProgram for Fixed {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;

    fn init_data(&self, _id: u64, _start: u32) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

#[test]
fn tcp_served_query_matches_batch_and_shuts_down() {
    let graph = gen::uniform_degree(80, 5, gen::GenOptions::seeded(23));
    let batch = RandomWalkEngine::new(&graph, Fixed(9), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(12));

    let peers = reserve_loopback_addrs(2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let (service, handle) = WalkService::new(ServiceConfig::default());

    thread::scope(|scope| {
        let graph = &graph;
        let service = &service;

        // Rank 0: the leader, driving admissions off the shared queue.
        let peers0 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(0, peers0, 0x5E12)).unwrap();
            service.run_leader(graph, Fixed(9), WalkConfig::with_nodes(2, 999), &mut t);
        });

        // Rank 1: a worker steered entirely by broadcast directives.
        let peers1 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(1, peers1, 0x5E12)).unwrap();
            WalkService::run_worker(graph, Fixed(9), WalkConfig::with_nodes(2, 999), &mut t);
        });

        // The front door.
        let lh = handle.clone();
        scope.spawn(move || serve_listener(listener, lh).unwrap());

        // A protocol client: query, verify, then ask for shutdown.
        let mut stream = protocol::connect(addr).unwrap();
        let resp = protocol::round_trip(
            &mut stream,
            41,
            &Request::Walk(WalkRequest {
                seed: 7,
                starts: StartSpec::Count(12),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.paths, batch.paths);

        let ack = protocol::round_trip(&mut stream, 42, &Request::Shutdown).unwrap();
        assert_eq!(ack.status, Status::Ok);
    });

    assert_eq!(handle.stats().completed, 1);
}

/// The same cluster with tracing and profiling on: paths stay
/// byte-identical, a `Request::Stats` round trip returns a live
/// [`StatsReport`], and the gathered trace log holds spans from *both*
/// ranks — the distributed timeline the Chrome export renders.
#[test]
fn tcp_traced_query_gathers_spans_from_both_ranks() {
    let graph = gen::uniform_degree(80, 5, gen::GenOptions::seeded(23));
    let batch = RandomWalkEngine::new(&graph, Fixed(9), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(12));

    let peers = reserve_loopback_addrs(2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let cfg = ServiceConfig {
        trace_sample: 1,
        ..ServiceConfig::default()
    };
    let (service, handle) = WalkService::new(cfg);
    let mut walk_cfg = WalkConfig::with_nodes(2, 999);
    walk_cfg.profile = true;

    thread::scope(|scope| {
        let graph = &graph;
        let service = &service;
        let walk_cfg = &walk_cfg;

        let peers0 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(0, peers0, 0x5E13)).unwrap();
            service.run_leader(graph, Fixed(9), walk_cfg.clone(), &mut t);
        });

        let peers1 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(1, peers1, 0x5E13)).unwrap();
            WalkService::run_worker(graph, Fixed(9), walk_cfg.clone(), &mut t);
        });

        let lh = handle.clone();
        scope.spawn(move || serve_listener(listener, lh).unwrap());

        let mut stream = protocol::connect(addr).unwrap();
        let resp = protocol::round_trip(
            &mut stream,
            41,
            &Request::Walk(WalkRequest {
                seed: 7,
                starts: StartSpec::Count(12),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.paths, batch.paths, "tracing must not perturb walks");

        // A live stats snapshot over the same wire protocol.
        let stats = protocol::round_trip(&mut stream, 42, &Request::Stats).unwrap();
        match stats.status {
            Status::Stats(report) => {
                assert_eq!(report.admitted, 1);
                assert_eq!(report.completed, 1);
                assert!(report.supersteps > 0);
                assert!(report.spans > 0, "completed trace must be gathered");
                assert!(report
                    .render_prometheus()
                    .contains("kk_requests_completed_total 1"));
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        let ack = protocol::round_trip(&mut stream, 43, &Request::Shutdown).unwrap();
        assert_eq!(ack.status, Status::Ok);
    });

    // The gathered log shows the request on both ranks.
    let log = handle.trace_log();
    assert_eq!(log.dropped(), 0);
    let spans = log.spans();
    for node in [0u32, 1] {
        assert!(
            spans.iter().any(|s| s.node == node),
            "expected spans from rank {node}"
        );
    }
    let trace_id = spans[0].trace;
    assert!(spans.iter().all(|s| s.trace == trace_id));
    let admitted: u64 = spans
        .iter()
        .map(|s| match s.kind {
            SpanEventKind::Admit { walkers } => walkers,
            _ => 0,
        })
        .sum();
    let completed: u64 = spans
        .iter()
        .map(|s| match s.kind {
            SpanEventKind::Complete { walkers } => walkers,
            _ => 0,
        })
        .sum();
    assert_eq!(admitted, 12, "admit spans across ranks cover every walker");
    assert_eq!(
        completed, 12,
        "complete spans across ranks cover every walker"
    );

    // The export is one coherent Chrome trace across both processes.
    let mut buf = Vec::new();
    log.write_chrome_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("\"pid\":0") && text.contains("\"pid\":1"));
}
