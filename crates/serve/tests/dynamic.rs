//! Determinism under churn: a dynamic service must answer walk queries
//! byte-identically to batch runs on the materialized graph at the
//! walker's pinned epoch — before, during, and after live updates, both
//! in-process and over a real 2-rank TCP cluster.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use knightking_core::{RandomWalkEngine, WalkConfig, WalkerStarts};
use knightking_dyn::{DynConfig, DynGraph, EdgeAdd, EdgeRef, EdgeReweight, UpdateBatch};
use knightking_graph::gen;
use knightking_net::{reserve_loopback_addrs, TcpConfig, TcpTransport};
use knightking_serve::{
    protocol, serve_listener, Request, ServiceConfig, StartSpec, Status, WalkRequest, WalkService,
};
use knightking_walks::DeepWalk;

fn weighted_graph(n: usize, seed: u64) -> knightking_graph::CsrGraph {
    gen::uniform_degree(n, 5, gen::GenOptions::paper_weighted(seed))
}

/// A batch mixing all three op kinds, biased enough to visibly shift
/// weighted sampling around the tested start vertices.
fn churn_batch() -> UpdateBatch {
    UpdateBatch {
        adds: vec![
            EdgeAdd {
                src: 0,
                dst: 33,
                weight: 9.0,
                edge_type: 0,
            },
            EdgeAdd {
                src: 33,
                dst: 0,
                weight: 9.0,
                edge_type: 0,
            },
            EdgeAdd {
                src: 9,
                dst: 2,
                weight: 6.5,
                edge_type: 0,
            },
        ],
        dels: vec![EdgeRef { src: 5, dst: 1 }],
        reweights: vec![EdgeReweight {
            src: 0,
            dst: 33,
            weight: 12.0,
        }],
    }
}

/// The post-update reference: apply the batch offline and materialize.
fn materialized(
    base: &knightking_graph::CsrGraph,
    batch: &UpdateBatch,
) -> knightking_graph::CsrGraph {
    let reference = DynGraph::new(base.clone(), DynConfig::default());
    reference.apply(batch).expect("valid batch");
    reference.materialize()
}

/// Walk, update, walk again — serialized. The pre-update query matches a
/// batch run on the base graph; the post-update query matches a batch
/// run on the offline-materialized post-update graph, byte for byte.
#[test]
fn served_updates_match_batch_on_materialized_graph() {
    let base = weighted_graph(60, 11);
    let batch = churn_batch();
    let starts = vec![0u32, 9, 33];

    let pre = RandomWalkEngine::new(&base, DeepWalk::new(12), WalkConfig::single_node(7))
        .run(WalkerStarts::Explicit(starts.clone()));
    let post_graph = materialized(&base, &batch);
    let post = RandomWalkEngine::new(&post_graph, DeepWalk::new(12), WalkConfig::single_node(31))
        .run(WalkerStarts::Explicit(starts.clone()));

    let dyn_graph = DynGraph::new(base, DynConfig::default());
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let a = client
            .submit(WalkRequest {
                seed: 7,
                starts: StartSpec::Explicit(starts.clone()),
                deadline_ms: 0,
                stitch: false,
            })
            .recv()
            .unwrap();
        let u = client.submit_update(batch).recv().unwrap();
        let b = client
            .submit(WalkRequest {
                seed: 31,
                starts: StartSpec::Explicit(starts),
                deadline_ms: 0,
                stitch: false,
            })
            .recv()
            .unwrap();
        client.shutdown();
        (a, u, b)
    });
    service.run(&dyn_graph, DeepWalk::new(12), WalkConfig::single_node(999));
    let (a, u, b) = asker.join().unwrap();

    assert_eq!(a.status, Status::Ok);
    assert_eq!(a.paths, pre.paths);
    assert_eq!(u.status, Status::Updated { epoch: 1 });
    assert_eq!(b.status, Status::Ok);
    assert_eq!(b.paths, post.paths);
    assert_eq!(dyn_graph.epoch(), 1);
    assert_eq!(handle.stats().updates, 1);
}

/// An update landing while a walk is in flight must not perturb it: the
/// walker pinned epoch 0 at admission and keeps sampling that snapshot.
/// A later walk with the same seed runs against the updated graph.
#[test]
fn in_flight_walks_pin_their_admission_epoch() {
    let base = weighted_graph(60, 17);
    let batch = churn_batch();
    let starts = vec![3u32, 41];

    let pre = RandomWalkEngine::new(&base, DeepWalk::new(1000), WalkConfig::single_node(7))
        .run(WalkerStarts::Explicit(starts.clone()));
    let post_graph = materialized(&base, &batch);
    let post = RandomWalkEngine::new(&post_graph, DeepWalk::new(1000), WalkConfig::single_node(7))
        .run(WalkerStarts::Explicit(starts.clone()));

    let dyn_graph = DynGraph::new(base, DynConfig::default());
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx_a = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Explicit(starts.clone()),
            deadline_ms: 0,
            stitch: false,
        });
        // Wait for admission, then race the update against the walk.
        while client.stats().admitted < 1 {
            thread::sleep(Duration::from_micros(200));
        }
        let u = client.submit_update(batch).recv().unwrap();
        let a = rx_a.recv().unwrap();
        let b = client
            .submit(WalkRequest {
                seed: 7,
                starts: StartSpec::Explicit(starts),
                deadline_ms: 0,
                stitch: false,
            })
            .recv()
            .unwrap();
        client.shutdown();
        (a, u, b)
    });
    service.run(
        &dyn_graph,
        DeepWalk::new(1000),
        WalkConfig::single_node(999),
    );
    let (a, u, b) = asker.join().unwrap();

    assert_eq!(u.status, Status::Updated { epoch: 1 });
    assert_eq!(a.status, Status::Ok);
    assert_eq!(a.paths, pre.paths, "in-flight walk must stay on epoch 0");
    assert_eq!(b.status, Status::Ok);
    assert_eq!(b.paths, post.paths, "new walk must see epoch 1");
}

/// A static (CSR-served) service refuses updates with a diagnostic
/// instead of panicking or silently ignoring them.
#[test]
fn static_service_refuses_updates() {
    let base = weighted_graph(40, 3);
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let u = client.submit_update(churn_batch()).recv().unwrap();
        client.shutdown();
        u
    });
    service.run(&base, DeepWalk::new(5), WalkConfig::single_node(1));
    let u = asker.join().unwrap();
    match u.status {
        Status::Invalid(msg) => assert!(msg.contains("static"), "diagnostic: {msg}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert_eq!(handle.stats().updates, 0);
}

/// An invalid batch (vertex out of range) is rejected atomically: the
/// epoch does not advance and later queries behave as if it never
/// arrived.
#[test]
fn invalid_update_rejects_without_epoch_advance() {
    let base = weighted_graph(40, 5);
    let dyn_graph = DynGraph::new(base, DynConfig::default());
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let bad = UpdateBatch {
            adds: vec![EdgeAdd {
                src: 9999,
                dst: 0,
                weight: 1.0,
                edge_type: 0,
            }],
            ..UpdateBatch::default()
        };
        let u = client.submit_update(bad).recv().unwrap();
        client.shutdown();
        u
    });
    service.run(&dyn_graph, DeepWalk::new(5), WalkConfig::single_node(1));
    let u = asker.join().unwrap();
    assert!(matches!(u.status, Status::Invalid(_)), "{:?}", u.status);
    assert_eq!(dyn_graph.epoch(), 0);
    assert_eq!(handle.stats().updates, 0);
}

/// The full distributed path: a 2-rank TCP cluster serves a dynamic
/// graph, each rank holding its own replica; the update broadcast
/// applies on both ranks in lockstep and post-update queries are
/// byte-identical to batch runs on the materialized graph.
#[test]
fn tcp_two_rank_service_applies_updates_in_lockstep() {
    let base = weighted_graph(80, 23);
    let batch = churn_batch();
    let starts: Vec<u32> = vec![0, 9, 33, 77];

    let pre = RandomWalkEngine::new(&base, DeepWalk::new(9), WalkConfig::single_node(7))
        .run(WalkerStarts::Explicit(starts.clone()));
    let post_graph = materialized(&base, &batch);
    let post = RandomWalkEngine::new(&post_graph, DeepWalk::new(9), WalkConfig::single_node(31))
        .run(WalkerStarts::Explicit(starts.clone()));

    let peers = reserve_loopback_addrs(2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let (service, handle) = WalkService::new(ServiceConfig::default());
    // One replica per rank, as real multi-process deployments hold.
    let dyn0 = DynGraph::new(base.clone(), DynConfig::default());
    let dyn1 = DynGraph::new(base.clone(), DynConfig::default());

    thread::scope(|scope| {
        let service = &service;
        let (dyn0, dyn1) = (&dyn0, &dyn1);

        let peers0 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(0, peers0, 0xD1A0)).unwrap();
            service.run_leader(
                dyn0,
                DeepWalk::new(9),
                WalkConfig::with_nodes(2, 999),
                &mut t,
            );
        });
        let peers1 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(1, peers1, 0xD1A0)).unwrap();
            WalkService::run_worker(
                dyn1,
                DeepWalk::new(9),
                WalkConfig::with_nodes(2, 999),
                &mut t,
            );
        });
        let lh = handle.clone();
        scope.spawn(move || serve_listener(listener, lh).unwrap());

        let mut stream = protocol::connect(addr).unwrap();
        let r1 = protocol::round_trip(
            &mut stream,
            1,
            &Request::Walk(WalkRequest {
                seed: 7,
                starts: StartSpec::Explicit(starts.clone()),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(r1.status, Status::Ok);
        assert_eq!(r1.paths, pre.paths);

        let r2 = protocol::round_trip(&mut stream, 2, &Request::Update(batch.clone())).unwrap();
        assert_eq!(r2.status, Status::Updated { epoch: 1 });

        let r3 = protocol::round_trip(
            &mut stream,
            3,
            &Request::Walk(WalkRequest {
                seed: 31,
                starts: StartSpec::Explicit(starts.clone()),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(r3.status, Status::Ok);
        assert_eq!(r3.paths, post.paths);

        let ack = protocol::round_trip(&mut stream, 4, &Request::Shutdown).unwrap();
        assert_eq!(ack.status, Status::Ok);
    });

    // Both replicas advanced in lockstep.
    assert_eq!(dyn0.epoch(), 1);
    assert_eq!(dyn1.epoch(), 1);
    assert_eq!(handle.stats().updates, 1);
}
