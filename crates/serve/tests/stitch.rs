//! Stitched-mode service tests: a pool-backed service answers stitch
//! requests by splicing, marks them [`Status::Stitched`], refuses them
//! without a pool, and leaves exact requests byte-identical.

use std::thread;

use knightking_core::{
    GraphRef, RandomWalkEngine, WalkConfig, Walker, WalkerProgram, WalkerStarts,
};
use knightking_graph::gen;
use knightking_serve::{ServiceConfig, StartSpec, Status, WalkRequest, WalkService};
use knightking_stitch::{PoolConfig, SegmentPool};

/// An unbiased fixed-length first-order walk — stitchable.
#[derive(Clone)]
struct Hops(u32);

impl WalkerProgram for Hops {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;
    const STITCHABLE: bool = true;
    const NAME: &'static str = "hops";

    fn init_data(&self, _id: u64, _start: u32) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

fn test_graph() -> knightking_graph::CsrGraph {
    gen::uniform_degree(96, 6, gen::GenOptions::seeded(11))
}

/// A stitch request against a pool-backed service comes back
/// `Status::Stitched` with splice counters set, every response path is a
/// valid walk of the requested length, and an exact request served by the
/// same process remains byte-identical to a batch run — stitching stays
/// strictly opt-in even when a pool is loaded.
#[test]
fn stitched_requests_splice_and_exact_requests_stay_byte_identical() {
    let graph = test_graph();
    let walk_len = 24;

    let pool = SegmentPool::build(
        &graph,
        &Hops(walk_len),
        PoolConfig {
            segments_per_vertex: 4,
            segment_length: 8,
            seed: 3,
        },
    )
    .expect("pool build");

    let batch = RandomWalkEngine::new(&graph, Hops(walk_len), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(16));

    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx_stitched = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(12),
            deadline_ms: 0,
            stitch: true,
        });
        let rx_exact = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(16),
            deadline_ms: 0,
            stitch: false,
        });
        let stitched = rx_stitched.recv().expect("service dropped the responder");
        let exact = rx_exact.recv().expect("service dropped the responder");
        client.shutdown();
        (stitched, exact)
    });
    service
        .run_with_pool(
            &graph,
            Hops(walk_len),
            WalkConfig::single_node(999),
            Some(pool),
        )
        .expect("stitchable program");
    let (stitched, exact) = asker.join().unwrap();

    match stitched.status {
        Status::Stitched {
            segments_spliced,
            fallback_steps,
        } => {
            assert!(
                segments_spliced > 0,
                "a fresh pool must contribute segments"
            );
            // The pool holds 4 segments of 8 steps per vertex; 12 walks of
            // 24 steps may dip into fallback, but splices must dominate.
            assert!(
                segments_spliced * 8 >= fallback_steps,
                "spliced work should dominate: {segments_spliced} segments vs {fallback_steps} fallback steps"
            );
        }
        other => panic!("expected Status::Stitched, got {other:?}"),
    }
    let gref = GraphRef::from(&graph);
    assert_eq!(stitched.paths.len(), 12);
    for path in &stitched.paths {
        assert_eq!(
            path.len() as u32,
            walk_len + 1,
            "stitched walks run full length"
        );
        for pair in path.windows(2) {
            assert!(
                gref.has_edge(pair[0], pair[1]),
                "spliced paths follow real edges"
            );
        }
    }

    assert_eq!(exact.status, Status::Ok);
    assert_eq!(
        exact.paths, batch.paths,
        "exact requests must not see the pool"
    );
}

/// Without a pool, a stitch request is refused with an actionable
/// `Status::Invalid` — not silently downgraded to exact execution.
#[test]
fn stitch_requests_without_a_pool_are_refused() {
    let graph = test_graph();

    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(4),
            deadline_ms: 0,
            stitch: true,
        });
        let resp = rx.recv().expect("service dropped the responder");
        client.shutdown();
        resp
    });
    service
        .run_with_pool(&graph, Hops(10), WalkConfig::single_node(999), None)
        .expect("no pool, nothing to validate");
    let resp = asker.join().unwrap();

    match resp.status {
        Status::Invalid(msg) => {
            assert!(
                msg.contains("pool"),
                "the refusal names the missing pool: {msg}"
            )
        }
        other => panic!("expected Status::Invalid, got {other:?}"),
    }
    assert!(resp.paths.is_empty());
}

/// Stitched responses are deterministic: the same seed against the same
/// pool state yields identical paths.
#[test]
fn stitched_requests_are_deterministic() {
    let graph = test_graph();
    let cfg = PoolConfig {
        segments_per_vertex: 3,
        segment_length: 6,
        seed: 9,
    };

    let run_once = || {
        let pool = SegmentPool::build(&graph, &Hops(18), cfg).expect("pool build");
        let (service, handle) = WalkService::new(ServiceConfig::default());
        let client = handle.clone();
        let asker = thread::spawn(move || {
            let rx = client.submit(WalkRequest {
                seed: 41,
                starts: StartSpec::Explicit(vec![1, 2, 3, 4, 5]),
                deadline_ms: 0,
                stitch: true,
            });
            let resp = rx.recv().expect("service dropped the responder");
            client.shutdown();
            resp
        });
        service
            .run_with_pool(&graph, Hops(18), WalkConfig::single_node(999), Some(pool))
            .expect("stitchable program");
        asker.join().unwrap()
    };

    let a = run_once();
    let b = run_once();
    assert!(matches!(a.status, Status::Stitched { .. }));
    assert_eq!(a.paths, b.paths, "same seed + same pool state = same walks");
}
