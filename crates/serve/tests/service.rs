//! Service-level integration tests: byte-identity with batch runs,
//! admission control (overflow, deadlines), and shutdown draining.

use std::thread;
use std::time::Duration;

use knightking_core::{
    RandomWalkEngine, SpanEventKind, WalkConfig, Walker, WalkerProgram, WalkerStarts,
};
use knightking_graph::gen;
use knightking_serve::{ServiceConfig, StartSpec, Status, WalkRequest, WalkService};
use knightking_walks::Node2Vec;

/// An unbiased fixed-length walk for tests that don't need bias.
struct Fixed(u32);

impl WalkerProgram for Fixed {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;

    fn init_data(&self, _id: u64, _start: u32) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

fn test_graph() -> knightking_graph::CsrGraph {
    gen::uniform_degree(96, 6, gen::GenOptions::seeded(11))
}

/// A served node2vec query returns byte-identical paths to a one-shot
/// batch run with the same seed — the service was built with a
/// *different* seed, proving request-local determinism.
#[test]
fn served_node2vec_matches_batch_byte_for_byte() {
    let graph = test_graph();
    let program = || Node2Vec::new(2.0, 0.5, 20);

    let batch = RandomWalkEngine::new(&graph, program(), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(16));

    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(16),
            deadline_ms: 0,
            stitch: false,
        });
        let resp = rx.recv().expect("service dropped the responder");
        client.shutdown();
        resp
    });
    service.run(&graph, program(), WalkConfig::single_node(999));
    let resp = asker.join().unwrap();

    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.paths, batch.paths);
}

/// Same byte-identity on a 2-node in-process cluster, with the request
/// interleaved against another in-flight request.
#[test]
fn served_walks_interleave_without_cross_talk() {
    let graph = test_graph();

    let batch_a = RandomWalkEngine::new(&graph, Fixed(12), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(10));
    let batch_b = RandomWalkEngine::new(&graph, Fixed(12), WalkConfig::single_node(31))
        .run(WalkerStarts::Explicit(vec![5, 5, 80]));

    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx_a = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(10),
            deadline_ms: 0,
            stitch: false,
        });
        let rx_b = client.submit(WalkRequest {
            seed: 31,
            starts: StartSpec::Explicit(vec![5, 5, 80]),
            deadline_ms: 0,
            stitch: false,
        });
        let a = rx_a.recv().unwrap();
        let b = rx_b.recv().unwrap();
        client.shutdown();
        (a, b)
    });
    service.run(&graph, Fixed(12), WalkConfig::with_nodes(2, 999));
    let (a, b) = asker.join().unwrap();

    assert_eq!(a.status, Status::Ok);
    assert_eq!(b.status, Status::Ok);
    assert_eq!(a.paths, batch_a.paths);
    assert_eq!(b.paths, batch_b.paths);
}

/// Tracing and profiling must be pure observers: with `trace_sample: 1`
/// and the obs profile on, served paths are still byte-identical to an
/// untraced batch run, and the gathered trace log holds the request's
/// full admit → superstep(s) → complete timeline.
#[test]
fn traced_request_is_byte_identical_and_leaves_spans() {
    let graph = test_graph();
    let program = || Node2Vec::new(2.0, 0.5, 20);

    let batch = RandomWalkEngine::new(&graph, program(), WalkConfig::single_node(7))
        .run(WalkerStarts::Count(16));

    let cfg = ServiceConfig {
        trace_sample: 1,
        ..ServiceConfig::default()
    };
    let (service, handle) = WalkService::new(cfg);
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx = client.submit(WalkRequest {
            seed: 7,
            starts: StartSpec::Count(16),
            deadline_ms: 0,
            stitch: false,
        });
        let resp = rx.recv().expect("service dropped the responder");
        client.shutdown();
        resp
    });
    let mut walk_cfg = WalkConfig::single_node(999);
    walk_cfg.profile = true;
    service.run(&graph, program(), walk_cfg);
    let resp = asker.join().unwrap();

    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.paths, batch.paths, "tracing must not perturb walks");

    // The trace log tells the request's whole story.
    let log = handle.trace_log();
    assert_eq!(log.dropped(), 0);
    let spans = log.spans();
    let admits: Vec<_> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanEventKind::Admit { .. }))
        .collect();
    assert_eq!(admits.len(), 1, "one traced request, one admit anchor");
    let trace_id = admits[0].trace;
    assert!(matches!(
        admits[0].kind,
        SpanEventKind::Admit { walkers: 16 }
    ));
    assert!(
        spans
            .iter()
            .any(|s| matches!(s.kind, SpanEventKind::Superstep { hops } if hops > 0)),
        "a 20-hop walk must record superstep spans"
    );
    let completed: u64 = spans
        .iter()
        .filter(|s| s.trace == trace_id)
        .map(|s| match s.kind {
            SpanEventKind::Complete { walkers } => walkers,
            _ => 0,
        })
        .sum();
    assert_eq!(completed, 16, "every admitted walker must complete");
    assert!(spans.iter().all(|s| s.trace == trace_id && s.node == 0));

    // The flat report sees the same life: one request admitted and
    // completed, a populated series, and the span count.
    let report = handle.report();
    assert_eq!(report.admitted, 1);
    assert_eq!(report.completed, 1);
    assert!(report.supersteps > 0);
    assert!(report.steps >= 16 * 20, "16 walkers × 20 hops of work");
    assert_eq!(report.spans, spans.len() as u64);
    assert_eq!(report.spans_dropped, 0);
    assert!(!report.series.is_empty());
    assert!(report.series.iter().any(|p| p.active_walkers > 0));
    // Exposition renders without panicking and names the request count.
    assert!(report
        .render_prometheus()
        .contains("kk_requests_completed_total 1"));
}

/// `trace_sample: 3` traces every third admission: the sampler is
/// deterministic (admission order), so exactly requests 0 and 3 of four
/// leave spans.
#[test]
fn trace_sampling_traces_every_nth_request() {
    let graph = test_graph();
    let cfg = ServiceConfig {
        trace_sample: 3,
        ..ServiceConfig::default()
    };
    let (service, handle) = WalkService::new(cfg);
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rxs: Vec<_> = (0..4)
            .map(|i| {
                client.submit(WalkRequest {
                    seed: i,
                    starts: StartSpec::Count(2),
                    deadline_ms: 0,
                    stitch: false,
                })
            })
            .collect();
        for rx in rxs {
            assert_eq!(rx.recv().unwrap().status, Status::Ok);
        }
        client.shutdown();
    });
    service.run(&graph, Fixed(6), WalkConfig::single_node(0));
    asker.join().unwrap();

    let log = handle.trace_log();
    let admits = log
        .spans()
        .iter()
        .filter(|s| matches!(s.kind, SpanEventKind::Admit { .. }))
        .count();
    assert_eq!(admits, 2, "admissions 0 and 3 of 4 are sampled at N=3");
    assert_eq!(handle.report().admitted, 4);
}

/// A full queue rejects immediately with the configured retry-after —
/// backpressure, not a hang.
#[test]
fn overflow_rejects_with_retry_after() {
    let cfg = ServiceConfig {
        queue_capacity: 1,
        retry_after_ms: 123,
        ..ServiceConfig::default()
    };
    let (service, handle) = WalkService::new(cfg);

    let req = || WalkRequest {
        seed: 1,
        starts: StartSpec::Count(4),
        deadline_ms: 0,
        stitch: false,
    };
    // Nothing is draining the queue yet, so the second submit overflows.
    let _rx_first = handle.submit(req());
    let rejected = handle.submit(req()).recv().unwrap();
    assert_eq!(
        rejected.status,
        Status::Rejected {
            retry_after_ms: 123
        }
    );
    assert!(rejected.paths.is_empty());
    assert_eq!(handle.stats().rejected, 1);

    // Drain so the service exits cleanly.
    handle.shutdown();
    service.run(&test_graph(), Fixed(3), WalkConfig::single_node(0));
}

/// An expired deadline force-terminates the request's walkers and
/// responds `DeadlineExceeded` while the service keeps running.
#[test]
fn expired_deadline_reports_deadline_exceeded() {
    let graph = test_graph();
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        // A walk that would take ~forever, bounded by a 50ms deadline.
        let rx = client.submit(WalkRequest {
            seed: 3,
            starts: StartSpec::Count(4),
            deadline_ms: 50,
            stitch: false,
        });
        let overdue = rx.recv().unwrap();

        // The service must still admit fresh requests afterwards (this
        // one also expires — the program is endless — but its admission
        // and kill prove the loop survived the first force-terminate).
        let rx = client.submit(WalkRequest {
            seed: 3,
            starts: StartSpec::Explicit(vec![0]),
            deadline_ms: 50,
            stitch: false,
        });
        let after = rx.recv().unwrap();
        client.shutdown();
        (overdue, after)
    });
    service.run(&graph, Fixed(u32::MAX), WalkConfig::single_node(0));
    let (overdue, after) = asker.join().unwrap();

    assert_eq!(overdue.status, Status::DeadlineExceeded);
    assert!(overdue.paths.is_empty());
    assert_eq!(after.status, Status::DeadlineExceeded);
    assert_eq!(handle.stats().deadline_exceeded, 2);
}

/// Requests already queued when shutdown arrives are still served —
/// drain-then-exit, not drop.
#[test]
fn shutdown_drains_queued_requests() {
    let graph = test_graph();
    let batch = RandomWalkEngine::new(&graph, Fixed(5), WalkConfig::single_node(42))
        .run(WalkerStarts::Count(6));

    let (service, handle) = WalkService::new(ServiceConfig::default());
    let rx = handle.submit(WalkRequest {
        seed: 42,
        starts: StartSpec::Count(6),
        deadline_ms: 0,
        stitch: false,
    });
    // Shutdown lands before the service loop ever polls the queue.
    handle.shutdown();
    service.run(&graph, Fixed(5), WalkConfig::single_node(0));

    let resp = rx.recv().unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.paths, batch.paths);

    // Post-shutdown submissions are refused outright.
    let refused = handle
        .submit(WalkRequest {
            seed: 1,
            starts: StartSpec::Count(1),
            deadline_ms: 0,
            stitch: false,
        })
        .recv()
        .unwrap();
    assert_eq!(refused.status, Status::ShuttingDown);
}

/// Invalid start vertices are answered with an error naming the vertex,
/// without disturbing the service.
#[test]
fn invalid_start_names_the_offending_vertex() {
    let graph = test_graph(); // 96 vertices
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx = client.submit(WalkRequest {
            seed: 1,
            starts: StartSpec::Explicit(vec![3, 7, 4096]),
            deadline_ms: 0,
            stitch: false,
        });
        let bad = rx.recv().unwrap();

        let rx = client.submit(WalkRequest {
            seed: 1,
            starts: StartSpec::Count(2),
            deadline_ms: 0,
            stitch: false,
        });
        let good = rx.recv().unwrap();
        client.shutdown();
        (bad, good)
    });
    service.run(&graph, Fixed(4), WalkConfig::single_node(0));
    let (bad, good) = asker.join().unwrap();

    match bad.status {
        Status::Invalid(msg) => {
            assert!(msg.contains("4096"), "error should name the vertex: {msg}");
            assert!(msg.contains("96"), "error should name the bound: {msg}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert_eq!(good.status, Status::Ok);
}

/// A zero-walker request completes trivially with no paths.
#[test]
fn zero_walker_request_is_trivially_ok() {
    let graph = test_graph();
    let (service, handle) = WalkService::new(ServiceConfig::default());
    let client = handle.clone();
    let asker = thread::spawn(move || {
        let rx = client.submit(WalkRequest {
            seed: 1,
            starts: StartSpec::Count(0),
            deadline_ms: 0,
            stitch: false,
        });
        let resp = rx.recv().unwrap();
        client.shutdown();
        resp
    });
    service.run(&graph, Fixed(4), WalkConfig::single_node(0));
    let resp = asker.join().unwrap();
    assert_eq!(resp.status, Status::Ok);
    assert!(resp.paths.is_empty());

    let stats = handle.stats();
    assert_eq!(stats.completed, 1);
    assert!(stats.supersteps > 0);
    assert!(Duration::from_micros(stats.latency_us.max()) < Duration::from_secs(60));
}
