//! Radix-backend byte-identity under churn.
//!
//! The invariant is *per backend*: a service maintaining its radix
//! samplers incrementally (O(log n) point patches for reweight-only
//! vertices) must answer walk queries byte-identically to a batch run
//! with the radix backend on the freshly materialized graph at the
//! walker's pinned epoch — where every table is rebuilt from scratch.
//! Asserted across compaction thresholds, in-process and over a real
//! 2-rank TCP cluster, plus the zero-mass edge cases on both backends.

use std::net::TcpListener;
use std::thread;

use knightking_core::{RandomWalkEngine, SamplerBackend, WalkConfig, WalkerStarts};
use knightking_dyn::{DynConfig, DynGraph, EdgeAdd, EdgeRef, EdgeReweight, UpdateBatch};
use knightking_graph::gen;
use knightking_net::{reserve_loopback_addrs, TcpConfig, TcpTransport};
use knightking_serve::{
    protocol, serve_listener, Request, ServiceConfig, StartSpec, Status, WalkRequest, WalkService,
};
use knightking_walks::DeepWalk;

fn weighted_graph(n: usize, seed: u64) -> knightking_graph::CsrGraph {
    gen::uniform_degree(n, 5, gen::GenOptions::paper_weighted(seed))
}

fn cfg(seed: u64, sampler: SamplerBackend) -> WalkConfig {
    let mut c = WalkConfig::single_node(seed);
    c.sampler = sampler;
    c
}

/// Structural churn: adds and dels shift merged-row indices, forcing the
/// O(degree) rebuild path on every touched vertex.
fn structural_batch() -> UpdateBatch {
    UpdateBatch {
        adds: vec![
            EdgeAdd {
                src: 0,
                dst: 33,
                weight: 9.0,
                edge_type: 0,
            },
            EdgeAdd {
                src: 9,
                dst: 2,
                weight: 6.5,
                edge_type: 0,
            },
        ],
        dels: vec![EdgeRef { src: 5, dst: 1 }],
        reweights: vec![EdgeReweight {
            src: 0,
            dst: 33,
            weight: 12.0,
        }],
    }
}

/// Reweight-only churn on vertices the structural batch never touches:
/// exactly the vertices the radix backend patches in place instead of
/// rebuilding. Includes a reweight-to-zero leaf.
fn reweight_batch(base: &knightking_graph::CsrGraph) -> UpdateBatch {
    UpdateBatch {
        reweights: vec![
            EdgeReweight {
                src: 2,
                dst: base.edge(2, 0).dst,
                weight: 0.0,
            },
            EdgeReweight {
                src: 7,
                dst: base.edge(7, 1).dst,
                weight: 3.25,
            },
            EdgeReweight {
                src: 41,
                dst: base.edge(41, 4).dst,
                weight: 0.125,
            },
        ],
        ..UpdateBatch::default()
    }
}

/// The rebuilt-reference graph: batches applied offline, materialized.
fn materialized(
    base: &knightking_graph::CsrGraph,
    batches: &[&UpdateBatch],
) -> knightking_graph::CsrGraph {
    let reference = DynGraph::new(base.clone(), DynConfig::default());
    for b in batches {
        reference.apply(b).expect("valid batch");
    }
    reference.materialize()
}

/// In-process: walk / structural update / walk / reweight-only update /
/// walk, byte-compared against fresh radix rebuilds at each epoch, at
/// compaction thresholds 0 (compact every touch), the default, and 1000
/// (never compact in these sizes).
#[test]
fn radix_serve_matches_rebuilt_radix_across_compaction_thresholds() {
    for ratio in [0.0, 0.5, 1000.0] {
        let base = weighted_graph(60, 11);
        let b1 = structural_batch();
        let b2 = reweight_batch(&base);
        let starts = vec![0u32, 2, 7, 9, 33, 41];

        let pre = RandomWalkEngine::new(&base, DeepWalk::new(12), cfg(7, SamplerBackend::Radix))
            .run(WalkerStarts::Explicit(starts.clone()));
        let g1 = materialized(&base, &[&b1]);
        let post1 = RandomWalkEngine::new(&g1, DeepWalk::new(12), cfg(31, SamplerBackend::Radix))
            .run(WalkerStarts::Explicit(starts.clone()));
        let g2 = materialized(&base, &[&b1, &b2]);
        let post2 = RandomWalkEngine::new(&g2, DeepWalk::new(12), cfg(47, SamplerBackend::Radix))
            .run(WalkerStarts::Explicit(starts.clone()));

        let dyn_graph = DynGraph::new(
            base,
            DynConfig {
                compact_ratio: ratio,
            },
        );
        let (service, handle) = WalkService::new(ServiceConfig::default());
        let client = handle.clone();
        let asker_starts = starts.clone();
        let asker = thread::spawn(move || {
            let ask = |seed: u64| {
                client
                    .submit(WalkRequest {
                        seed,
                        starts: StartSpec::Explicit(asker_starts.clone()),
                        deadline_ms: 0,
                        stitch: false,
                    })
                    .recv()
                    .unwrap()
            };
            let a = ask(7);
            let u1 = client.submit_update(b1).recv().unwrap();
            let b = ask(31);
            let u2 = client.submit_update(b2).recv().unwrap();
            let c = ask(47);
            client.shutdown();
            (a, u1, b, u2, c)
        });
        service.run(
            &dyn_graph,
            DeepWalk::new(12),
            cfg(999, SamplerBackend::Radix),
        );
        let (a, u1, b, u2, c) = asker.join().unwrap();

        assert_eq!(u1.status, Status::Updated { epoch: 1 });
        assert_eq!(u2.status, Status::Updated { epoch: 2 });
        assert_eq!(a.status, Status::Ok);
        assert_eq!(a.paths, pre.paths, "epoch 0, compact_ratio {ratio}");
        assert_eq!(b.status, Status::Ok);
        assert_eq!(b.paths, post1.paths, "epoch 1, compact_ratio {ratio}");
        assert_eq!(c.status, Status::Ok);
        assert_eq!(c.paths, post2.paths, "epoch 2, compact_ratio {ratio}");
        assert_eq!(dyn_graph.epoch(), 2);
    }
}

/// Zero-mass edge cases on both backends: a vertex whose every edge is
/// reweighted to zero and a vertex whose every edge is deleted must end
/// walks cleanly (path = the start vertex alone), identically between
/// the incrementally maintained service and a fresh batch rebuild —
/// never sample uniformly from dead mass, never panic.
#[test]
fn zero_mass_and_tombstoned_vertices_finish_walks_on_both_backends() {
    let base = weighted_graph(40, 3);
    let (zeroed, culled) = (6u32, 8u32);
    let mut batch = UpdateBatch::default();
    for i in 0..base.degree(zeroed) {
        batch.reweights.push(EdgeReweight {
            src: zeroed,
            dst: base.edge(zeroed, i).dst,
            weight: 0.0,
        });
    }
    for i in 0..base.degree(culled) {
        batch.dels.push(EdgeRef {
            src: culled,
            dst: base.edge(culled, i).dst,
        });
    }
    let starts = vec![zeroed, culled];
    let post_graph = materialized(&base, &[&batch]);

    for sampler in [SamplerBackend::Alias, SamplerBackend::Radix] {
        let post = RandomWalkEngine::new(&post_graph, DeepWalk::new(12), cfg(31, sampler))
            .run(WalkerStarts::Explicit(starts.clone()));

        let dyn_graph = DynGraph::new(base.clone(), DynConfig::default());
        let (service, handle) = WalkService::new(ServiceConfig::default());
        let client = handle.clone();
        let (asker_starts, asker_batch) = (starts.clone(), batch.clone());
        let asker = thread::spawn(move || {
            let u = client.submit_update(asker_batch).recv().unwrap();
            let b = client
                .submit(WalkRequest {
                    seed: 31,
                    starts: StartSpec::Explicit(asker_starts),
                    deadline_ms: 0,
                    stitch: false,
                })
                .recv()
                .unwrap();
            client.shutdown();
            (u, b)
        });
        service.run(&dyn_graph, DeepWalk::new(12), cfg(999, sampler));
        let (u, b) = asker.join().unwrap();

        assert_eq!(u.status, Status::Updated { epoch: 1 });
        assert_eq!(b.status, Status::Ok);
        assert_eq!(b.paths, post.paths, "served vs rebuilt, {sampler:?}");
        assert_eq!(
            b.paths,
            vec![vec![zeroed], vec![culled]],
            "{sampler:?}: dead vertices must end walks immediately"
        );
        let _ = handle;
    }
}

/// The full distributed path with the radix backend: a 2-rank TCP
/// cluster applies structural + reweight-only updates in lockstep, each
/// rank patching only its owned radix tables; queries at every epoch are
/// byte-identical to rebuilt-radix batch runs.
#[test]
fn tcp_two_rank_radix_service_stays_byte_identical_under_churn() {
    let base = weighted_graph(80, 23);
    let b1 = structural_batch();
    let b2 = reweight_batch(&base);
    let starts: Vec<u32> = vec![0, 2, 7, 9, 33, 41, 77];

    let pre = RandomWalkEngine::new(&base, DeepWalk::new(9), cfg(7, SamplerBackend::Radix))
        .run(WalkerStarts::Explicit(starts.clone()));
    let g2 = materialized(&base, &[&b1, &b2]);
    let post = RandomWalkEngine::new(&g2, DeepWalk::new(9), cfg(31, SamplerBackend::Radix))
        .run(WalkerStarts::Explicit(starts.clone()));

    let peers = reserve_loopback_addrs(2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let (service, handle) = WalkService::new(ServiceConfig::default());
    let dyn0 = DynGraph::new(base.clone(), DynConfig::default());
    let dyn1 = DynGraph::new(base.clone(), DynConfig::default());

    thread::scope(|scope| {
        let service = &service;
        let (dyn0, dyn1) = (&dyn0, &dyn1);

        let peers0 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(0, peers0, 0x4AD1)).unwrap();
            service.run_leader(
                dyn0,
                DeepWalk::new(9),
                {
                    let mut c = WalkConfig::with_nodes(2, 999);
                    c.sampler = SamplerBackend::Radix;
                    c
                },
                &mut t,
            );
        });
        let peers1 = peers.clone();
        scope.spawn(move || {
            let mut t = TcpTransport::establish(TcpConfig::new(1, peers1, 0x4AD1)).unwrap();
            WalkService::run_worker(
                dyn1,
                DeepWalk::new(9),
                {
                    let mut c = WalkConfig::with_nodes(2, 999);
                    c.sampler = SamplerBackend::Radix;
                    c
                },
                &mut t,
            );
        });
        let lh = handle.clone();
        scope.spawn(move || serve_listener(listener, lh).unwrap());

        let mut stream = protocol::connect(addr).unwrap();
        let r1 = protocol::round_trip(
            &mut stream,
            1,
            &Request::Walk(WalkRequest {
                seed: 7,
                starts: StartSpec::Explicit(starts.clone()),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(r1.status, Status::Ok);
        assert_eq!(r1.paths, pre.paths);

        let r2 = protocol::round_trip(&mut stream, 2, &Request::Update(b1.clone())).unwrap();
        assert_eq!(r2.status, Status::Updated { epoch: 1 });
        let r3 = protocol::round_trip(&mut stream, 3, &Request::Update(b2.clone())).unwrap();
        assert_eq!(r3.status, Status::Updated { epoch: 2 });

        let r4 = protocol::round_trip(
            &mut stream,
            4,
            &Request::Walk(WalkRequest {
                seed: 31,
                starts: StartSpec::Explicit(starts.clone()),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(r4.status, Status::Ok);
        assert_eq!(r4.paths, post.paths);

        let ack = protocol::round_trip(&mut stream, 5, &Request::Shutdown).unwrap();
        assert_eq!(ack.status, Status::Ok);
    });

    assert_eq!(dyn0.epoch(), 2);
    assert_eq!(dyn1.epoch(), 2);
    assert_eq!(handle.stats().updates, 2);
}

/// A minimal LCG (Numerical Recipes constants) — test-input generation
/// only.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_batch(rng: &mut Lcg, n: u64) -> UpdateBatch {
    let mut batch = UpdateBatch::default();
    for _ in 0..rng.below(5) {
        batch.adds.push(EdgeAdd {
            src: rng.below(n) as u32,
            dst: rng.below(n) as u32,
            weight: (rng.below(40) + 1) as f32 * 0.25,
            edge_type: 0,
        });
    }
    for _ in 0..rng.below(4) {
        batch.dels.push(EdgeRef {
            src: rng.below(n) as u32,
            dst: rng.below(n) as u32,
        });
    }
    for _ in 0..rng.below(4) {
        batch.reweights.push(EdgeReweight {
            // Reweights on the 0.25 grid, occasionally to zero.
            src: rng.below(n) as u32,
            dst: rng.below(n) as u32,
            weight: rng.below(40) as f32 * 0.25,
        });
    }
    batch
}

/// Randomized churn, the `crates/dyn/tests/model.rs` discipline lifted
/// to sampler maintenance: arbitrary batch sequences (adds, dels,
/// reweights — including reweight-to-zero), every compaction threshold,
/// and at each epoch the incrementally maintained radix service must
/// walk byte-identically to a rebuilt-radix batch run on the
/// materialized graph.
#[test]
fn randomized_churn_stays_byte_identical_across_thresholds() {
    for seed in [1u64, 2, 3] {
        for ratio in [0.0, 0.5, 1000.0] {
            let n = 50usize;
            let base = weighted_graph(n, seed);
            let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15));
            let batches: Vec<UpdateBatch> =
                (0..4).map(|_| random_batch(&mut rng, n as u64)).collect();
            let starts: Vec<u32> = (0..10).map(|_| rng.below(n as u64) as u32).collect();

            // Rebuilt references at epochs 0..=4.
            let mut refs = Vec::new();
            for e in 0..=batches.len() {
                let g = materialized(&base, &batches[..e].iter().collect::<Vec<_>>());
                refs.push(
                    RandomWalkEngine::new(
                        &g,
                        DeepWalk::new(8),
                        cfg(100 + e as u64, SamplerBackend::Radix),
                    )
                    .run(WalkerStarts::Explicit(starts.clone()))
                    .paths,
                );
            }

            let dyn_graph = DynGraph::new(
                base,
                DynConfig {
                    compact_ratio: ratio,
                },
            );
            let (service, handle) = WalkService::new(ServiceConfig::default());
            let client = handle.clone();
            let asker_starts = starts.clone();
            let asker_batches = batches.clone();
            let asker = thread::spawn(move || {
                let mut served = Vec::new();
                let ask = |seed: u64| {
                    client
                        .submit(WalkRequest {
                            seed,
                            starts: StartSpec::Explicit(asker_starts.clone()),
                            deadline_ms: 0,
                            stitch: false,
                        })
                        .recv()
                        .unwrap()
                };
                served.push(ask(100));
                for (i, batch) in asker_batches.into_iter().enumerate() {
                    let u = client.submit_update(batch).recv().unwrap();
                    assert_eq!(
                        u.status,
                        Status::Updated {
                            epoch: i as u64 + 1
                        }
                    );
                    served.push(ask(100 + i as u64 + 1));
                }
                client.shutdown();
                served
            });
            service.run(
                &dyn_graph,
                DeepWalk::new(8),
                cfg(999, SamplerBackend::Radix),
            );
            let served = asker.join().unwrap();

            for (e, (resp, reference)) in served.iter().zip(&refs).enumerate() {
                assert_eq!(resp.status, Status::Ok);
                assert_eq!(
                    &resp.paths, reference,
                    "seed {seed}, compact_ratio {ratio}, epoch {e}"
                );
            }
        }
    }
}
