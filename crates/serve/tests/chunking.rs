//! Adversarial byte-arrival tests for the serve front door.
//!
//! The reactor listener parses KKSV incrementally — nothing about a
//! response may depend on how the client's bytes were sliced into TCP
//! segments. These tests drive the parsers (and the real listener) with
//! hostile chunkings: 1-byte trickles, headers split mid-field, many
//! frames coalesced into one write — plus a half-open client that must
//! be evicted by the idle timer. A deterministic LCG stands in for the
//! proptest chunking suite in `knightking-net`, so this file runs with
//! no external dev-dependencies.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use knightking_core::{RandomWalkEngine, WalkConfig, Walker, WalkerProgram, WalkerStarts};
use knightking_graph::gen;
use knightking_net::frame::{read_frame, split_frame, tag, write_frame, Frame};
use knightking_net::to_bytes;
use knightking_serve::protocol::{hello_bytes, split_hello};
use knightking_serve::{
    protocol, serve_listener_with, ListenerConfig, Request, ServiceConfig, StartSpec, Status,
    WalkRequest, WalkService, DEFAULT_TENANT,
};

struct Fixed(u32);

impl WalkerProgram for Fixed {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;

    fn init_data(&self, _id: u64, _start: u32) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

/// A tiny deterministic generator (LCG) so the fuzz below reproduces
/// exactly — no external randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Drains every complete frame currently in `buf`.
fn drain_frames(buf: &mut Vec<u8>) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some((frame, used)) = split_frame(buf).unwrap() {
        buf.drain(..used);
        out.push(frame);
    }
    out
}

#[test]
fn fuzzed_chunkings_agree_with_whole_buffer_decode() {
    let mut rng = Lcg(0xC0FFEE);
    for round in 0..200 {
        // A random tenant and a few random frames.
        let tenant: String = (0..rng.below(65))
            .map(|_| {
                let cs = b"abcXYZ019._-";
                cs[rng.below(cs.len() as u64) as usize] as char
            })
            .collect();
        let frames: Vec<(u8, u64, Vec<u8>)> = (0..rng.below(5))
            .map(|_| {
                (
                    (tag::DATA + rng.below((tag::RESP - tag::DATA + 1) as u64) as u8),
                    rng.next(),
                    (0..rng.below(80)).map(|_| rng.next() as u8).collect(),
                )
            })
            .collect();
        let mut stream = hello_bytes(&tenant).unwrap();
        for (t, seq, payload) in &frames {
            write_frame(&mut stream, *t, *seq, payload).unwrap();
        }

        // Ground truth: the blocking reader over the whole stream.
        let (want_tenant, used) = split_hello(&stream).unwrap().unwrap();
        let mut cursor = std::io::Cursor::new(&stream[used..]);
        let whole: Vec<Frame> = (0..frames.len())
            .map(|_| read_frame(&mut cursor).unwrap())
            .collect();

        // Incremental: adversarial chunk sizes, skewed tiny so header
        // splits and 1-byte reads dominate; drain after every chunk.
        let mut buf: Vec<u8> = Vec::new();
        let mut got_tenant: Option<String> = None;
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = (1 + rng.below(7) as usize).min(stream.len() - pos);
            buf.extend_from_slice(&stream[pos..pos + n]);
            pos += n;
            if got_tenant.is_none() {
                if let Some((t, used)) = split_hello(&buf).unwrap() {
                    buf.drain(..used);
                    got_tenant = Some(t);
                }
            }
            if got_tenant.is_some() {
                got.extend(drain_frames(&mut buf));
            }
        }
        assert_eq!(
            got_tenant.as_deref(),
            Some(want_tenant.as_str()),
            "round {round}"
        );
        assert!(buf.is_empty(), "round {round}: leftover bytes");
        assert_eq!(got, whole, "round {round}");
        if tenant.is_empty() {
            assert_eq!(want_tenant, DEFAULT_TENANT);
        }
    }
}

#[test]
fn split_parsers_survive_garbage_prefixes() {
    let mut rng = Lcg(0xBADF00D);
    for _ in 0..500 {
        let bytes: Vec<u8> = (0..rng.below(40)).map(|_| rng.next() as u8).collect();
        // Some, None, or Err — never a panic, never over-consumption.
        if let Ok(Some((_, used))) = split_frame(&bytes) {
            assert!(used <= bytes.len());
        }
        if let Ok(Some((_, used))) = split_hello(&bytes) {
            assert!(used <= bytes.len());
        }
    }
}

/// Runs a single-node service + reactor listener, hands `client` the
/// address, then shuts down and propagates panics.
fn with_served_graph<F>(lcfg: ListenerConfig, client: F)
where
    F: FnOnce(std::net::SocketAddr) + Send,
{
    let graph = gen::uniform_degree(64, 4, gen::GenOptions::seeded(3));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (service, handle) = WalkService::new(ServiceConfig::default());

    thread::scope(|scope| {
        let lh = handle.clone();
        scope.spawn(move || serve_listener_with(listener, lh, lcfg).unwrap());
        let h = handle.clone();
        scope.spawn(move || {
            // Shut down even if the client asserts: a panicking client
            // must fail the test, not deadlock the scope on service.run.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(addr)));
            h.shutdown();
            if let Err(p) = r {
                std::panic::resume_unwind(p);
            }
        });
        service.run(&graph, Fixed(8), WalkConfig::single_node(0));
    });
}

#[test]
fn one_byte_at_a_time_client_is_served_identically() {
    let graph = gen::uniform_degree(64, 4, gen::GenOptions::seeded(3));
    // Served walks are keyed by the REQUEST's seed: the batch twin must
    // run with the same seed (1) for byte-identical paths.
    let batch = RandomWalkEngine::new(&graph, Fixed(8), WalkConfig::single_node(1))
        .run(WalkerStarts::Count(6));

    with_served_graph(ListenerConfig::default(), move |addr| {
        // Hand-build hello + REQ and trickle it one byte per write.
        let mut bytes = hello_bytes("drip").unwrap();
        let payload = to_bytes(&Request::Walk(WalkRequest {
            seed: 1,
            starts: StartSpec::Count(6),
            deadline_ms: 0,
            stitch: false,
        }))
        .unwrap();
        write_frame(&mut bytes, tag::REQ, 9, &payload).unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        for b in bytes {
            stream.write_all(&[b]).unwrap();
            stream.flush().unwrap();
        }
        let resp = protocol::read_response(&mut stream, 9).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.paths, batch.paths);
    });
}

#[test]
fn coalesced_pipelined_requests_each_get_their_response() {
    with_served_graph(ListenerConfig::default(), |addr| {
        // Hello + three pipelined requests in ONE write: the parser must
        // peel them apart, and every seq must be answered.
        let mut bytes = hello_bytes("burst").unwrap();
        for seq in [5u64, 6, 7] {
            let payload = to_bytes(&Request::Walk(WalkRequest {
                seed: seq,
                starts: StartSpec::Count(3),
                deadline_ms: 0,
                stitch: false,
            }))
            .unwrap();
            write_frame(&mut bytes, tag::REQ, seq, &payload).unwrap();
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&bytes).unwrap();

        // Responses may arrive in any order; collect them by seq.
        let mut seen = Vec::new();
        for _ in 0..3 {
            let frame = read_frame(&mut stream).unwrap();
            assert_eq!(frame.tag, tag::RESP);
            seen.push(frame.seq);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![5, 6, 7]);
    });
}

#[test]
fn half_open_connection_is_evicted_by_the_idle_timer() {
    let lcfg = ListenerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ListenerConfig::default()
    };
    with_served_graph(lcfg, |addr| {
        // A client that sends half a hello and goes quiet: the idle
        // timer must reap it (read returns EOF/reset), and the listener
        // must keep serving well-behaved clients afterwards.
        let mut mute = TcpStream::connect(addr).unwrap();
        mute.write_all(b"KK").unwrap();
        mute.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        let evicted = match mute.read_to_end(&mut sink) {
            Ok(0) => true,
            Ok(_) => false,
            Err(_) => true, // reset also counts as eviction
        };
        assert!(evicted, "half-open connection was never evicted");

        let mut stream = protocol::connect(addr).unwrap();
        let resp = protocol::round_trip(
            &mut stream,
            1,
            &Request::Walk(WalkRequest {
                seed: 4,
                starts: StartSpec::Count(2),
                deadline_ms: 0,
                stitch: false,
            }),
        )
        .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.paths.len(), 2);
    });
}
