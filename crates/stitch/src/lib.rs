#![warn(missing_docs)]

//! knightking-stitch: the segment pool behind stitched long-walk
//! execution.
//!
//! A [`SegmentPool`] holds, for every vertex, up to K precomputed
//! length-L walk segments sampled from the **static kernel** of a
//! stitchable [`WalkerProgram`] — the same per-edge distribution the
//! batch engine draws from, sampled by the batch engine itself
//! ([`SegmentPool::build`] runs K deterministic `PerVertex` rounds).
//! Because a first-order walk's future depends only on its current
//! vertex, a segment starting at `v` is a faithful sample of the walk
//! measure from `v`; the [`StitchedDriver`] answers a long-walk query by
//! hopping segment-to-segment, consuming each at most once (reuse would
//! correlate trajectories), and stepping exactly where a pool runs dry.
//!
//! Pools are **seed- and epoch-stamped**: the same `(graph, program,
//! PoolConfig)` always builds byte-identical pools, and every segment
//! carries a validity window `[pool.epoch, invalid_from)` in graph
//! epochs. [`SegmentPool::invalidate`] closes that window for every
//! segment passing through a vertex touched by a dynamic update —
//! mirroring the engine's incremental sampler maintenance, but
//! pessimistic: a touched vertex *anywhere* in a segment (start
//! included) kills it, so stitched walks at the new epoch can never
//! splice stale transitions. Requests pinned at older epochs keep using
//! the segment.
//!
//! Pools serialize to the compact `KKPL` format ([`SegmentPool::save`] /
//! [`SegmentPool::load`]); consumption and invalidation state is
//! deliberately *not* persisted — a loaded pool is fresh.
//!
//! [`StitchedDriver`]: knightking_core::StitchedDriver
//! [`WalkerProgram`]: knightking_core::WalkerProgram

use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::path::Path;

use knightking_core::{
    stitch_support, GraphRef, RandomWalkEngine, SegmentSource, StitchError, UpdateBatch,
    WalkConfig, Walker, WalkerProgram, WalkerStarts,
};
use knightking_graph::VertexId;

/// First four bytes of a serialized pool ("KnightKing PooL").
pub const POOL_MAGIC: [u8; 4] = *b"KKPL";

/// Pool file-format version.
pub const POOL_VERSION: u16 = 1;

/// Shape of a segment pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Segments precomputed per vertex (K). Each build round contributes
    /// one segment per vertex, so build cost is K batch runs.
    pub segments_per_vertex: u32,
    /// Steps per segment (L). A query of length `n` consumes about
    /// `n / L` segments, so larger L trades pool memory for fewer
    /// splices.
    pub segment_length: u32,
    /// Pool seed. Round `j` runs the batch engine with a seed derived
    /// from `(seed, j)`, so pools are reproducible end to end.
    pub seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            segments_per_vertex: 4,
            segment_length: 16,
            seed: 1,
        }
    }
}

/// One segment's bookkeeping; the vertices live in the shared flat
/// buffer.
#[derive(Debug, Clone, Copy)]
struct SegMeta {
    /// Offset into [`SegmentPool::data`].
    off: u64,
    /// Entry count; never zero (dead-end starts produce no segment).
    len: u32,
    /// First graph epoch this segment is *stale* at: `u64::MAX` while
    /// valid, the update's epoch once a touched vertex lies on it.
    invalid_from: u64,
    /// Whether a walk already spliced this segment.
    consumed: bool,
}

/// A per-epoch pool of single-use walk segments.
pub struct SegmentPool {
    /// Graph epoch the segments were sampled at.
    epoch: u64,
    /// The seed the pool was built from.
    seed: u64,
    /// Configured K.
    segments_per_vertex: u32,
    /// Configured L.
    segment_length: u32,
    /// Vertex count of the graph the pool was built on.
    vertex_count: u32,
    /// Prefix index: vertex `v`'s segments are
    /// `segs[seg_index[v]..seg_index[v + 1]]`.
    seg_index: Vec<u64>,
    segs: Vec<SegMeta>,
    /// All segment vertices, flat.
    data: Vec<VertexId>,
}

/// Summary counters for `kk pool info` and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolInfo {
    /// Graph epoch the pool was sampled at.
    pub epoch: u64,
    /// Build seed.
    pub seed: u64,
    /// Configured segments per vertex (K).
    pub segments_per_vertex: u32,
    /// Configured segment length (L).
    pub segment_length: u32,
    /// Vertex count of the source graph.
    pub vertex_count: u32,
    /// Segments held (dead-end vertices contribute fewer than K).
    pub segments: u64,
    /// Total vertex entries across all segments.
    pub entries: u64,
    /// Segments already consumed by splices.
    pub consumed: u64,
    /// Segments invalidated by dynamic updates.
    pub invalidated: u64,
}

/// The fixed-length program that samples segments: the target program's
/// static kernel (`Ps` only — stitchable programs have no dynamic
/// component by contract), terminated purely by step count.
struct SegmentKernel<'p, P> {
    inner: &'p P,
    len: u32,
}

impl<P: WalkerProgram> WalkerProgram for SegmentKernel<'_, P> {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;
    const NAME: &'static str = "segment-kernel";
    fn static_comp(&self, graph: &GraphRef<'_>, edge: knightking_graph::EdgeView) -> f64 {
        self.inner.static_comp(graph, edge)
    }
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, walker: &mut Walker<()>) -> bool {
        walker.step >= self.len
    }
}

/// Derives round `j`'s engine seed from the pool seed — a SplitMix64
/// finalizer, so rounds get decorrelated walker streams.
fn round_seed(seed: u64, round: u32) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SegmentPool {
    /// Builds a pool by running K deterministic one-walker-per-vertex
    /// batch rounds of `program`'s static kernel over `graph` at its
    /// pinned epoch. Dead-end starts (no out-edges, or zero static mass)
    /// contribute no segment — an empty segment could never advance a
    /// walk.
    ///
    /// Memory high-water mark is one round's paths (`|V| × (L + 1)`
    /// vertex ids) on top of the accumulating pool.
    ///
    /// # Errors
    ///
    /// Rejects non-stitchable programs with the same typed
    /// [`StitchError`] the driver raises.
    pub fn build<'g, P: WalkerProgram>(
        graph: impl Into<GraphRef<'g>>,
        program: &P,
        cfg: PoolConfig,
    ) -> Result<SegmentPool, StitchError> {
        stitch_support::<P>()?;
        let graph: GraphRef<'g> = graph.into();
        let epoch = graph.epoch();
        let n = graph.vertex_count();
        let mut per_vertex: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut lens: Vec<Vec<u32>> = vec![Vec::new(); n];
        for round in 0..cfg.segments_per_vertex {
            let kernel = SegmentKernel {
                inner: program,
                len: cfg.segment_length,
            };
            let mut wcfg = WalkConfig::single_node(round_seed(cfg.seed, round));
            wcfg.record_paths = true;
            let result = RandomWalkEngine::new(graph, kernel, wcfg).run(WalkerStarts::PerVertex);
            for (v, path) in result.paths.into_iter().enumerate() {
                debug_assert_eq!(path.first().copied(), Some(v as VertexId));
                if path.len() > 1 {
                    per_vertex[v].extend_from_slice(&path[1..]);
                    lens[v].push((path.len() - 1) as u32);
                }
            }
        }
        let mut seg_index = Vec::with_capacity(n + 1);
        let mut segs = Vec::new();
        let mut data = Vec::new();
        seg_index.push(0u64);
        for v in 0..n {
            let mut off_in_v = 0usize;
            for &len in &lens[v] {
                segs.push(SegMeta {
                    off: data.len() as u64,
                    len,
                    invalid_from: u64::MAX,
                    consumed: false,
                });
                data.extend_from_slice(&per_vertex[v][off_in_v..off_in_v + len as usize]);
                off_in_v += len as usize;
            }
            seg_index.push(segs.len() as u64);
        }
        Ok(SegmentPool {
            epoch,
            seed: cfg.seed,
            segments_per_vertex: cfg.segments_per_vertex,
            segment_length: cfg.segment_length,
            vertex_count: n as u32,
            seg_index,
            segs,
            data,
        })
    }

    /// The graph epoch the pool was sampled at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Summary counters.
    pub fn info(&self) -> PoolInfo {
        PoolInfo {
            epoch: self.epoch,
            seed: self.seed,
            segments_per_vertex: self.segments_per_vertex,
            segment_length: self.segment_length,
            vertex_count: self.vertex_count,
            segments: self.segs.len() as u64,
            entries: self.data.len() as u64,
            consumed: self.segs.iter().filter(|s| s.consumed).count() as u64,
            invalidated: self
                .segs
                .iter()
                .filter(|s| s.invalid_from != u64::MAX)
                .count() as u64,
        }
    }

    /// Unconsumed segments of `v` still valid at `epoch` — what the
    /// exhaustion tests count down.
    pub fn remaining_at(&self, v: VertexId, epoch: u64) -> usize {
        if epoch < self.epoch || (v as usize) >= self.vertex_count as usize {
            return 0;
        }
        let range = self.seg_index[v as usize] as usize..self.seg_index[v as usize + 1] as usize;
        self.segs[range]
            .iter()
            .filter(|s| !s.consumed && epoch < s.invalid_from)
            .count()
    }

    /// Marks every segment passing through a vertex `batch` touches
    /// (sources *and* destinations of adds, deletions, and reweights — a
    /// safe overapproximation covering undirected mirrors) as stale from
    /// `epoch` on. Requests pinned before `epoch` keep splicing them;
    /// requests at or after it fall back to exact stepping there.
    ///
    /// O(pool entries) per batch — the pool-side analogue of the
    /// engine's per-touched-vertex sampler maintenance, traded simpler
    /// because invalidation is off the walk hot path.
    pub fn invalidate(&mut self, batch: &UpdateBatch, epoch: u64) {
        let mut touched: HashSet<VertexId> = HashSet::new();
        for a in &batch.adds {
            touched.insert(a.src);
            touched.insert(a.dst);
        }
        for d in &batch.dels {
            touched.insert(d.src);
            touched.insert(d.dst);
        }
        for r in &batch.reweights {
            touched.insert(r.src);
            touched.insert(r.dst);
        }
        self.invalidate_vertices(&touched, epoch);
    }

    /// [`invalidate`](SegmentPool::invalidate) by explicit vertex set.
    pub fn invalidate_vertices(&mut self, touched: &HashSet<VertexId>, epoch: u64) {
        if touched.is_empty() {
            return;
        }
        for v in 0..self.vertex_count as usize {
            let start_touched = touched.contains(&(v as VertexId));
            for i in self.seg_index[v] as usize..self.seg_index[v + 1] as usize {
                let seg = self.segs[i];
                if seg.invalid_from <= epoch {
                    continue;
                }
                let body = &self.data[seg.off as usize..seg.off as usize + seg.len as usize];
                if start_touched || body.iter().any(|x| touched.contains(x)) {
                    self.segs[i].invalid_from = epoch;
                }
            }
        }
    }

    /// Serializes the pool (KKPL v1). Consumption and invalidation state
    /// is not persisted: a pool file is a reproducible artifact of its
    /// build, and a loaded pool is fresh.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = io::BufWriter::new(w);
        w.write_all(&POOL_MAGIC)?;
        w.write_all(&POOL_VERSION.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?; // flags, reserved
        w.write_all(&self.epoch.to_le_bytes())?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&self.segments_per_vertex.to_le_bytes())?;
        w.write_all(&self.segment_length.to_le_bytes())?;
        w.write_all(&self.vertex_count.to_le_bytes())?;
        w.write_all(&(self.segs.len() as u64).to_le_bytes())?;
        w.write_all(&(self.data.len() as u64).to_le_bytes())?;
        for &ix in &self.seg_index {
            w.write_all(&ix.to_le_bytes())?;
        }
        for seg in &self.segs {
            w.write_all(&seg.len.to_le_bytes())?;
        }
        for &v in &self.data {
            w.write_all(&v.to_le_bytes())?;
        }
        w.flush()
    }

    /// Deserializes a KKPL pool; the inverse of
    /// [`write_to`](SegmentPool::write_to).
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, unsupported version, or any
    /// structural inconsistency (index not monotone, zero-length or
    /// truncated segments); propagates I/O failures.
    pub fn read_from<R: Read>(r: R) -> io::Result<SegmentPool> {
        let mut r = io::BufReader::new(r);
        let mut head = [0u8; 4];
        r.read_exact(&mut head)?;
        if head != POOL_MAGIC {
            return Err(bad_data("not a segment pool: bad KKPL magic"));
        }
        let version = read_u16(&mut r)?;
        if version != POOL_VERSION {
            return Err(bad_data(format!(
                "pool format version {version} not supported (want {POOL_VERSION})"
            )));
        }
        let _flags = read_u16(&mut r)?;
        let epoch = read_u64(&mut r)?;
        let seed = read_u64(&mut r)?;
        let segments_per_vertex = read_u32(&mut r)?;
        let segment_length = read_u32(&mut r)?;
        let vertex_count = read_u32(&mut r)?;
        let n_segs = read_u64(&mut r)? as usize;
        let n_entries = read_u64(&mut r)? as usize;
        let mut seg_index = Vec::with_capacity(vertex_count as usize + 1);
        for _ in 0..=vertex_count {
            seg_index.push(read_u64(&mut r)?);
        }
        if seg_index.first() != Some(&0)
            || seg_index.last() != Some(&(n_segs as u64))
            || seg_index.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad_data("pool segment index is not a monotone prefix sum"));
        }
        let mut segs = Vec::with_capacity(n_segs);
        let mut off = 0u64;
        for _ in 0..n_segs {
            let len = read_u32(&mut r)?;
            if len == 0 {
                return Err(bad_data("pool holds a zero-length segment"));
            }
            segs.push(SegMeta {
                off,
                len,
                invalid_from: u64::MAX,
                consumed: false,
            });
            off += len as u64;
        }
        if off != n_entries as u64 {
            return Err(bad_data(
                "pool segment lengths disagree with the entry count",
            ));
        }
        let mut data = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let v = read_u32(&mut r)?;
            if v >= vertex_count {
                return Err(bad_data(format!(
                    "pool entry {v} is outside the {vertex_count}-vertex graph"
                )));
            }
            data.push(v);
        }
        Ok(SegmentPool {
            epoch,
            seed,
            segments_per_vertex,
            segment_length,
            vertex_count,
            seg_index,
            segs,
            data,
        })
    }

    /// [`write_to`](SegmentPool::write_to) a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// [`read_from`](SegmentPool::read_from) a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format failures.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<SegmentPool> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

impl SegmentSource for SegmentPool {
    /// Hands out the first unconsumed segment of `v` whose validity
    /// window covers `epoch`, marking it consumed. First-fit over K
    /// slots: deterministic, and requests pinned at older epochs can
    /// still use segments newer requests must skip.
    fn take(&mut self, v: VertexId, epoch: u64) -> Option<&[VertexId]> {
        if epoch < self.epoch || (v as usize) >= self.vertex_count as usize {
            return None;
        }
        let range = self.seg_index[v as usize] as usize..self.seg_index[v as usize + 1] as usize;
        for i in range {
            let seg = &mut self.segs[i];
            if !seg.consumed && epoch < seg.invalid_from {
                seg.consumed = true;
                let (off, len) = (seg.off as usize, seg.len as usize);
                return Some(&self.data[off..off + len]);
            }
        }
        None
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_core::{DynConfig, DynGraph, StitchedDriver};
    use knightking_graph::{gen, GraphBuilder};

    /// The test-local stitchable fixed-length walk.
    struct Stitchy(u32);
    impl WalkerProgram for Stitchy {
        type Data = ();
        type Query = ();
        type Answer = ();
        const DYNAMIC: bool = false;
        const NAME: &'static str = "stitchy";
        const STITCHABLE: bool = true;
        fn init_data(&self, _id: u64, _start: VertexId) {}
        fn should_terminate(&self, w: &mut Walker<()>) -> bool {
            w.step >= self.0
        }
    }

    fn pool_bytes(p: &SegmentPool) -> Vec<u8> {
        let mut out = Vec::new();
        p.write_to(&mut out).unwrap();
        out
    }

    #[test]
    fn build_is_deterministic_and_shaped() {
        let g = gen::uniform_degree(40, 5, gen::GenOptions::seeded(3));
        let cfg = PoolConfig {
            segments_per_vertex: 3,
            segment_length: 7,
            seed: 42,
        };
        let a = SegmentPool::build(&g, &Stitchy(0), cfg).unwrap();
        let b = SegmentPool::build(&g, &Stitchy(0), cfg).unwrap();
        assert_eq!(pool_bytes(&a), pool_bytes(&b));
        let info = a.info();
        assert_eq!(info.vertex_count, 40);
        assert_eq!(info.segments, 3 * 40, "no dead ends in this graph");
        assert_eq!(info.entries, 3 * 40 * 7);
        assert_eq!(info.consumed, 0);
        // A different seed builds a different pool.
        let c = SegmentPool::build(&g, &Stitchy(0), PoolConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(pool_bytes(&a), pool_bytes(&c));
    }

    #[test]
    fn segments_start_where_they_claim_and_follow_edges() {
        let g = gen::uniform_degree(30, 4, gen::GenOptions::seeded(9));
        let mut pool = SegmentPool::build(&g, &Stitchy(0), PoolConfig::default()).unwrap();
        let gr = GraphRef::from(&g);
        for v in 0..30u32 {
            while let Some(seg) = pool.take(v, 0).map(|s| s.to_vec()) {
                let mut at = v;
                for &next in &seg {
                    assert!(
                        gr.has_edge(at, next),
                        "segment uses a non-edge {at}->{next}"
                    );
                    at = next;
                }
            }
        }
    }

    #[test]
    fn dead_ends_produce_no_segments() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        // 2 has no out-edges.
        let g = b.build();
        let mut pool = SegmentPool::build(&g, &Stitchy(0), PoolConfig::default()).unwrap();
        assert_eq!(pool.remaining_at(2, 0), 0);
        assert_eq!(pool.take(2, 0), None);
        assert!(pool.remaining_at(0, 0) > 0);
    }

    #[test]
    fn take_consumes_each_segment_once_and_gates_on_epoch() {
        let g = gen::uniform_degree(10, 3, gen::GenOptions::seeded(1));
        let cfg = PoolConfig {
            segments_per_vertex: 2,
            segment_length: 4,
            seed: 5,
        };
        let mut pool = SegmentPool::build(&g, &Stitchy(0), cfg).unwrap();
        assert_eq!(pool.remaining_at(0, 0), 2);
        assert!(pool.take(0, 0).is_some());
        assert!(pool.take(0, 0).is_some());
        assert_eq!(pool.take(0, 0), None, "K segments, K takes");
        assert_eq!(pool.info().consumed, 2);
        // Out-of-range vertex and pre-pool epochs are dry, not a panic.
        assert_eq!(pool.take(99, 0), None);
        let dyn_pool_epoch = {
            // A pool stamped at epoch 2 refuses epoch-1 requests.
            let d = DynGraph::new(
                gen::uniform_degree(10, 3, gen::GenOptions::seeded(1)),
                DynConfig::default(),
            );
            d.apply(&UpdateBatch::default()).unwrap();
            d.apply(&UpdateBatch::default()).unwrap();
            SegmentPool::build(&d, &Stitchy(0), cfg).unwrap()
        };
        assert_eq!(dyn_pool_epoch.epoch(), 2);
        let mut p = dyn_pool_epoch;
        assert_eq!(p.take(0, 1), None);
        assert!(p.take(0, 2).is_some());
    }

    #[test]
    fn save_load_round_trips_and_loads_fresh() {
        let g = gen::uniform_degree(25, 4, gen::GenOptions::seeded(7));
        let mut pool = SegmentPool::build(&g, &Stitchy(0), PoolConfig::default()).unwrap();
        let bytes = pool_bytes(&pool);
        // Consume and invalidate, then serialize again: state is not
        // persisted, so the bytes are unchanged.
        pool.take(0, 0);
        pool.invalidate_vertices(&HashSet::from([3u32]), 1);
        assert_eq!(pool_bytes(&pool), bytes);
        let loaded = SegmentPool::read_from(&bytes[..]).unwrap();
        assert_eq!(pool_bytes(&loaded), bytes);
        let info = loaded.info();
        assert_eq!(info.consumed, 0);
        assert_eq!(info.invalidated, 0);
        assert_eq!(info.epoch, 0);
        assert_eq!(info.seed, PoolConfig::default().seed);
    }

    #[test]
    fn load_rejects_corrupt_pools() {
        let g = gen::uniform_degree(8, 2, gen::GenOptions::seeded(2));
        let pool = SegmentPool::build(&g, &Stitchy(0), PoolConfig::default()).unwrap();
        let bytes = pool_bytes(&pool);
        assert!(SegmentPool::read_from(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(SegmentPool::read_from(&bad_magic[..]).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(SegmentPool::read_from(&bad_version[..]).is_err());
    }

    #[test]
    fn non_stitchable_programs_cannot_build_pools() {
        struct Plain;
        impl WalkerProgram for Plain {
            type Data = ();
            type Query = ();
            type Answer = ();
            const NAME: &'static str = "plain";
            fn init_data(&self, _id: u64, _start: VertexId) {}
            fn should_terminate(&self, w: &mut Walker<()>) -> bool {
                w.step >= 1
            }
        }
        let g = gen::uniform_degree(4, 2, gen::GenOptions::seeded(1));
        let err = SegmentPool::build(&g, &Plain, PoolConfig::default())
            .err()
            .unwrap();
        assert_eq!(err, StitchError::NotStitchable { program: "plain" });
    }

    #[test]
    fn invalidation_gates_by_epoch_and_spares_untouched_segments() {
        // A two-community graph: vertices 0..5 form a clique, 5..10 form
        // a clique; segments from one side never cross.
        let mut b = GraphBuilder::directed(10);
        for side in [0u32, 5] {
            for u in side..side + 5 {
                for w in side..side + 5 {
                    if u != w {
                        b.add_edge(u, w);
                    }
                }
            }
        }
        let g = b.build();
        let cfg = PoolConfig {
            segments_per_vertex: 2,
            segment_length: 5,
            seed: 11,
        };
        let mut pool = SegmentPool::build(&g, &Stitchy(0), cfg).unwrap();
        pool.invalidate_vertices(&HashSet::from([0u32]), 1);
        // Epoch-0 requests still see everything.
        assert_eq!(pool.remaining_at(0, 0), 2);
        // Epoch-1 requests: side-A segments all pass through the clique
        // (vertex 0 reachable in 5 steps with high probability — but at
        // minimum vertex 0's own segments are dead), side-B untouched.
        assert_eq!(
            pool.remaining_at(0, 1),
            0,
            "segments FROM the touched vertex are stale"
        );
        assert_eq!(
            pool.remaining_at(7, 1),
            2,
            "the other community is untouched"
        );
        assert!(pool.info().invalidated >= 2);
    }

    #[test]
    fn exhaustion_falls_back_to_exact_steps_matching_the_counter() {
        // Satellite: a trap vertex (self-loop only) with a walk far
        // longer than K·L must fall back to exact stepping, produce a
        // valid path, and count exactly the exact steps taken.
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        b.add_edge(1, 1); // trap: 1's only edge is the self-loop
        let g = b.build();
        let cfg = PoolConfig {
            segments_per_vertex: 2,
            segment_length: 3,
            seed: 9,
        };
        let mut pool = SegmentPool::build(&g, &Stitchy(0), cfg).unwrap();
        let walk_len = 40u32; // ≫ K·L = 6
        let driver = StitchedDriver::new(&g, Stitchy(walk_len)).unwrap();
        let result = driver.run(&mut pool, &[0], 0, 77);
        // The path is fully valid: forced 0 -> 1, then the self-loop.
        assert_eq!(result.paths[0].len() as u32, walk_len + 1);
        assert_eq!(result.paths[0][0], 0);
        assert!(result.paths[0][1..].iter().all(|&v| v == 1));
        let m = result.metrics;
        assert_eq!(m.steps, walk_len as u64);
        assert!(
            m.segments_spliced >= 1,
            "the pool served its segments first"
        );
        assert!(m.stitch_pool_dry > 0, "exhaustion engaged");
        let spliced_steps = m.steps - m.stitch_fallback_steps;
        assert!(spliced_steps <= (cfg.segments_per_vertex * cfg.segment_length * 2) as u64);
        // The fallback counter is exactly the exact steps taken: total
        // steps minus what splices contributed.
        assert_eq!(m.stitch_fallback_steps, walk_len as u64 - spliced_steps);
        assert_eq!(
            pool.remaining_at(1, 0),
            0,
            "the trap's pool is fully consumed"
        );
    }

    #[test]
    fn dynamic_invalidation_never_splices_stale_segments() {
        // Satellite: after an update touches v, stitched walks at the
        // new epoch never traverse an edge absent from
        // materialize_at(new_epoch) — i.e. no stale segment through v is
        // ever spliced even though the pool was built at epoch 0.
        let mut b = GraphBuilder::directed(12);
        // A ring 0->1->...->11->0 plus stride-2 chords so segments have
        // branching to exercise.
        for v in 0..12u32 {
            b.add_edge(v, (v + 1) % 12);
            b.add_edge(v, (v + 2) % 12);
        }
        let base = b.build();
        let d = DynGraph::new(base, DynConfig::default());
        // L = 2 keeps segments short enough that vertices far from the
        // touched pair deterministically retain valid segments (every
        // 2-step continuation from 4..=8 avoids vertices 2 and 3).
        let cfg = PoolConfig {
            segments_per_vertex: 3,
            segment_length: 2,
            seed: 13,
        };
        let mut pool = SegmentPool::build(&d, &Stitchy(0), cfg).unwrap();
        // Remove ring edge 2->3: any old segment stepping 2->3 is stale
        // at epoch 1, and invalidation kills every segment touching
        // vertex 2 or 3 (a safe overapproximation).
        let batch = UpdateBatch {
            adds: vec![],
            dels: vec![knightking_dyn::EdgeRef { src: 2, dst: 3 }],
            reweights: vec![],
        };
        d.apply(&batch).unwrap();
        pool.invalidate(&batch, d.epoch());
        let reference = d.materialize_at(d.epoch());
        let gr = GraphRef::from(&reference);
        let driver = StitchedDriver::new(&d, Stitchy(24)).unwrap();
        let starts: Vec<VertexId> = (0..12).collect();
        let result = driver.run(&mut pool, &starts, d.epoch(), 1234);
        for path in &result.paths {
            for pair in path.windows(2) {
                assert!(
                    gr.has_edge(pair[0], pair[1]),
                    "stitched walk used stale edge {}->{} absent at epoch {}",
                    pair[0],
                    pair[1],
                    d.epoch()
                );
            }
        }
        assert!(
            result.metrics.segments_spliced > 0,
            "valid segments still splice"
        );
        assert!(result.metrics.stitch_pool_dry > 0, "stale pools fall back");
    }
}
