//! Property-based tests of the whole engine: structural invariants and
//! distributed equivalence over arbitrary graphs, program shapes, and
//! configurations.

use knightking_core::{
    CsrGraph, EdgeView, GraphRef, RandomWalkEngine, StepEngine, VertexId, WalkConfig, Walker,
    WalkerProgram, WalkerStarts,
};
use knightking_graph::GraphBuilder;
use proptest::prelude::*;

/// First-order program with an arbitrary Pd lookup table keyed by
/// `dst mod k` — enough freedom to hit pre-acceptance, rejection, and
/// full-scan paths.
#[derive(Clone)]
struct TableWalk {
    pd: Vec<f64>,
    len: u32,
}

impl WalkerProgram for TableWalk {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.len
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, _w: &Walker<()>, e: EdgeView, _a: Option<()>) -> f64 {
        self.pd[e.dst as usize % self.pd.len()]
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        self.pd.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-9)
    }
    fn lower_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        self.pd.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    }
}

/// Second-order program: Pd depends on adjacency with the previous
/// vertex, exercising the query machinery.
#[derive(Clone, Copy)]
struct AdjacencyWalk {
    len: u32,
    near: f64,
    far: f64,
}

impl WalkerProgram for AdjacencyWalk {
    type Data = ();
    type Query = VertexId;
    type Answer = bool;
    const SECOND_ORDER: bool = true;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.len
    }
    fn state_query(&self, w: &Walker<()>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        w.prev.filter(|&t| t != e.dst).map(|t| (t, e.dst))
    }
    fn answer_query(&self, g: &GraphRef<'_>, t: VertexId, x: VertexId) -> bool {
        g.has_edge(t, x)
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, w: &Walker<()>, e: EdgeView, a: Option<bool>) -> f64 {
        match w.prev {
            None => 1.0,
            Some(t) if e.dst == t => 1.0,
            _ => {
                if a.expect("queried") {
                    self.near
                } else {
                    self.far
                }
            }
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        self.near.max(self.far).max(1.0)
    }
}

fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    (
        2usize..40,
        prop::collection::vec((0u32..40, 0u32..40), 1..120),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::undirected(n);
            for (s, d) in edges {
                b.add_edge(s % n as u32, d % n as u32);
            }
            b.build()
        })
}

fn check_paths(g: &CsrGraph, paths: &[Vec<VertexId>]) {
    for p in paths {
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "phantom edge ({}, {})", w[0], w[1]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary first-order programs on arbitrary graphs produce valid
    /// paths and complete, under arbitrary engine knob settings.
    #[test]
    fn first_order_structural_invariants(
        g in arbitrary_graph(),
        pd in prop::collection::vec(0.0f64..3.0, 1..6),
        len in 1u32..12,
        nodes in 1usize..5,
        lower in any::<bool>(),
        trials in 1u32..70,
        seed in 0u64..500,
    ) {
        let walk = TableWalk { pd, len };
        let mut cfg = WalkConfig::with_nodes(nodes, seed);
        cfg.use_lower_bound = lower;
        cfg.max_local_trials = trials;
        let n_walkers = 30u64;
        let r = RandomWalkEngine::new(&g, walk, cfg).run(WalkerStarts::Count(n_walkers));
        prop_assert_eq!(r.metrics.finished_walkers, n_walkers);
        prop_assert_eq!(r.paths.len() as u64, n_walkers);
        check_paths(&g, &r.paths);
        for p in &r.paths {
            prop_assert!(p.len() as u32 <= len + 1);
        }
        // Activity series is monotone for fixed-length first-order walks.
        prop_assert!(r.active_per_iteration.windows(2).all(|w| w[0] >= w[1]));
    }

    /// The same, for second-order programs with the query round-trips.
    #[test]
    fn second_order_structural_invariants(
        g in arbitrary_graph(),
        near in 0.1f64..3.0,
        far in 0.0f64..3.0,
        len in 1u32..10,
        nodes in 1usize..5,
        seed in 0u64..500,
    ) {
        let walk = AdjacencyWalk { len, near, far };
        let r = RandomWalkEngine::new(&g, walk, WalkConfig::with_nodes(nodes, seed))
            .run(WalkerStarts::Count(25));
        prop_assert_eq!(r.metrics.finished_walkers, 25);
        check_paths(&g, &r.paths);
    }

    /// Node count never changes trajectories (first- and second-order).
    #[test]
    fn node_count_equivalence(
        g in arbitrary_graph(),
        len in 1u32..10,
        nodes in 2usize..6,
        seed in 0u64..500,
    ) {
        let walk = AdjacencyWalk { len, near: 2.0, far: 0.5 };
        let single = RandomWalkEngine::new(&g, walk, WalkConfig::single_node(seed))
            .run(WalkerStarts::Count(20));
        let multi = RandomWalkEngine::new(&g, walk, WalkConfig::with_nodes(nodes, seed))
            .run(WalkerStarts::Count(20));
        prop_assert_eq!(single.paths, multi.paths);
    }

    /// Tiny trial budgets (forcing constant full-scan fallbacks) never
    /// break completion or path validity — the fallback is exact and
    /// always terminates.
    #[test]
    fn fallback_pressure_is_safe(
        g in arbitrary_graph(),
        seed in 0u64..500,
    ) {
        // Pd mostly zero: most darts miss, trials exhaust immediately.
        let walk = TableWalk { pd: vec![0.0, 0.0, 0.0, 0.05], len: 8 };
        let mut cfg = WalkConfig::single_node(seed);
        cfg.max_local_trials = 1;
        let r = RandomWalkEngine::new(&g, walk, cfg).run(WalkerStarts::Count(20));
        prop_assert_eq!(r.metrics.finished_walkers, 20);
        check_paths(&g, &r.paths);
    }

    /// The stage-interleaved engine (any ring size, any chunk size, with
    /// or without cache-block sorting) is byte-identical to the scalar
    /// engine on arbitrary graphs and programs — paths and metrics both.
    #[test]
    fn step_engines_are_byte_identical(
        g in arbitrary_graph(),
        pd in prop::collection::vec(0.0f64..3.0, 1..6),
        len in 1u32..12,
        ring_idx in 0usize..4,
        chunk in 1usize..160,
        sort in any::<bool>(),
        second_order in any::<bool>(),
        seed in 0u64..500,
    ) {
        let ring = [1usize, 2, 8, 64][ring_idx];
        let mut scalar = WalkConfig::with_nodes(2, seed);
        scalar.chunk_size = chunk;
        scalar.step_engine = StepEngine::Scalar;
        let mut inter = scalar.clone();
        inter.step_engine = StepEngine::Interleaved { ring };
        // Block sorting is honored on first-order programs only; setting
        // it for second-order must be a no-op, which this also covers.
        inter.block_sort = sort;
        let (a, b) = if second_order {
            let walk = AdjacencyWalk { len, near: 2.0, far: 0.5 };
            (
                RandomWalkEngine::new(&g, walk, scalar).run(WalkerStarts::Count(25)),
                RandomWalkEngine::new(&g, walk, inter).run(WalkerStarts::Count(25)),
            )
        } else {
            let walk = TableWalk { pd, len };
            (
                RandomWalkEngine::new(&g, walk.clone(), scalar).run(WalkerStarts::Count(25)),
                RandomWalkEngine::new(&g, walk, inter).run(WalkerStarts::Count(25)),
            )
        };
        prop_assert_eq!(a.paths, b.paths);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.active_per_iteration, b.active_per_iteration);
    }
}
