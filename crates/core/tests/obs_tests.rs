//! Observability-layer tests: profile aggregation across a real
//! multi-node run, determinism with profiling on/off, and the JSON-lines
//! report format. Compiled only with the `obs` feature (the default);
//! `--no-default-features` builds skip the whole file.
#![cfg(feature = "obs")]

use knightking_core::obs::Phase;
use knightking_core::{
    EdgeView, GraphRef, RandomWalkEngine, VertexId, WalkConfig, Walker, WalkerProgram, WalkerStarts,
};
use knightking_graph::gen;

/// First-order dynamic walk: even destinations preferred 4:1.
struct EvenLover;
impl WalkerProgram for EvenLover {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 20
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, _w: &Walker<()>, e: EdgeView, _a: Option<()>) -> f64 {
        if e.dst.is_multiple_of(2) {
            1.0
        } else {
            0.25
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

/// Second-order walk that never revisits the previous vertex (exercises
/// the two-round query protocol).
struct NoReturn;
impl WalkerProgram for NoReturn {
    type Data = ();
    type Query = VertexId;
    type Answer = bool;
    const SECOND_ORDER: bool = true;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 10
    }
    fn state_query(&self, w: &Walker<()>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        match w.prev {
            Some(prev) if e.dst != prev => Some((prev, e.dst)),
            _ => None,
        }
    }
    fn answer_query(&self, g: &GraphRef<'_>, target: VertexId, candidate: VertexId) -> bool {
        g.has_edge(target, candidate)
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, w: &Walker<()>, e: EdgeView, a: Option<bool>) -> f64 {
        match w.prev {
            None => 1.0,
            Some(prev) if e.dst == prev => 0.0,
            _ => {
                if a.expect("non-return candidates carry an answer") {
                    1.0
                } else {
                    0.5
                }
            }
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

/// All `Pd` mass is zero under a nonzero upper bound: every walker
/// exhausts its trials and takes the exact full-scan fallback.
struct ZeroMass;
impl WalkerProgram for ZeroMass {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 5
    }
    fn dynamic_comp(
        &self,
        _g: &GraphRef<'_>,
        _w: &Walker<()>,
        _e: EdgeView,
        _a: Option<()>,
    ) -> f64 {
        0.0
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

fn profiled_cfg(n_nodes: usize) -> WalkConfig {
    let mut cfg = WalkConfig::with_nodes(n_nodes, 11);
    cfg.threads_per_node = 2;
    cfg.profile = true;
    cfg
}

#[test]
fn profile_absent_without_flag() {
    let g = gen::uniform_degree(100, 6, gen::GenOptions::seeded(4));
    let r = RandomWalkEngine::new(&g, EvenLover, WalkConfig::single_node(11))
        .run(WalkerStarts::Count(50));
    assert!(r.profile.is_none());
}

#[test]
fn multi_node_profile_aggregates_consistently() {
    let g = gen::uniform_degree(600, 8, gen::GenOptions::seeded(4));
    let n_walkers = 400u64;
    let r =
        RandomWalkEngine::new(&g, EvenLover, profiled_cfg(3)).run(WalkerStarts::Count(n_walkers));
    assert_eq!(r.metrics.finished_walkers, n_walkers);

    let p = r.profile.as_ref().expect("profile requested");
    assert_eq!(p.nodes.len(), 3);
    assert!(p.wall_nanos > 0);
    let iterations = r.metrics.iterations as usize;
    assert!(iterations > 0);

    for (i, np) in p.nodes.iter().enumerate() {
        assert_eq!(np.node as usize, i, "profiles arrive in node order");
        // Every node runs the same number of BSP iterations.
        assert_eq!(np.timers.rows.len(), iterations);
        // A node's phases run sequentially on its thread, so their sum is
        // bounded by the run's wall clock.
        assert!(
            np.timers.total() <= p.wall_nanos,
            "node {i}: phase sum {} > wall {}",
            np.timers.total(),
            p.wall_nanos
        );
        // Totals are the fold of the per-iteration rows (plus setup
        // phases, which have no rows) — monotone accumulation.
        for phase in Phase::ALL {
            let row_sum: u64 = np.timers.rows.iter().map(|r| r[phase.index()]).sum();
            assert!(
                np.timers.totals[phase.index()] >= row_sum,
                "{}",
                phase.name()
            );
        }
        // One active-walker sample and one move exchange per iteration.
        assert_eq!(np.active_walkers.count(), iterations as u64);
        assert_eq!(np.exchange_bytes.count(), iterations as u64);
        // One superstep event per iteration survives the ring.
        let supersteps = np
            .events
            .iter()
            .filter(|e| e.kind.name() == "superstep")
            .count();
        assert_eq!(supersteps + np.dropped_events as usize, iterations);
        assert!(np
            .events
            .iter()
            .any(|e| e.kind.name() == "light_mode_switch"));
    }

    // Every walker finishes on exactly one node.
    let finished: u64 = p.nodes.iter().map(|n| n.walk_length.count()).sum();
    assert_eq!(finished, n_walkers);
    // A dynamic program records rejection trials.
    assert!(
        p.nodes
            .iter()
            .map(|n| n.trials_per_step.count())
            .sum::<u64>()
            > 0
    );
}

#[test]
fn profiling_does_not_change_walk_results() {
    let g = gen::uniform_degree(300, 6, gen::GenOptions::seeded(9));
    let mut plain = profiled_cfg(2);
    plain.profile = false;
    let r0 = RandomWalkEngine::new(&g, EvenLover, plain).run(WalkerStarts::Count(200));
    let r1 = RandomWalkEngine::new(&g, EvenLover, profiled_cfg(2)).run(WalkerStarts::Count(200));
    assert_eq!(r0.paths, r1.paths);
    assert_eq!(r0.metrics, r1.metrics);
    assert_eq!(r0.comm, r1.comm);
    assert!(r0.profile.is_none() && r1.profile.is_some());
}

#[test]
fn second_order_rounds_are_attributed() {
    let g = gen::uniform_degree(400, 8, gen::GenOptions::seeded(6));
    let r = RandomWalkEngine::new(&g, NoReturn, profiled_cfg(2)).run(WalkerStarts::Count(300));
    let p = r.profile.as_ref().unwrap();
    let iterations = r.metrics.iterations as u64;
    for np in &p.nodes {
        assert!(np.timers.counts[Phase::QueryRound.index()] > 0);
        assert!(np.timers.counts[Phase::AnswerRound.index()] > 0);
        // Three exchanges per second-order iteration: queries, answers,
        // late moves.
        assert_eq!(np.exchange_bytes.count(), 3 * iterations);
    }
}

#[test]
fn full_scan_fallback_is_traced() {
    let g = gen::uniform_degree(50, 4, gen::GenOptions::seeded(2));
    let r = RandomWalkEngine::new(&g, ZeroMass, profiled_cfg(1)).run(WalkerStarts::Count(20));
    assert!(r.metrics.fallback_scans >= 20);
    let p = r.profile.as_ref().unwrap();
    let fallbacks: usize = p.nodes[0]
        .events
        .iter()
        .filter(|e| e.kind.name() == "full_scan_fallback")
        .count();
    assert!(fallbacks >= 20, "got {fallbacks} fallback events");
}

#[test]
fn jsonl_report_is_parseable() {
    let g = gen::uniform_degree(200, 6, gen::GenOptions::seeded(4));
    let r = RandomWalkEngine::new(&g, EvenLover, profiled_cfg(2)).run(WalkerStarts::Count(100));
    let p = r.profile.as_ref().unwrap();

    let mut buf = Vec::new();
    p.write_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].starts_with("{\"type\":\"run\""));
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        let open = line.matches(['{', '[']).count();
        let close = line.matches(['}', ']']).count();
        assert_eq!(open, close, "unbalanced: {line}");
    }
    assert!(lines.iter().any(|l| l.contains("\"type\":\"phase\"")));
    assert!(lines.iter().any(|l| l.contains("\"type\":\"phase_total\"")));
    assert!(lines.iter().any(|l| l.contains("\"kind\":\"superstep\"")));
    for name in [
        "walk_length",
        "trials_per_step",
        "active_walkers",
        "exchange_bytes",
    ] {
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("\"name\":\"{name}\""))),
            "{name} histogram missing"
        );
    }

    let table = p.render_table();
    assert!(table.contains("2 node(s)"));
    assert!(table.contains("exchange"));
}
