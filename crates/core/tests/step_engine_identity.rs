//! Byte-identity sweep for the stage-interleaved step engine.
//!
//! The interleaved engine (and its optional cache-block sort) must be
//! indistinguishable from the scalar engine in every observable output:
//! paths, metrics, and the observability histograms. This suite sweeps
//! ring sizes, chunk sizes, and block sorting across first- and
//! second-order programs on both static CSR and dynamic overlay graphs,
//! comparing each variant against the scalar reference.

use knightking_core::{
    DynConfig, DynGraph, EdgeView, GraphRef, RandomWalkEngine, StepEngine, VertexId, WalkConfig,
    WalkResult, Walker, WalkerProgram, WalkerStarts,
};
use knightking_dyn::{EdgeAdd, EdgeRef, EdgeReweight, UpdateBatch};
use knightking_graph::gen;

/// Ring sizes the issue mandates sweeping, plus the scalar reference.
const RINGS: [usize; 4] = [1, 2, 8, 64];
const CHUNKS: [usize; 3] = [3, 64, 128];

/// Unbiased truncated walk of fixed length.
struct Fixed(u32);
impl WalkerProgram for Fixed {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

/// First-order dynamic walk biased toward even vertices.
struct EvenLover;
impl WalkerProgram for EvenLover {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 12
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, _w: &Walker<()>, e: EdgeView, _a: Option<()>) -> f64 {
        if e.dst.is_multiple_of(2) {
            1.0
        } else {
            0.25
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
    fn lower_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        0.25
    }
}

/// Second-order non-backtracking walk exercising the query machinery.
struct NoReturn {
    len: u32,
}
impl WalkerProgram for NoReturn {
    type Data = ();
    type Query = VertexId;
    type Answer = bool;
    const SECOND_ORDER: bool = true;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.len
    }
    fn state_query(&self, w: &Walker<()>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        match w.prev {
            Some(prev) if e.dst != prev => Some((prev, e.dst)),
            _ => None,
        }
    }
    fn answer_query(&self, g: &GraphRef<'_>, target: VertexId, candidate: VertexId) -> bool {
        g.has_edge(target, candidate)
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, w: &Walker<()>, e: EdgeView, a: Option<bool>) -> f64 {
        match w.prev {
            None => 1.0,
            Some(prev) if e.dst == prev => 0.0,
            _ => {
                if a.expect("non-return candidates carry an answer") {
                    1.0
                } else {
                    0.5
                }
            }
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

/// Every observable output of a run must match the scalar reference.
/// Phase timers are wall-clock and legitimately differ; everything else —
/// paths, metrics, iteration trace, and all four histograms per node —
/// must be byte-identical.
fn assert_identical(reference: &WalkResult, candidate: &WalkResult, label: &str) {
    assert_eq!(reference.paths, candidate.paths, "{label}: paths diverged");
    assert_eq!(
        reference.metrics, candidate.metrics,
        "{label}: metrics diverged"
    );
    assert_eq!(
        reference.active_per_iteration, candidate.active_per_iteration,
        "{label}: per-iteration actives diverged"
    );
    let (rp, cp) = (
        reference.profile.as_ref().expect("reference profile"),
        candidate.profile.as_ref().expect("candidate profile"),
    );
    assert_eq!(rp.nodes.len(), cp.nodes.len(), "{label}: node count");
    for (rn, cn) in rp.nodes.iter().zip(&cp.nodes) {
        for ((name, rh), (_, ch)) in rn.histograms().iter().zip(cn.histograms()) {
            let rb: Vec<_> = rh.nonzero_buckets().collect();
            let cb: Vec<_> = ch.nonzero_buckets().collect();
            assert_eq!(
                rb, cb,
                "{label}: node {} histogram {name} diverged",
                rn.node
            );
        }
    }
}

/// Runs `make_run` under the scalar engine, then sweeps every interleaved
/// variant (ring × chunk × block_sort when allowed) against it.
fn sweep(label: &str, block_sortable: bool, make_run: impl Fn(WalkConfig) -> WalkResult) {
    let seed = 0xD15C0;
    let base_cfg = |chunk: usize| {
        let mut cfg = WalkConfig::with_nodes(2, seed);
        cfg.threads_per_node = 2;
        cfg.chunk_size = chunk;
        cfg.profile = true;
        cfg
    };
    for chunk in CHUNKS {
        let mut scalar_cfg = base_cfg(chunk);
        scalar_cfg.step_engine = StepEngine::Scalar;
        let reference = make_run(scalar_cfg);
        for ring in RINGS {
            let sorts: &[bool] = if block_sortable {
                &[false, true]
            } else {
                &[false]
            };
            for &sort in sorts {
                let mut cfg = base_cfg(chunk);
                cfg.step_engine = StepEngine::Interleaved { ring };
                cfg.block_sort = sort;
                let run = make_run(cfg);
                assert_identical(
                    &reference,
                    &run,
                    &format!("{label} chunk={chunk} ring={ring} sort={sort}"),
                );
            }
        }
    }
}

/// A dynamic graph with a non-trivial overlay (adds, deletes, reweights)
/// so merged-row reads and overlay samplers are on the hot path.
fn overlay_graph(n: usize, seed: u64) -> DynGraph {
    let base = gen::uniform_degree(n, 5, gen::GenOptions::paper_weighted(seed));
    let dg = DynGraph::new(base, DynConfig::default());
    dg.apply(&UpdateBatch {
        adds: vec![
            EdgeAdd {
                src: 0,
                dst: (n as u32) / 2,
                weight: 9.0,
                edge_type: 0,
            },
            EdgeAdd {
                src: (n as u32) / 2,
                dst: 0,
                weight: 9.0,
                edge_type: 0,
            },
            EdgeAdd {
                src: 9,
                dst: 2,
                weight: 6.5,
                edge_type: 0,
            },
        ],
        dels: vec![EdgeRef { src: 5, dst: 1 }],
        reweights: vec![EdgeReweight {
            src: 0,
            dst: (n as u32) / 2,
            weight: 12.0,
        }],
    })
    .expect("overlay batch applies");
    dg
}

#[test]
fn first_order_static_unbiased_identical_across_engines() {
    let g = gen::presets::twitter_like(9, gen::GenOptions::seeded(3));
    sweep("static unbiased", true, |cfg| {
        RandomWalkEngine::new(&g, Fixed(20), cfg).run(WalkerStarts::PerVertex)
    });
}

#[test]
fn first_order_static_biased_identical_across_engines() {
    let g = gen::uniform_degree(300, 6, gen::GenOptions::paper_weighted(5));
    sweep("static biased", true, |cfg| {
        RandomWalkEngine::new(&g, Fixed(16), cfg).run(WalkerStarts::Count(400))
    });
}

#[test]
fn first_order_dynamic_identical_across_engines() {
    let g = gen::uniform_degree(250, 6, gen::GenOptions::seeded(7));
    sweep("first-order dynamic", true, |cfg| {
        RandomWalkEngine::new(&g, EvenLover, cfg).run(WalkerStarts::PerVertex)
    });
}

#[test]
fn second_order_identical_across_engines() {
    let g = gen::uniform_degree(200, 6, gen::GenOptions::seeded(11));
    sweep("second-order", false, |cfg| {
        RandomWalkEngine::new(&g, NoReturn { len: 14 }, cfg).run(WalkerStarts::Count(300))
    });
}

#[test]
fn first_order_dyn_overlay_identical_across_engines() {
    let dg = overlay_graph(240, 13);
    sweep("dyn overlay first-order", true, |cfg| {
        RandomWalkEngine::new(&dg, Fixed(15), cfg).run(WalkerStarts::PerVertex)
    });
}

#[test]
fn second_order_dyn_overlay_identical_across_engines() {
    let dg = overlay_graph(180, 17);
    sweep("dyn overlay second-order", false, |cfg| {
        RandomWalkEngine::new(&dg, NoReturn { len: 10 }, cfg).run(WalkerStarts::Count(200))
    });
}

#[test]
fn scalar_env_override_selects_scalar_engine() {
    // `from_env` reads KK_SCALAR_STEP at construction; the test process
    // does not set it, so the default must be interleaved.
    assert!(matches!(
        StepEngine::from_env(),
        StepEngine::Interleaved { .. }
    ));
    assert_eq!(StepEngine::Scalar.ring(), 0);
}
