//! End-to-end engine tests: path validity, sampling exactness, and
//! distributed equivalence, using purpose-built test programs rather than
//! the shipped algorithms (those live in `knightking-walks`).

use knightking_core::{
    CsrGraph, EdgeView, GraphRef, OutlierSlot, RandomWalkEngine, VertexId, WalkConfig, Walker,
    WalkerProgram, WalkerStarts,
};
use knightking_graph::{gen, GraphBuilder};
use knightking_sampling::stats::assert_distribution_matches;

/// Unbiased truncated walk of fixed length.
struct Fixed(u32);
impl WalkerProgram for Fixed {
    type Data = ();
    type Query = ();
    type Answer = ();
    const DYNAMIC: bool = false;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.0
    }
}

/// First-order dynamic walk: edges to even vertices get Pd = 1, edges to
/// odd vertices Pd = 0.25.
struct EvenLover;
impl WalkerProgram for EvenLover {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 20
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, _w: &Walker<()>, e: EdgeView, _a: Option<()>) -> f64 {
        if e.dst.is_multiple_of(2) {
            1.0
        } else {
            0.25
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
    fn lower_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        0.25
    }
}

/// Second-order walk: never revisit the previous vertex, and prefer
/// candidates adjacent to it (a node2vec-flavoured program exercising the
/// full query machinery).
struct NoReturn {
    len: u32,
}
impl WalkerProgram for NoReturn {
    type Data = ();
    type Query = VertexId; // candidate destination
    type Answer = bool; // is candidate adjacent to prev?
    const SECOND_ORDER: bool = true;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= self.len
    }
    fn state_query(&self, w: &Walker<()>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        match w.prev {
            Some(prev) if e.dst != prev => Some((prev, e.dst)),
            _ => None,
        }
    }
    fn answer_query(&self, g: &GraphRef<'_>, target: VertexId, candidate: VertexId) -> bool {
        g.has_edge(target, candidate)
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, w: &Walker<()>, e: EdgeView, a: Option<bool>) -> f64 {
        match w.prev {
            None => 1.0,
            Some(prev) if e.dst == prev => 0.0,
            _ => {
                if a.expect("non-return candidates carry an answer") {
                    1.0
                } else {
                    0.5
                }
            }
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

fn ring(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::undirected(n);
    for v in 0..n as u32 {
        b.add_edge(v, ((v as usize + 1) % n) as u32);
    }
    b.build()
}

fn check_paths_valid(g: &CsrGraph, paths: &[Vec<VertexId>]) {
    for (w, p) in paths.iter().enumerate() {
        for pair in p.windows(2) {
            assert!(
                g.has_edge(pair[0], pair[1]),
                "walker {w} used nonexistent edge ({}, {})",
                pair[0],
                pair[1]
            );
        }
    }
}

#[test]
fn fixed_length_paths_are_exactly_len_plus_one() {
    let g = gen::uniform_degree(200, 6, gen::GenOptions::seeded(1));
    let r = RandomWalkEngine::new(&g, Fixed(15), WalkConfig::single_node(2))
        .run(WalkerStarts::PerVertex);
    assert_eq!(r.paths.len(), 200);
    assert!(r.paths.iter().all(|p| p.len() == 16));
    check_paths_valid(&g, &r.paths);
    assert_eq!(r.metrics.steps, 200 * 15);
    assert_eq!(r.metrics.finished_walkers, 200);
    // Static walk: no Pd evaluations at all.
    assert_eq!(r.metrics.edges_evaluated, 0);
}

#[test]
fn walkers_on_isolated_vertices_finish_immediately() {
    let mut b = GraphBuilder::undirected(4);
    b.add_edge(0, 1);
    let g = b.build();
    let r = RandomWalkEngine::new(&g, Fixed(5), WalkConfig::single_node(3))
        .run(WalkerStarts::PerVertex);
    assert_eq!(r.paths[2], vec![2]);
    assert_eq!(r.paths[3], vec![3]);
    assert!(r.paths[0].len() > 1);
}

#[test]
fn biased_static_walk_matches_weights() {
    // Star graph: centre 0 with weighted spokes; distribution of first
    // steps must match the weights.
    let mut b = GraphBuilder::undirected(5).with_weights();
    let weights = [1.0f32, 2.0, 3.0, 4.0];
    for (i, &w) in weights.iter().enumerate() {
        b.add_weighted_edge(0, (i + 1) as u32, w);
    }
    let g = b.build();
    let walkers = 40_000u64;
    let r = RandomWalkEngine::new(&g, Fixed(1), WalkConfig::single_node(4))
        .run(WalkerStarts::Explicit(vec![0; walkers as usize]));
    let mut counts = [0u64; 4];
    for p in &r.paths {
        counts[(p[1] - 1) as usize] += 1;
    }
    let total: f32 = weights.iter().sum();
    let expected: Vec<f64> = weights.iter().map(|&w| (w / total) as f64).collect();
    assert_distribution_matches(&counts, &expected, "biased static first step");
}

#[test]
fn first_order_dynamic_distribution_exact() {
    // Star graph, uniform weights: Pd 1.0 on even spokes, 0.25 on odd.
    let mut b = GraphBuilder::undirected(7);
    for i in 1..7u32 {
        b.add_edge(0, i);
    }
    let g = b.build();
    let walkers = 60_000;
    let r = RandomWalkEngine::new(&g, EvenLover, WalkConfig::single_node(5))
        .run(WalkerStarts::Explicit(vec![0; walkers]));
    let mut counts = [0u64; 6];
    for p in &r.paths {
        counts[(p[1] - 1) as usize] += 1;
    }
    // Spokes 1..6: Pd = [0.25, 1, 0.25, 1, 0.25, 1], mass = 3.75.
    let expected: Vec<f64> = (1..7u32)
        .map(|v| if v % 2 == 0 { 1.0 } else { 0.25 } / 3.75)
        .collect();
    assert_distribution_matches(&counts, &expected, "first-order dynamic first step");
    // Lower bound 0.25 ⇒ some darts pre-accept.
    assert!(r.metrics.pre_accepts > 0);
    check_paths_valid(&g, &r.paths);
}

#[test]
fn second_order_no_return_holds() {
    let g = gen::uniform_degree(100, 8, gen::GenOptions::seeded(6));
    let r = RandomWalkEngine::new(&g, NoReturn { len: 30 }, WalkConfig::single_node(7))
        .run(WalkerStarts::PerVertex);
    check_paths_valid(&g, &r.paths);
    for p in &r.paths {
        for w in p.windows(3) {
            assert_ne!(w[0], w[2], "walker returned to previous vertex");
        }
    }
    assert!(r.metrics.queries > 0, "second-order walk must query state");
}

#[test]
fn second_order_distribution_exact_on_known_graph() {
    // Square with a diagonal: 0-1-2-3-0 plus 1-3. Walker goes 0 → 1;
    // candidates from 1: {0 (return, Pd 0), 2, 3}. 2 is NOT adjacent to 0
    // (Pd 0.5); 3 IS adjacent to 0 (Pd 1.0). Expected next-hop
    // distribution from 1: P(2) = 1/3, P(3) = 2/3.
    let mut b = GraphBuilder::undirected(4);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(3, 0);
    b.add_edge(1, 3);
    let g = b.build();
    let walkers = 60_000usize;
    let r = RandomWalkEngine::new(&g, NoReturn { len: 2 }, WalkConfig::single_node(8))
        .run(WalkerStarts::Explicit(vec![0; walkers]));
    let mut counts = [0u64; 2]; // [to 2, to 3]
    let mut first_hop_1 = 0usize;
    for p in &r.paths {
        if p[1] == 1 {
            first_hop_1 += 1;
            match p[2] {
                2 => counts[0] += 1,
                3 => counts[1] += 1,
                other => panic!("unexpected hop to {other}"),
            }
        }
    }
    assert!(first_hop_1 > walkers / 3, "need samples through vertex 1");
    assert_distribution_matches(&counts, &[1.0 / 3.0, 2.0 / 3.0], "second-order step 2");
}

#[test]
fn multi_node_runs_produce_identical_walks() {
    let g = gen::presets::livejournal_like(9, gen::GenOptions::seeded(9));
    let reference = RandomWalkEngine::new(&g, Fixed(25), WalkConfig::single_node(10))
        .run(WalkerStarts::Count(500));
    for nodes in [2, 3, 5, 8] {
        let mut cfg = WalkConfig::with_nodes(nodes, 10);
        cfg.threads_per_node = 1;
        let r = RandomWalkEngine::new(&g, Fixed(25), cfg).run(WalkerStarts::Count(500));
        assert_eq!(
            r.paths, reference.paths,
            "walks differ between 1 and {nodes} nodes"
        );
    }
}

#[test]
fn multi_node_second_order_identical_to_single_node() {
    let g = gen::uniform_degree(120, 6, gen::GenOptions::seeded(11));
    let reference = RandomWalkEngine::new(&g, NoReturn { len: 12 }, WalkConfig::single_node(12))
        .run(WalkerStarts::Count(200));
    for nodes in [2, 4] {
        let r = RandomWalkEngine::new(&g, NoReturn { len: 12 }, WalkConfig::with_nodes(nodes, 12))
            .run(WalkerStarts::Count(200));
        assert_eq!(r.paths, reference.paths, "{nodes}-node walk differs");
    }
}

#[test]
fn thread_count_does_not_change_walks() {
    let g = gen::uniform_degree(100, 5, gen::GenOptions::seeded(13));
    let mut cfg1 = WalkConfig::with_nodes(2, 14);
    cfg1.threads_per_node = 1;
    let mut cfg4 = WalkConfig::with_nodes(2, 14);
    cfg4.threads_per_node = 4;
    cfg4.light_threshold = 0; // force the parallel path even for tiny runs
    let a = RandomWalkEngine::new(&g, Fixed(10), cfg1).run(WalkerStarts::Count(300));
    let b = RandomWalkEngine::new(&g, Fixed(10), cfg4).run(WalkerStarts::Count(300));
    assert_eq!(a.paths, b.paths);
}

#[test]
fn seeds_change_walks() {
    let g = gen::uniform_degree(50, 5, gen::GenOptions::seeded(15));
    let a = RandomWalkEngine::new(&g, Fixed(10), WalkConfig::single_node(1))
        .run(WalkerStarts::Count(50));
    let b = RandomWalkEngine::new(&g, Fixed(10), WalkConfig::single_node(2))
        .run(WalkerStarts::Count(50));
    assert_ne!(a.paths, b.paths);
}

#[test]
fn ring_walk_cannot_leave_the_ring() {
    let g = ring(10);
    let r = RandomWalkEngine::new(&g, Fixed(100), WalkConfig::single_node(16))
        .run(WalkerStarts::PerVertex);
    check_paths_valid(&g, &r.paths);
    for p in &r.paths {
        assert_eq!(p.len(), 101);
    }
}

#[test]
fn zero_walkers_is_a_no_op() {
    let g = ring(5);
    let r = RandomWalkEngine::new(&g, Fixed(10), WalkConfig::single_node(17))
        .run(WalkerStarts::Count(0));
    assert!(r.paths.is_empty());
    assert_eq!(r.metrics.steps, 0);
}

#[test]
fn record_paths_off_skips_paths_but_keeps_metrics() {
    let g = ring(20);
    let mut cfg = WalkConfig::single_node(18);
    cfg.record_paths = false;
    let r = RandomWalkEngine::new(&g, Fixed(10), cfg).run(WalkerStarts::PerVertex);
    assert!(r.paths.is_empty());
    assert_eq!(r.metrics.steps, 200);
}

#[test]
fn active_series_is_monotone_for_fixed_length() {
    let g = gen::uniform_degree(100, 4, gen::GenOptions::seeded(19));
    let r = RandomWalkEngine::new(&g, Fixed(10), WalkConfig::single_node(20))
        .run(WalkerStarts::PerVertex);
    assert!(!r.active_per_iteration.is_empty());
    assert_eq!(*r.active_per_iteration.last().unwrap(), 0);
    assert!(r.active_per_iteration.windows(2).all(|w| w[0] >= w[1]));
}

/// A program whose Pd is zero everywhere after the first step: walkers
/// must terminate via the full-scan fallback, not spin forever.
struct DeadEnd;
impl WalkerProgram for DeadEnd {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 50
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, w: &Walker<()>, _e: EdgeView, _a: Option<()>) -> f64 {
        if w.step == 0 {
            1.0
        } else {
            0.0
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

/// Second-order program whose Pd is zero for every queried candidate
/// after the first step: acceptance is impossible, and only the
/// stuck-rejection fallback can terminate the walk.
struct RemoteDeadEnd;
impl WalkerProgram for RemoteDeadEnd {
    type Data = ();
    type Query = VertexId;
    type Answer = bool;
    const SECOND_ORDER: bool = true;
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 50
    }
    fn state_query(&self, w: &Walker<()>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        w.prev.filter(|&t| t != e.dst).map(|t| (t, e.dst))
    }
    fn answer_query(&self, g: &GraphRef<'_>, t: VertexId, x: VertexId) -> bool {
        g.has_edge(t, x)
    }
    fn dynamic_comp(
        &self,
        _g: &GraphRef<'_>,
        w: &Walker<()>,
        e: EdgeView,
        _a: Option<bool>,
    ) -> f64 {
        match w.prev {
            None => 1.0,
            Some(t) if e.dst == t => 0.0,
            // Regardless of the answer: zero. The walker cannot move.
            _ => 0.0,
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0
    }
}

/// Second-order walk with restart teleports: exercises the combination
/// of the teleport hook with the query protocol.
struct TeleportingNoReturn;
impl WalkerProgram for TeleportingNoReturn {
    type Data = VertexId; // origin
    type Query = VertexId;
    type Answer = bool;
    const SECOND_ORDER: bool = true;
    fn init_data(&self, _id: u64, start: VertexId) -> VertexId {
        start
    }
    fn should_terminate(&self, w: &mut Walker<VertexId>) -> bool {
        w.step >= 24
    }
    fn teleport(&self, _g: &GraphRef<'_>, w: &mut Walker<VertexId>) -> Option<VertexId> {
        if w.rng.chance(0.2) {
            Some(w.data)
        } else {
            None
        }
    }
    fn state_query(&self, w: &Walker<VertexId>, e: EdgeView) -> Option<(VertexId, VertexId)> {
        w.prev.filter(|&t| t != e.dst).map(|t| (t, e.dst))
    }
    fn answer_query(&self, g: &GraphRef<'_>, t: VertexId, x: VertexId) -> bool {
        g.has_edge(t, x)
    }
    fn dynamic_comp(
        &self,
        _g: &GraphRef<'_>,
        w: &Walker<VertexId>,
        e: EdgeView,
        a: Option<bool>,
    ) -> f64 {
        match w.prev {
            None => 1.0,
            Some(t) if e.dst == t => 0.1,
            _ => {
                if a.expect("queried") {
                    1.0
                } else {
                    0.6
                }
            }
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<VertexId>) -> f64 {
        1.0
    }
}

#[test]
fn teleports_compose_with_second_order_queries() {
    let g = gen::uniform_degree(120, 6, gen::GenOptions::seeded(27));
    let single = RandomWalkEngine::new(&g, TeleportingNoReturn, WalkConfig::single_node(28))
        .run(WalkerStarts::Count(200));
    let multi = RandomWalkEngine::new(&g, TeleportingNoReturn, WalkConfig::with_nodes(4, 28))
        .run(WalkerStarts::Count(200));
    assert_eq!(single.paths, multi.paths);
    for p in &single.paths {
        assert_eq!(p.len(), 25);
        for w in p.windows(2) {
            // Every hop is either a real edge or a restart to the origin.
            assert!(g.has_edge(w[0], w[1]) || w[1] == p[0], "hop {:?}", w);
        }
    }
    // Restarts must actually occur at ~20% of steps.
    let restarts: usize = single
        .paths
        .iter()
        .map(|p| p.windows(2).filter(|w| !g.has_edge(w[0], w[1])).count())
        .sum();
    assert!(restarts > 400, "restarts {restarts}");
}

#[test]
fn second_order_zero_mass_terminates_via_stuck_fallback() {
    let g = gen::uniform_degree(60, 6, gen::GenOptions::seeded(25));
    let mut cfg = WalkConfig::with_nodes(3, 26);
    cfg.max_local_trials = 8;
    let r = RandomWalkEngine::new(&g, RemoteDeadEnd, cfg).run(WalkerStarts::PerVertex);
    // Every walker takes its (free) first step, then discovers zero mass
    // through the distributed full scan and terminates.
    assert_eq!(r.metrics.finished_walkers, 60);
    assert!(r.paths.iter().all(|p| p.len() == 2));
    assert!(r.metrics.fallback_scans >= 60);
}

#[test]
fn all_zero_pd_terminates_via_fallback() {
    let g = gen::uniform_degree(50, 6, gen::GenOptions::seeded(21));
    let r = RandomWalkEngine::new(&g, DeadEnd, WalkConfig::single_node(22))
        .run(WalkerStarts::PerVertex);
    // Each walker takes exactly one step, then the full scan finds zero
    // mass and finishes it.
    assert!(r.paths.iter().all(|p| p.len() == 2));
    assert!(r.metrics.fallback_scans >= 50);
}

/// Pd exceeding Q on one declared outlier edge; exactness must survive
/// outlier folding end-to-end.
struct OutlierProg;
impl WalkerProgram for OutlierProg {
    type Data = ();
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) {}
    fn should_terminate(&self, w: &mut Walker<()>) -> bool {
        w.step >= 1
    }
    fn dynamic_comp(&self, _g: &GraphRef<'_>, _w: &Walker<()>, e: EdgeView, _a: Option<()>) -> f64 {
        if e.dst == 1 {
            3.0
        } else {
            1.0
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
        1.0 // bound over NON-outlier edges only
    }
    fn declare_outliers(&self, _g: &GraphRef<'_>, _w: &Walker<()>, out: &mut Vec<OutlierSlot>) {
        out.push(OutlierSlot {
            target: 1,
            width_bound: 1.0,
            height_bound: 3.0,
        });
    }
}

#[test]
fn outlier_folding_exact_end_to_end() {
    // Star with 5 spokes; spoke 1 has Pd 3, others 1 → P(1) = 3/7.
    let mut b = GraphBuilder::undirected(6);
    for i in 1..6u32 {
        b.add_edge(0, i);
    }
    let g = b.build();
    let walkers = 70_000usize;
    let r = RandomWalkEngine::new(&g, OutlierProg, WalkConfig::single_node(23))
        .run(WalkerStarts::Explicit(vec![0; walkers]));
    let mut counts = [0u64; 5];
    for p in &r.paths {
        counts[(p[1] - 1) as usize] += 1;
    }
    let expected = [3.0 / 7.0, 1.0 / 7.0, 1.0 / 7.0, 1.0 / 7.0, 1.0 / 7.0];
    assert_distribution_matches(&counts, &expected, "outlier first step");
    assert!(r.metrics.appendix_hits > 0, "appendix must be exercised");
}

#[test]
fn disabling_outliers_keeps_distribution_but_costs_trials() {
    let mut b = GraphBuilder::undirected(6);
    for i in 1..6u32 {
        b.add_edge(0, i);
    }
    let g = b.build();
    let walkers = 30_000usize;
    let mut cfg = WalkConfig::single_node(24);
    cfg.use_outliers = false;
    // Without folding, Q = 1 is no longer a valid envelope, so raise it:
    // emulate by a program whose upper bound covers the outlier.
    struct Naive;
    impl WalkerProgram for Naive {
        type Data = ();
        type Query = ();
        type Answer = ();
        fn init_data(&self, _id: u64, _start: VertexId) {}
        fn should_terminate(&self, w: &mut Walker<()>) -> bool {
            w.step >= 1
        }
        fn dynamic_comp(
            &self,
            _g: &GraphRef<'_>,
            _w: &Walker<()>,
            e: EdgeView,
            _a: Option<()>,
        ) -> f64 {
            if e.dst == 1 {
                3.0
            } else {
                1.0
            }
        }
        fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<()>) -> f64 {
            3.0
        }
    }
    let r = RandomWalkEngine::new(&g, Naive, cfg).run(WalkerStarts::Explicit(vec![0; walkers]));
    let mut counts = [0u64; 5];
    for p in &r.paths {
        counts[(p[1] - 1) as usize] += 1;
    }
    let expected = [3.0 / 7.0, 1.0 / 7.0, 1.0 / 7.0, 1.0 / 7.0, 1.0 / 7.0];
    assert_distribution_matches(&counts, &expected, "naive envelope first step");
    // Naive envelope: expected trials = Q·ΣPs / mass = 3·5/7 ≈ 2.14.
    assert!(r.metrics.trials_per_step() > 1.8);
}

/// Third-order walk: the walker's custom state carries its second-to-last
/// stop, demonstrating §2.2's "the state of w carries necessary history
/// such as the previous n vertices visited" beyond the built-in `prev`.
///
/// History bookkeeping: `Pe` (should_terminate) runs exactly once per
/// step, before sampling, so it doubles as the per-step shift point for
/// the two-slot history `(two_back, pending)`.
struct ThirdOrder;
impl WalkerProgram for ThirdOrder {
    /// `(vertex two steps back, prev as of the last shift)`.
    type Data = (Option<VertexId>, Option<VertexId>);
    type Query = ();
    type Answer = ();
    fn init_data(&self, _id: u64, _start: VertexId) -> Self::Data {
        (None, None)
    }
    fn should_terminate(&self, w: &mut Walker<Self::Data>) -> bool {
        // Entering step k: prev = v_{k-1}; the pending slot holds
        // v_{k-2} (prev as of step k-1's shift).
        w.data.0 = w.data.1;
        w.data.1 = w.prev;
        w.step >= 30
    }
    fn dynamic_comp(
        &self,
        _g: &GraphRef<'_>,
        w: &Walker<Self::Data>,
        e: EdgeView,
        _a: Option<()>,
    ) -> f64 {
        // Never revisit either of the last two stops.
        if Some(e.dst) == w.prev || Some(e.dst) == w.data.0 {
            0.0
        } else {
            1.0
        }
    }
    fn upper_bound(&self, _g: &GraphRef<'_>, _w: &Walker<Self::Data>) -> f64 {
        1.0
    }
}

#[test]
fn third_order_walks_avoid_last_two_vertices() {
    let g = gen::uniform_degree(150, 8, gen::GenOptions::seeded(29));
    let single = RandomWalkEngine::new(&g, ThirdOrder, WalkConfig::single_node(30))
        .run(WalkerStarts::Count(300));
    let multi = RandomWalkEngine::new(&g, ThirdOrder, WalkConfig::with_nodes(4, 30))
        .run(WalkerStarts::Count(300));
    assert_eq!(single.paths, multi.paths);
    for p in &single.paths {
        for w in p.windows(3) {
            assert_ne!(w[0], w[2], "revisited prev");
        }
        for w in p.windows(4) {
            assert_ne!(w[0], w[3], "revisited two-back vertex {:?}", w);
        }
    }
}

#[test]
fn extreme_partition_skew_and_tiny_graphs() {
    // More nodes than vertices: most nodes own nothing and must still
    // participate in every collective without deadlock or divergence.
    let mut b = GraphBuilder::undirected(3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    let g = b.build();
    let reference = RandomWalkEngine::new(&g, Fixed(40), WalkConfig::single_node(31))
        .run(WalkerStarts::Count(10));
    for nodes in [2, 5, 8] {
        let r = RandomWalkEngine::new(&g, Fixed(40), WalkConfig::with_nodes(nodes, 31))
            .run(WalkerStarts::Count(10));
        assert_eq!(r.paths, reference.paths, "{nodes} nodes");
    }

    // Single vertex with a self loop: the walk spins in place happily.
    let mut b = GraphBuilder::directed(1);
    b.add_edge(0, 0);
    let g = b.build();
    let r = RandomWalkEngine::new(&g, Fixed(7), WalkConfig::with_nodes(3, 32))
        .run(WalkerStarts::Count(2));
    assert!(r.paths.iter().all(|p| p == &vec![0u32; 8]));
}
