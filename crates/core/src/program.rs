//! The KnightKing programming model: user-defined random walk algorithms.
//!
//! [`WalkerProgram`] is the Rust rendering of the paper's API surface
//! (§5.2, Figure 4). The correspondence:
//!
//! | Paper API                 | Trait member                       |
//! |---------------------------|------------------------------------|
//! | `edgeStaticComp`          | [`WalkerProgram::static_comp`]     |
//! | `edgeDynamicComp`         | [`WalkerProgram::dynamic_comp`]    |
//! | `postStateQuery`          | [`WalkerProgram::state_query`]     |
//! | query execution at owner  | [`WalkerProgram::answer_query`]    |
//! | `dynamicCompUpperBound`   | [`WalkerProgram::upper_bound`]     |
//! | `dynamicCompLowerBound`   | [`WalkerProgram::lower_bound`]     |
//! | outlier declaration       | [`WalkerProgram::declare_outliers`]|
//! | termination (`Pe`)        | [`WalkerProgram::should_terminate`]|
//! | walker state init/update  | [`WalkerProgram::init_data`], [`WalkerProgram::on_move`] |
//!
//! The engine consults the two associated consts to pick its execution
//! path: [`WalkerProgram::DYNAMIC`] distinguishes static from dynamic
//! walks (static walks skip rejection sampling entirely, as §7.2 notes),
//! and [`WalkerProgram::SECOND_ORDER`] enables the two-round
//! walker-to-vertex query protocol within each iteration.

use std::io;

use knightking_graph::{EdgeView, VertexId};
use knightking_net::{Wire, WireError};
use knightking_sampling::rejection::OutlierSlot;

use crate::graphref::GraphRef;
use crate::walker::{Walker, WalkerData};

/// A user-defined random walk algorithm.
///
/// Implementations must be cheap to call and thread-safe (`Sync`): the
/// engine invokes these hooks from every node's worker threads.
///
/// # Exactness contract
///
/// Rejection sampling stays *exact* as long as the declared bounds are
/// true bounds:
///
/// * [`upper_bound`] ≥ `Pd(e)` for every non-outlier out-edge `e`,
/// * [`lower_bound`] ≤ `Pd(e)` for every out-edge `e`,
/// * each [`OutlierSlot`]'s `width_bound` ≥ the outlier edge's `Ps` and
///   `height_bound` ≥ its `Pd`.
///
/// Loose bounds cost extra trials; *wrong* bounds skew the distribution.
///
/// [`upper_bound`]: WalkerProgram::upper_bound
/// [`lower_bound`]: WalkerProgram::lower_bound
pub trait WalkerProgram: Sync + Sized {
    /// Algorithm-defined per-walker state.
    ///
    /// The [`Wire`] bound lets walkers migrate between *processes* on the
    /// TCP transport; in-process runs never serialize, but the encoding
    /// must exist so the same program runs on either backend.
    type Data: WalkerData + Wire;
    /// Payload of a walker-to-vertex state query.
    type Query: Copy + Send + Wire + 'static;
    /// Payload of a query response.
    type Answer: Copy + Send + Wire + 'static;

    /// Whether the walk has a non-trivial dynamic component `Pd`.
    ///
    /// When `false` (static walks: DeepWalk, PPR), the engine accepts the
    /// first static candidate directly — no rejection sampling, matching
    /// the paper's "executes its unified sampling workflow, but without
    /// actually performing rejection sampling".
    const DYNAMIC: bool = true;

    /// Whether evaluating `Pd` may require consulting *another* vertex's
    /// state (second-order walks: node2vec). Enables the two-round query
    /// message passing of §5.1.
    const SECOND_ORDER: bool = false;

    /// Human-readable program name, used in CLI and stitched-execution
    /// error messages so they can name the offending algorithm.
    const NAME: &'static str = "walk";

    /// Whether stitched (segment-pool) execution may answer this
    /// program's walks.
    ///
    /// Only programs whose transition law is a fixed function of the
    /// current vertex qualify: `Ps` per edge, no dynamic component, no
    /// teleport, and termination depending only on the step count or the
    /// walker's own RNG. Under those conditions a precomputed segment
    /// starting at `v` is a distribution-faithful sample of the walk
    /// measure from `v`, so splicing segments end-to-start composes
    /// exactly (and truncating one mid-segment is valid by the Markov
    /// property). Programs that consult walker state when choosing edges
    /// — restart origins, meta-path schemes, the previous vertex — must
    /// leave this `false`.
    const STITCHABLE: bool = false;

    /// The static component `Ps(e)` — `edgeStaticComp`.
    ///
    /// Defaults to the edge weight (1 on unweighted graphs). The engine
    /// pre-computes per-vertex alias tables from this during
    /// initialization, so it must not depend on walker state.
    fn static_comp(&self, _graph: &GraphRef<'_>, edge: EdgeView) -> f64 {
        edge.weight as f64
    }

    /// The dynamic component `Pd(e, v, w)` — `edgeDynamicComp`.
    ///
    /// `answer` carries the response to the state query this program
    /// posted for this candidate (always `None` for first-order walks, and
    /// for candidates the program declined to query).
    fn dynamic_comp(
        &self,
        _graph: &GraphRef<'_>,
        _walker: &Walker<Self::Data>,
        _edge: EdgeView,
        _answer: Option<Self::Answer>,
    ) -> f64 {
        1.0
    }

    /// Envelope `Q(v)` — `dynamicCompUpperBound`. Mandatory for dynamic
    /// walks: must bound `Pd` over all non-outlier out-edges of the
    /// walker's residing vertex.
    fn upper_bound(&self, _graph: &GraphRef<'_>, _walker: &Walker<Self::Data>) -> f64 {
        1.0
    }

    /// Optional `L(v)` — `dynamicCompLowerBound`. Darts at or below this
    /// height are pre-accepted without evaluating `Pd` (or sending state
    /// queries). Return 0 to disable.
    fn lower_bound(&self, _graph: &GraphRef<'_>, _walker: &Walker<Self::Data>) -> f64 {
        0.0
    }

    /// Optional outlier declaration (§4.2).
    ///
    /// Push one [`OutlierSlot`] per edge whose `Pd` may exceed `Q(v)`;
    /// the engine folds their excess probability mass into appendix areas
    /// instead of raising the whole envelope. The engine locates each
    /// outlier edge by its `target` vertex via binary search.
    fn declare_outliers(
        &self,
        _graph: &GraphRef<'_>,
        _walker: &Walker<Self::Data>,
        _out: &mut Vec<OutlierSlot>,
    ) {
    }

    /// Decides whether this candidate needs a walker-to-vertex state query
    /// — `postStateQuery`. Returns the vertex to consult and the payload.
    ///
    /// The engine routes the query to the node owning the target vertex,
    /// runs [`answer_query`](WalkerProgram::answer_query) there, and hands
    /// the response to [`dynamic_comp`](WalkerProgram::dynamic_comp) in
    /// the same iteration.
    fn state_query(
        &self,
        _walker: &Walker<Self::Data>,
        _candidate: EdgeView,
    ) -> Option<(VertexId, Self::Query)> {
        None
    }

    /// Executes a state query at the node owning `target`.
    ///
    /// Default panics: programs that never post queries never get here.
    fn answer_query(
        &self,
        _graph: &GraphRef<'_>,
        _target: VertexId,
        _query: Self::Query,
    ) -> Self::Answer {
        unreachable!("program posted no state queries but answer_query was invoked")
    }

    /// Creates the custom state for walker `id` starting at `start`.
    fn init_data(&self, id: u64, start: VertexId) -> Self::Data;

    /// The termination component `Pe`: called before each step; returning
    /// `true` ends the walk. May draw from `walker.rng` (e.g. PPR's
    /// termination coin).
    fn should_terminate(&self, walker: &mut Walker<Self::Data>) -> bool;

    /// Optional teleport: called once per step after the termination
    /// check; returning `Some(v)` relocates the walker to `v` *without*
    /// traversing an edge (counted as a step, recorded in the path).
    ///
    /// This is how restart-style algorithms (random walk with restart,
    /// PageRank's damping jump) are expressed; edge sampling is skipped
    /// for teleport steps. May draw from `walker.rng`.
    fn teleport(
        &self,
        _graph: &GraphRef<'_>,
        _walker: &mut Walker<Self::Data>,
    ) -> Option<VertexId> {
        None
    }

    /// Hook invoked after a walker advances along an accepted edge.
    fn on_move(&self, _graph: &GraphRef<'_>, _walker: &mut Walker<Self::Data>) {}
}

/// In-flight aggregation over walker moves (§5.1: "output can be
/// generated by computation embedded during the random walk process").
///
/// An observer sees every accepted move (edge steps and teleports alike)
/// and folds it into an accumulator — visit counts, hit times, endpoint
/// histograms — without the engine retaining O(total steps) of path
/// memory. Accumulators are chunk-local during execution (no locks on
/// the hot path) and merged hierarchically: chunk → node → run.
///
/// # Examples
///
/// ```
/// use knightking_core::{
///     RandomWalkEngine, VertexId, WalkConfig, WalkObserver, Walker, WalkerProgram,
///     WalkerStarts,
/// };
/// use knightking_graph::gen;
///
/// struct Fixed;
/// impl WalkerProgram for Fixed {
///     type Data = ();
///     type Query = ();
///     type Answer = ();
///     const DYNAMIC: bool = false;
///     fn init_data(&self, _id: u64, _start: VertexId) {}
///     fn should_terminate(&self, w: &mut Walker<()>) -> bool { w.step >= 5 }
/// }
///
/// /// Counts visits per vertex.
/// struct VisitCounts(usize);
/// impl WalkObserver<()> for VisitCounts {
///     type Acc = Vec<u64>;
///     fn make_acc(&self) -> Vec<u64> { vec![0; self.0] }
///     fn on_move(&self, acc: &mut Vec<u64>, w: &Walker<()>) {
///         acc[w.current as usize] += 1;
///     }
///     fn merge(&self, into: &mut Vec<u64>, from: Vec<u64>) {
///         for (a, b) in into.iter_mut().zip(from) { *a += b; }
///     }
/// }
///
/// let g = gen::uniform_degree(50, 4, gen::GenOptions::seeded(1));
/// let mut cfg = WalkConfig::single_node(2);
/// cfg.record_paths = false; // no paths needed: the observer aggregates
/// let (result, visits) = RandomWalkEngine::new(&g, Fixed, cfg)
///     .run_with_observer(WalkerStarts::PerVertex, &VisitCounts(50));
/// assert_eq!(visits.iter().sum::<u64>(), result.metrics.steps);
/// ```
pub trait WalkObserver<D>: Sync {
    /// The accumulator type.
    type Acc: Send;

    /// Creates a fresh (chunk-local) accumulator.
    fn make_acc(&self) -> Self::Acc;

    /// Called after every accepted walker move, with the walker already
    /// advanced (`walker.current` is the new vertex, `walker.prev` the
    /// old one).
    fn on_move(&self, acc: &mut Self::Acc, walker: &Walker<D>);

    /// Folds one accumulator into another.
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);
}

/// The do-nothing observer used by [`RandomWalkEngine::run`].
///
/// [`RandomWalkEngine::run`]: crate::RandomWalkEngine::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl<D> WalkObserver<D> for NoopObserver {
    type Acc = ();
    fn make_acc(&self) {}
    fn on_move(&self, _acc: &mut (), _walker: &Walker<D>) {}
    fn merge(&self, _into: &mut (), _from: ()) {}
}

/// The standard neighbor-membership query of the paper's
/// `postNeighborQuery` utility: "does `target` have an edge to `subject`?".
///
/// Second-order programs like node2vec can use this as their `Query`
/// payload and answer it with [`answer_neighbor_query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborQuery {
    /// The vertex whose adjacency is tested (walker's previous stop `t`).
    /// This is the vertex the query is routed to.
    pub subject: VertexId,
}

impl Wire for NeighborQuery {
    fn wire_size(&self) -> usize {
        self.subject.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.subject.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(NeighborQuery {
            subject: VertexId::decode(input)?,
        })
    }
}

/// Answers a [`NeighborQuery`] at the owner of `target`: O(log d) binary
/// search over the sorted adjacency (§6.1).
pub fn answer_neighbor_query(graph: &GraphRef<'_>, target: VertexId, query: NeighborQuery) -> bool {
    graph.has_edge(target, query.subject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_graph::GraphBuilder;

    struct Trivial;
    impl WalkerProgram for Trivial {
        type Data = ();
        type Query = ();
        type Answer = ();
        fn init_data(&self, _id: u64, _start: VertexId) {}
        fn should_terminate(&self, walker: &mut Walker<()>) -> bool {
            walker.step >= 1
        }
    }

    #[test]
    fn defaults_are_sensible() {
        let mut b = GraphBuilder::directed(2).with_weights();
        b.add_weighted_edge(0, 1, 2.5);
        let csr = b.build();
        let g = GraphRef::from(&csr);
        let p = Trivial;
        let w: Walker<()> = Walker::new(0, 0, 1, ());
        let e = g.edge(0, 0);
        assert_eq!(p.static_comp(&g, e), 2.5);
        let mut w2 = w.clone();
        assert_eq!(p.dynamic_comp(&g, &w2, e, None), 1.0);
        assert_eq!(p.upper_bound(&g, &w2), 1.0);
        assert_eq!(p.lower_bound(&g, &w2), 0.0);
        assert!(p.state_query(&w2, e).is_none());
        let mut outs = Vec::new();
        p.declare_outliers(&g, &w2, &mut outs);
        assert!(outs.is_empty());
        assert!(!p.should_terminate(&mut w2));
        w2.advance(1);
        assert!(p.should_terminate(&mut w2));
    }

    #[test]
    #[should_panic(expected = "no state queries")]
    fn default_answer_query_panics() {
        let csr = GraphBuilder::directed(1).build();
        Trivial.answer_query(&GraphRef::from(&csr), 0, ());
    }

    #[test]
    fn neighbor_query_checks_membership() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(1, 2);
        b.add_edge(1, 3);
        let csr = b.build();
        let g = GraphRef::from(&csr);
        assert!(answer_neighbor_query(&g, 1, NeighborQuery { subject: 2 }));
        assert!(!answer_neighbor_query(&g, 1, NeighborQuery { subject: 0 }));
        assert!(!answer_neighbor_query(&g, 2, NeighborQuery { subject: 1 }));
    }
}
