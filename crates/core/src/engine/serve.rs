//! Open-world ("serve") execution: a resident BSP loop with continuous
//! walker admission.
//!
//! Batch runs ([`RandomWalkEngine::run`]) instantiate every walker up
//! front and iterate until none remain. Serve mode inverts that: the
//! engine loads the graph once and runs supersteps forever, and a
//! [`ServeDriver`] on the leader node injects new tagged walkers between
//! supersteps and collects per-request results as walkers terminate.
//! This is the continuous-batching idea from model inference serving
//! applied to random walks — walkers from many requests share every
//! superstep's compute and exchanges.
//!
//! # Protocol per superstep
//!
//! 1. every node gathers its [`ServeDelta`] (new path fragments + newly
//!    finished walkers) to the leader;
//! 2. the leader feeds the deltas to the driver and broadcasts the
//!    driver's [`Directives`] (admissions, kills, graph updates,
//!    retirement, shutdown) to all nodes;
//! 3. every node applies kills, then the graph update (if any) in
//!    lockstep, then retirement, then instantiates the admitted walkers
//!    it owns — each pinned at the now-current graph epoch;
//! 4. an allreduce agrees on the active-walker count: the loop exits when
//!    a shutdown was directed *and* no walker remains (drain-then-exit);
//! 5. one normal BSP iteration advances every active walker.
//!
//! # Determinism
//!
//! A served walk is byte-identical to a batch run of the same request:
//! walker trajectories depend only on the private RNG stream derived from
//! `(request seed, walker index within the request)`, so neither the
//! superstep at which a request is admitted nor which other requests
//! share its supersteps can perturb its paths. The request-local walker
//! index feeds `init_data` and the RNG stream; the globally unique id
//! (`base_id + index`) only labels path fragments, and the driver shifts
//! it back out before reassembly.

use std::mem;

use knightking_cluster::Scheduler;
use knightking_dyn::UpdateBatch;
use knightking_graph::{Partition, VertexId};
use knightking_net::{from_bytes, to_bytes, Transport, Wire, WireError};

use crate::{
    graphref::GraphRef,
    metrics::WalkMetrics,
    program::{NoopObserver, WalkObserver, WalkerProgram},
    result::PathEntry,
    walker::Walker,
};

use super::{
    first_order, instrument::NodeObs, second_order, Msg, NodeRt, RandomWalkEngine, Slot, SlotState,
};

/// A walker that terminated, reported to the leader so it can complete
/// the request the walker belonged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishedWalk {
    /// The request tag the walker carried ([`Walker::tag`]).
    ///
    /// [`Walker::tag`]: crate::Walker::tag
    pub tag: u64,
    /// The walker's globally unique id.
    pub walker: u64,
    /// Steps taken when the walk ended.
    pub steps: u32,
}

impl Wire for FinishedWalk {
    fn wire_size(&self) -> usize {
        self.tag.wire_size() + self.walker.wire_size() + self.steps.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.tag.encode(out)?;
        self.walker.encode(out)?;
        self.steps.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(FinishedWalk {
            tag: u64::decode(input)?,
            walker: u64::decode(input)?,
            steps: u32::decode(input)?,
        })
    }
}

/// What a span event marks in a traced request's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEventKind {
    /// The node instantiated `walkers` walkers of the request.
    Admit {
        /// Number of start vertices this node owned.
        walkers: u64,
    },
    /// The node advanced `hops` of the request's walkers one superstep.
    Superstep {
        /// Active walkers of the request on this node this superstep.
        hops: u64,
    },
    /// The node's exchange volume for a superstep the request was part
    /// of. Node-level, not per-request: walkers from concurrent requests
    /// share each exchange, so the bytes are attributed to every traced
    /// request active in that superstep.
    Exchange {
        /// Remote bytes this node sent in the superstep's exchanges.
        bytes: u64,
    },
    /// The request's walkers were force-terminated on this node
    /// (deadline kill).
    Kill,
    /// `walkers` walkers of the request finished on this node.
    Complete {
        /// Walkers that terminated this superstep.
        walkers: u64,
    },
}

impl SpanEventKind {
    /// Stable name used in JSONL and Chrome trace-event exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanEventKind::Admit { .. } => "admit",
            SpanEventKind::Superstep { .. } => "superstep",
            SpanEventKind::Exchange { .. } => "exchange",
            SpanEventKind::Kill => "kill",
            SpanEventKind::Complete { .. } => "complete",
        }
    }

    /// The kind's payload value (`walkers`, `hops`, or `bytes`; 0 for
    /// `Kill`), for flat export schemas.
    pub fn value(&self) -> u64 {
        match *self {
            SpanEventKind::Admit { walkers } => walkers,
            SpanEventKind::Superstep { hops } => hops,
            SpanEventKind::Exchange { bytes } => bytes,
            SpanEventKind::Kill => 0,
            SpanEventKind::Complete { walkers } => walkers,
        }
    }
}

impl Wire for SpanEventKind {
    fn wire_size(&self) -> usize {
        match self {
            SpanEventKind::Kill => 1,
            _ => 1 + 8,
        }
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match *self {
            SpanEventKind::Admit { walkers } => {
                out.push(0);
                walkers.encode(out)
            }
            SpanEventKind::Superstep { hops } => {
                out.push(1);
                hops.encode(out)
            }
            SpanEventKind::Exchange { bytes } => {
                out.push(2);
                bytes.encode(out)
            }
            SpanEventKind::Kill => {
                out.push(3);
                Ok(())
            }
            SpanEventKind::Complete { walkers } => {
                out.push(4);
                walkers.encode(out)
            }
        }
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        let tag = u8::decode(input)?;
        Ok(match tag {
            0 => SpanEventKind::Admit {
                walkers: u64::decode(input)?,
            },
            1 => SpanEventKind::Superstep {
                hops: u64::decode(input)?,
            },
            2 => SpanEventKind::Exchange {
                bytes: u64::decode(input)?,
            },
            3 => SpanEventKind::Kill,
            4 => SpanEventKind::Complete {
                walkers: u64::decode(input)?,
            },
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unknown span event kind tag {other}"),
                ))
            }
        })
    }
}

/// One event in a traced request's distributed timeline, recorded
/// node-side at superstep boundaries and gathered to the leader in the
/// next [`ServeDelta`].
///
/// The trace id is the request tag ([`Walker::tag`]), which already rides
/// the walker wire format through exchanges — tracing adds no bytes to
/// the per-walker hot path, only to the once-per-superstep delta.
///
/// [`Walker::tag`]: crate::Walker::tag
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace id: the tag of the request this event belongs to.
    pub trace: u64,
    /// Rank that recorded the event.
    pub node: u32,
    /// Superstep at which the event happened.
    pub superstep: u64,
    /// Microseconds since this rank's service started. Ranks' clocks are
    /// not synchronized; cross-rank skew is bounded by service startup
    /// skew and is fine for timeline visualization.
    pub ts_us: u64,
    /// Event duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// What happened.
    pub kind: SpanEventKind,
}

impl Wire for SpanEvent {
    fn wire_size(&self) -> usize {
        self.trace.wire_size()
            + self.node.wire_size()
            + self.superstep.wire_size()
            + self.ts_us.wire_size()
            + self.dur_us.wire_size()
            + self.kind.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.trace.encode(out)?;
        self.node.encode(out)?;
        self.superstep.encode(out)?;
        self.ts_us.encode(out)?;
        self.dur_us.encode(out)?;
        self.kind.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(SpanEvent {
            trace: u64::decode(input)?,
            node: u32::decode(input)?,
            superstep: u64::decode(input)?,
            ts_us: u64::decode(input)?,
            dur_us: u64::decode(input)?,
            kind: SpanEventKind::decode(input)?,
        })
    }
}

/// One node's per-superstep gauge/counter sample, shipped in every
/// [`ServeDelta`] so the leader always has a live, cluster-wide view.
///
/// All fields except `active` are **cumulative** since the node started
/// (Prometheus-counter style): the leader keeps only the latest sample
/// per node and sums across nodes, so a lost superstep never loses
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveSample {
    /// Active walker slots on this node right now (gauge).
    pub active: u64,
    /// Total walker steps taken.
    pub steps: u64,
    /// Total rejection-sampling trials.
    pub trials: u64,
    /// Total remote exchange bytes sent.
    pub exchange_bytes: u64,
    /// Total sampler versions rebuilt or patched for graph updates.
    pub sampler_rebuilds: u64,
    /// Total sampler maintenance cost in entry-edits (degree per rebuild,
    /// edges touched per radix point-patch) — the live counter behind
    /// `kk_sampler_rebuild_cost_total`.
    pub sampler_rebuild_cost: u64,
    /// Total precomputed segments spliced by stitched execution. Zero on
    /// nodes other than the leader — stitched requests run leader-side.
    pub segments_spliced: u64,
    /// Total stitched-execution pool misses (dry, invalidated, or absent
    /// pools).
    pub stitch_pool_dry: u64,
    /// Total exact steps taken by the stitched fallback path.
    pub stitch_fallback_steps: u64,
    /// Cumulative nanoseconds per engine phase (the `knightking-obs`
    /// phase taxonomy, index order; all zeros when the engine was built
    /// without the `obs` feature). Ten slots since the taxonomy gained
    /// `gather` and `commit` — a wire-format change, so all ranks of a
    /// cluster must run the same build.
    pub phase_ns: [u64; 10],
}

impl Wire for LiveSample {
    fn wire_size(&self) -> usize {
        8 * (9 + self.phase_ns.len())
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.active.encode(out)?;
        self.steps.encode(out)?;
        self.trials.encode(out)?;
        self.exchange_bytes.encode(out)?;
        self.sampler_rebuilds.encode(out)?;
        self.sampler_rebuild_cost.encode(out)?;
        self.segments_spliced.encode(out)?;
        self.stitch_pool_dry.encode(out)?;
        self.stitch_fallback_steps.encode(out)?;
        for ns in &self.phase_ns {
            ns.encode(out)?;
        }
        Ok(())
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        let active = u64::decode(input)?;
        let steps = u64::decode(input)?;
        let trials = u64::decode(input)?;
        let exchange_bytes = u64::decode(input)?;
        let sampler_rebuilds = u64::decode(input)?;
        let sampler_rebuild_cost = u64::decode(input)?;
        let segments_spliced = u64::decode(input)?;
        let stitch_pool_dry = u64::decode(input)?;
        let stitch_fallback_steps = u64::decode(input)?;
        let mut phase_ns = [0u64; 10];
        for ns in &mut phase_ns {
            *ns = u64::decode(input)?;
        }
        Ok(LiveSample {
            active,
            steps,
            trials,
            exchange_bytes,
            sampler_rebuilds,
            sampler_rebuild_cost,
            segments_spliced,
            stitch_pool_dry,
            stitch_fallback_steps,
            phase_ns,
        })
    }
}

/// One node's per-superstep report to the leader: everything that
/// happened since the previous report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeDelta {
    /// Path fragments recorded since the last superstep (includes the
    /// step-0 entries of freshly admitted walkers).
    pub paths: Vec<PathEntry>,
    /// Walkers that terminated since the last superstep.
    pub finished: Vec<FinishedWalk>,
    /// The smallest graph epoch any of this node's live walkers has
    /// pinned; `u64::MAX` when the node has no walkers. The leader folds
    /// the cluster-wide minimum into [`Directives::retire`] so nodes can
    /// drop row and sampler versions no walker can read anymore.
    pub min_pinned: u64,
    /// Span events recorded for traced requests since the last superstep
    /// (empty when nothing is traced).
    pub spans: Vec<SpanEvent>,
    /// This node's live metrics sample.
    pub live: LiveSample,
}

impl Default for ServeDelta {
    fn default() -> Self {
        ServeDelta {
            paths: Vec::new(),
            finished: Vec::new(),
            min_pinned: u64::MAX,
            spans: Vec::new(),
            live: LiveSample::default(),
        }
    }
}

impl Wire for ServeDelta {
    fn wire_size(&self) -> usize {
        self.paths.wire_size()
            + self.finished.wire_size()
            + self.min_pinned.wire_size()
            + self.spans.wire_size()
            + self.live.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.paths.encode(out)?;
        self.finished.encode(out)?;
        self.min_pinned.encode(out)?;
        self.spans.encode(out)?;
        self.live.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(ServeDelta {
            paths: Vec::decode(input)?,
            finished: Vec::decode(input)?,
            min_pinned: u64::decode(input)?,
            spans: Vec::decode(input)?,
            live: LiveSample::decode(input)?,
        })
    }
}

/// One request's walkers, to be instantiated at the next superstep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmitRequest {
    /// Request tag stamped on every admitted walker (must be nonzero and
    /// unique among in-flight requests; 0 is reserved for batch walkers).
    pub tag: u64,
    /// Global id of the request's first walker; walker `i` of the request
    /// gets id `base_id + i`. The driver keeps bases disjoint so path
    /// fragments route unambiguously.
    pub base_id: u64,
    /// Per-request seed: walker `i` draws from the stream `(seed, i)`,
    /// exactly as a batch run with this seed would.
    pub seed: u64,
    /// Start vertices; walker `i` starts at `starts[i]`. Must be within
    /// graph bounds (validate before admitting).
    pub starts: Vec<VertexId>,
    /// Whether this request is traced: every node records span events
    /// for the request's tag until the leader ends the trace
    /// ([`Directives::end_traces`]). Tracing never touches walker RNG
    /// state, so traced and untraced runs are byte-identical.
    pub trace: bool,
}

impl Wire for AdmitRequest {
    fn wire_size(&self) -> usize {
        self.tag.wire_size()
            + self.base_id.wire_size()
            + self.seed.wire_size()
            + self.starts.wire_size()
            + self.trace.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.tag.encode(out)?;
        self.base_id.encode(out)?;
        self.seed.encode(out)?;
        self.starts.encode(out)?;
        self.trace.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(AdmitRequest {
            tag: u64::decode(input)?,
            base_id: u64::decode(input)?,
            seed: u64::decode(input)?,
            starts: Vec::decode(input)?,
            trace: bool::decode(input)?,
        })
    }
}

/// A graph update batch stamped with the epoch it produces, broadcast to
/// every node so all ranks apply it in lockstep at the same superstep
/// boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochUpdate {
    /// The epoch the graph advances to when this batch applies (strictly
    /// greater than the previous epoch; the leader assigns it).
    pub epoch: u64,
    /// The edge mutations.
    pub batch: UpdateBatch,
}

impl Wire for EpochUpdate {
    fn wire_size(&self) -> usize {
        self.epoch.wire_size() + self.batch.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.epoch.encode(out)?;
        self.batch.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(EpochUpdate {
            epoch: u64::decode(input)?,
            batch: UpdateBatch::decode(input)?,
        })
    }
}

/// The leader's verdict for one superstep boundary, broadcast to every
/// node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Directives {
    /// Requests to admit this superstep.
    pub admit: Vec<AdmitRequest>,
    /// Request tags whose walkers must be force-terminated (deadline
    /// expiry). Their remaining path fragments are dropped.
    pub kill: Vec<u64>,
    /// Ask the loop to exit. Draining, not dropping: the loop keeps
    /// iterating until every in-flight walker has finished, then exits.
    pub shutdown: bool,
    /// A graph update to apply at this boundary, *before* this
    /// superstep's admissions — admitted walkers pin the post-update
    /// epoch. Requires the service to be running over a `DynGraph`.
    pub update: Option<EpochUpdate>,
    /// Retirement watermark: when nonzero, nodes drop graph row versions
    /// and sampler overrides superseded at or before this epoch. The
    /// leader derives it from the cluster-wide minimum pinned epoch
    /// ([`ServeDelta::min_pinned`]); 0 means "retire nothing".
    pub retire: u64,
    /// Trace ids whose requests have completed (or been killed): nodes
    /// stop recording spans for these tags. Without this, a node's traced
    /// set would grow for the life of the service.
    pub end_traces: Vec<u64>,
}

impl Wire for Directives {
    fn wire_size(&self) -> usize {
        self.admit.wire_size()
            + self.kill.wire_size()
            + self.shutdown.wire_size()
            + self.update.wire_size()
            + self.retire.wire_size()
            + self.end_traces.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.admit.encode(out)?;
        self.kill.encode(out)?;
        self.shutdown.encode(out)?;
        self.update.encode(out)?;
        self.retire.encode(out)?;
        self.end_traces.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(Directives {
            admit: Vec::decode(input)?,
            kill: Vec::decode(input)?,
            shutdown: bool::decode(input)?,
            update: Option::decode(input)?,
            retire: u64::decode(input)?,
            end_traces: Vec::decode(input)?,
        })
    }
}

/// The leader-side brain of a walk service.
///
/// [`RandomWalkEngine::run_service`] calls `absorb` once per node per
/// superstep with that node's delta, then `poll` once to learn what to
/// do next. Both run on the leader only; non-leader nodes receive the
/// poll result via broadcast.
pub trait ServeDriver {
    /// Absorbs one node's superstep delta (path fragments + completions).
    fn absorb(&mut self, node: usize, delta: ServeDelta);
    /// Decides admissions, kills, and shutdown for the next superstep.
    fn poll(&mut self, superstep: u64) -> Directives;
}

/// A driver that never admits anything and immediately asks to shut
/// down. Useful as the `D` type parameter on non-leader nodes (which
/// pass `None`) and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopDriver;

impl ServeDriver for NoopDriver {
    fn absorb(&mut self, _node: usize, _delta: ServeDelta) {}
    fn poll(&mut self, _superstep: u64) -> Directives {
        Directives {
            shutdown: true,
            ..Directives::default()
        }
    }
}

impl<'g, P: WalkerProgram> RandomWalkEngine<'g, P> {
    /// Runs the engine as a **resident walk service**: the BSP loop stays
    /// up, admitting tagged walkers whenever the leader's `driver` says
    /// so and reporting completions back to it, until the driver directs
    /// a shutdown *and* every in-flight walker has drained.
    ///
    /// Call once per node of the cluster — in-process (`NodeCtx`) or
    /// multi-process (`TcpTransport`), exactly like
    /// [`run_distributed`](RandomWalkEngine::run_distributed). The leader
    /// (rank 0) must pass `Some(driver)`; every other rank passes `None`
    /// and is steered entirely by broadcast directives, so only the
    /// leader needs a request queue.
    ///
    /// Returns this node's accumulated [`WalkMetrics`] over the service's
    /// lifetime.
    ///
    /// # Panics
    ///
    /// Panics if `transport.n_nodes() != config.n_nodes`, if
    /// `config.record_paths` is off (a service that records no paths can
    /// answer no queries), or if the leader passes no driver.
    pub fn run_service<T: Transport<Msg<P>>, D: ServeDriver>(
        &self,
        transport: &mut T,
        mut driver: Option<&mut D>,
    ) -> WalkMetrics {
        let cfg = &self.config;
        assert_eq!(
            transport.n_nodes(),
            cfg.n_nodes,
            "transport has {} nodes but config.n_nodes is {}",
            transport.n_nodes(),
            cfg.n_nodes
        );
        assert!(
            cfg.record_paths,
            "serve mode requires record_paths: responses are the paths"
        );
        let me = transport.node();
        assert!(
            !transport.is_leader() || driver.is_some(),
            "the leader node must supply a ServeDriver"
        );

        let partition = Partition::balanced(self.graph.base_csr(), cfg.n_nodes, 1.0);
        let local_owned;
        let local: GraphRef<'_> = match self.graph {
            GraphRef::Csr(g) if cfg.n_nodes > 1 => {
                local_owned = partition.extract_local(g, me);
                GraphRef::Csr(&local_owned)
            }
            // Dynamic graphs are shared whole (see `run_with_observer`);
            // the partition-ownership discipline separates the ranks.
            other => other,
        };
        let scheduler = Scheduler {
            threads: cfg.resolved_threads(),
            chunk_size: cfg.chunk_size,
            light_threshold: cfg.light_threshold,
        };
        let observer = NoopObserver;
        // Live-mode profile: phase times fold into bounded run totals
        // (no per-iteration rows), so a resident loop can keep it on and
        // ship cumulative counters in every delta.
        let mut prof = NodeObs::new_live(cfg.profile, me);
        // `mut`: superstep boundaries rebuild sampler structures for
        // update-touched vertices; iterations only ever borrow `&rt`.
        let mut rt = NodeRt::build(
            local,
            &self.program,
            &observer,
            &partition,
            cfg,
            me,
            &scheduler,
        );

        let mut slots: Vec<Slot<P>> = Vec::new();
        let mut paths: Vec<PathEntry> = Vec::new();
        let mut finished: Vec<FinishedWalk> = Vec::new();
        let mut metrics = WalkMetrics::default();
        #[allow(clippy::let_unit_value)] // NoopObserver's Acc happens to be ()
        let mut obs_acc = <NoopObserver as WalkObserver<P::Data>>::make_acc(&observer);
        // The epoch newly admitted walkers pin: advances when an update
        // directive applies. Always 0 on static graphs.
        let mut live_epoch: u64 = local.epoch();
        let mut superstep: u64 = 0;
        // Tracing state: tags of requests currently traced on this node
        // (bounded by the leader's sampling), and the span events recorded
        // since the last delta. Timestamps are relative to this rank's
        // service start.
        let service_start = std::time::Instant::now();
        let mut traced: Vec<u64> = Vec::new();
        let mut spans: Vec<SpanEvent> = Vec::new();
        loop {
            // (1) Ship this node's delta to the leader.
            let delta = ServeDelta {
                min_pinned: slots
                    .iter()
                    .map(|s| s.walker.epoch)
                    .min()
                    .unwrap_or(u64::MAX),
                paths: mem::take(&mut paths),
                finished: mem::take(&mut finished),
                spans: mem::take(&mut spans),
                live: LiveSample {
                    active: slots.len() as u64,
                    steps: metrics.steps,
                    trials: metrics.trials,
                    exchange_bytes: prof.exchange_bytes_total(),
                    sampler_rebuilds: metrics.sampler_rebuilds,
                    sampler_rebuild_cost: metrics.sampler_rebuild_cost,
                    segments_spliced: metrics.segments_spliced,
                    stitch_pool_dry: metrics.stitch_pool_dry,
                    stitch_fallback_steps: metrics.stitch_fallback_steps,
                    phase_ns: prof.phase_ns_totals(),
                },
            };
            let delta_bytes = to_bytes(&delta).expect("serve delta exceeds wire limits");
            let gathered = transport.gather_bytes(delta_bytes);

            // (2) Leader: drive; everyone: learn the directives.
            let dir_bytes = match gathered {
                Some(parts) => {
                    let d = driver.as_mut().expect("leader has a driver (asserted)");
                    for (node, part) in parts.into_iter().enumerate() {
                        let delta: ServeDelta = from_bytes(&part).unwrap_or_else(|e| {
                            panic!("corrupt serve delta from rank {node}: {e}")
                        });
                        d.absorb(node, delta);
                    }
                    to_bytes(&d.poll(superstep)).expect("serve directives exceed wire limits")
                }
                None => Vec::new(),
            };
            let dir_bytes = transport.broadcast_bytes(dir_bytes);
            let directives: Directives =
                from_bytes(&dir_bytes).unwrap_or_else(|e| panic!("corrupt serve directives: {e}"));

            // (3) Kills: drop every walker of an expired request. Path
            // fragments already shipped are discarded leader-side.
            if !directives.kill.is_empty() {
                slots.retain(|s| !directives.kill.contains(&s.walker.tag));
                for &tag in &directives.kill {
                    if let Some(i) = traced.iter().position(|&t| t == tag) {
                        traced.swap_remove(i);
                        spans.push(SpanEvent {
                            trace: tag,
                            node: me as u32,
                            superstep,
                            ts_us: service_start.elapsed().as_micros() as u64,
                            dur_us: 0,
                            kind: SpanEventKind::Kill,
                        });
                    }
                }
            }
            if !directives.end_traces.is_empty() {
                traced.retain(|t| !directives.end_traces.contains(t));
            }

            // (4) Graph update: applied on all ranks in lockstep at this
            // boundary, each rank rebuilding only its owned rows and
            // sampler structures. In-flight walkers keep their pinned
            // epochs; everything admitted below pins the new one.
            if let Some(up) = &directives.update {
                let dyn_graph = local.dyn_graph().expect(
                    "update directive received while serving a static CSR graph — \
                     serve a DynGraph to accept live updates",
                );
                let applied = dyn_graph
                    .apply_at(up.epoch, &up.batch, &|v| partition.owner(v) == me)
                    .unwrap_or_else(|e| panic!("invalid update batch at epoch {}: {e}", up.epoch));
                let (rebuilt, cost) = rt.apply_update(up.epoch, &up.batch, &applied.touched);
                metrics.sampler_rebuilds += rebuilt;
                metrics.sampler_rebuild_cost += cost;
                live_epoch = up.epoch;
            }

            // (5) Retirement: drop row and sampler versions no walker can
            // pin anymore (the leader's watermark is the cluster-wide
            // minimum pinned epoch).
            if directives.retire > 0 {
                if let Some(dyn_graph) = local.dyn_graph() {
                    dyn_graph.retire(directives.retire);
                }
                rt.retire_samplers(directives.retire);
            }

            // (6) Admissions: instantiate owned walkers. The *request-local*
            // index seeds the RNG stream and `init_data` — the same values a
            // batch run of this request would use — while the global id
            // (`base_id + i`) labels the path fragments.
            for req in &directives.admit {
                let mut owned = 0u64;
                for (i, &start) in req.starts.iter().enumerate() {
                    if partition.owner(start) != me {
                        continue;
                    }
                    owned += 1;
                    let data = self.program.init_data(i as u64, start);
                    let mut walker = Walker::new(i as u64, start, req.seed, data);
                    walker.id = req.base_id + i as u64;
                    walker.tag = req.tag;
                    walker.epoch = live_epoch;
                    paths.push(PathEntry {
                        walker: walker.id,
                        step: 0,
                        vertex: start,
                    });
                    slots.push(Slot {
                        walker,
                        state: SlotState::fresh(),
                    });
                }
                if req.trace {
                    traced.push(req.tag);
                    spans.push(SpanEvent {
                        trace: req.tag,
                        node: me as u32,
                        superstep,
                        ts_us: service_start.elapsed().as_micros() as u64,
                        dur_us: 0,
                        kind: SpanEventKind::Admit { walkers: owned },
                    });
                }
            }

            // (7) Collective census: exit only when a shutdown has been
            // directed and the last walker has drained.
            let active = transport.allreduce_sum(slots.len() as u64);
            if active == 0 {
                if directives.shutdown {
                    break;
                }
                // Idle service: throttle the control loop rather than
                // spinning through empty supersteps. Uniform across ranks
                // (all saw active == 0), so no rank races ahead.
                std::thread::sleep(std::time::Duration::from_millis(1));
                superstep += 1;
                continue;
            }

            // (8) One ordinary BSP iteration. For traced requests, count
            // their active walkers before the step and their completions
            // after — all outside the per-walker hot path.
            let pre_hops: Vec<(u64, u64)> = traced
                .iter()
                .map(|&t| (t, slots.iter().filter(|s| s.walker.tag == t).count() as u64))
                .collect();
            let xbytes_before = prof.exchange_bytes_total();
            let finished_before = finished.len();
            let iter_start_us = service_start.elapsed().as_micros() as u64;
            metrics.iterations += 1;
            if P::SECOND_ORDER {
                second_order::iteration(
                    &rt,
                    transport,
                    &scheduler,
                    &mut slots,
                    &mut paths,
                    &mut finished,
                    &mut metrics,
                    &mut obs_acc,
                    &mut prof,
                );
            } else {
                first_order::iteration(
                    &rt,
                    transport,
                    &scheduler,
                    &mut slots,
                    &mut paths,
                    &mut finished,
                    &mut metrics,
                    &mut obs_acc,
                    &mut prof,
                );
            }
            prof.end_iteration();
            if !traced.is_empty() {
                let now_us = service_start.elapsed().as_micros() as u64;
                let dur_us = now_us.saturating_sub(iter_start_us);
                let xbytes = prof.exchange_bytes_total() - xbytes_before;
                for &(tag, hops) in &pre_hops {
                    if hops == 0 {
                        continue;
                    }
                    spans.push(SpanEvent {
                        trace: tag,
                        node: me as u32,
                        superstep,
                        ts_us: iter_start_us,
                        dur_us,
                        kind: SpanEventKind::Superstep { hops },
                    });
                    if xbytes > 0 {
                        spans.push(SpanEvent {
                            trace: tag,
                            node: me as u32,
                            superstep,
                            ts_us: iter_start_us,
                            dur_us,
                            kind: SpanEventKind::Exchange { bytes: xbytes },
                        });
                    }
                }
                for &tag in &traced {
                    let done = finished[finished_before..]
                        .iter()
                        .filter(|f| f.tag == tag)
                        .count() as u64;
                    if done > 0 {
                        spans.push(SpanEvent {
                            trace: tag,
                            node: me as u32,
                            superstep,
                            ts_us: now_us,
                            dur_us: 0,
                            kind: SpanEventKind::Complete { walkers: done },
                        });
                    }
                }
            }
            superstep += 1;
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{config::WalkConfig, config::WalkerStarts, result::WalkResult};
    use knightking_cluster::comm::run_cluster_with_metrics;
    use knightking_graph::gen;

    #[test]
    fn wire_round_trips() {
        let dir = Directives {
            admit: vec![AdmitRequest {
                tag: 3,
                base_id: 1000,
                seed: 42,
                starts: vec![0, 5, 9],
                trace: true,
            }],
            kill: vec![7, 8],
            shutdown: true,
            update: Some(EpochUpdate {
                epoch: 4,
                batch: UpdateBatch {
                    adds: vec![knightking_dyn::EdgeAdd {
                        src: 1,
                        dst: 2,
                        weight: 1.5,
                        edge_type: 0,
                    }],
                    dels: vec![knightking_dyn::EdgeRef { src: 0, dst: 5 }],
                    reweights: vec![],
                },
            }),
            retire: 2,
            end_traces: vec![11, 12],
        };
        let bytes = to_bytes(&dir).unwrap();
        assert_eq!(bytes.len(), dir.wire_size());
        let back: Directives = from_bytes(&bytes).unwrap();
        assert_eq!(back, dir);

        let delta = ServeDelta {
            paths: vec![PathEntry {
                walker: 1,
                step: 2,
                vertex: 3,
            }],
            finished: vec![FinishedWalk {
                tag: 3,
                walker: 1,
                steps: 2,
            }],
            min_pinned: 4,
            spans: vec![
                SpanEvent {
                    trace: 3,
                    node: 1,
                    superstep: 9,
                    ts_us: 1000,
                    dur_us: 50,
                    kind: SpanEventKind::Superstep { hops: 5 },
                },
                SpanEvent {
                    trace: 3,
                    node: 1,
                    superstep: 9,
                    ts_us: 1050,
                    dur_us: 0,
                    kind: SpanEventKind::Kill,
                },
            ],
            live: LiveSample {
                active: 7,
                steps: 120,
                trials: 300,
                exchange_bytes: 4096,
                sampler_rebuilds: 11,
                sampler_rebuild_cost: 57,
                segments_spliced: 13,
                stitch_pool_dry: 2,
                stitch_fallback_steps: 6,
                phase_ns: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            },
        };
        let bytes = to_bytes(&delta).unwrap();
        assert_eq!(bytes.len(), delta.wire_size());
        let back: ServeDelta = from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn span_event_kinds_round_trip() {
        let kinds = [
            SpanEventKind::Admit { walkers: 3 },
            SpanEventKind::Superstep { hops: 17 },
            SpanEventKind::Exchange { bytes: u64::MAX },
            SpanEventKind::Kill,
            SpanEventKind::Complete { walkers: 0 },
        ];
        for kind in kinds {
            let ev = SpanEvent {
                trace: 42,
                node: 2,
                superstep: 1,
                ts_us: 123,
                dur_us: 456,
                kind,
            };
            let bytes = to_bytes(&ev).unwrap();
            assert_eq!(bytes.len(), ev.wire_size(), "{kind:?}");
            let back: SpanEvent = from_bytes(&bytes).unwrap();
            assert_eq!(back, ev);
        }
    }

    struct FixedLen(u32);
    impl WalkerProgram for FixedLen {
        type Data = ();
        type Query = ();
        type Answer = ();
        const DYNAMIC: bool = false;
        fn init_data(&self, _id: u64, _start: VertexId) {}
        fn should_terminate(&self, w: &mut Walker<()>) -> bool {
            w.step >= self.0
        }
    }

    /// Admits one request at superstep 0, collects its fragments, and
    /// shuts down once all its walkers have finished.
    struct OneShotDriver {
        request: AdmitRequest,
        admitted: bool,
        paths: Vec<PathEntry>,
        done: u64,
    }

    impl ServeDriver for OneShotDriver {
        fn absorb(&mut self, _node: usize, delta: ServeDelta) {
            self.paths.extend(delta.paths);
            self.done += delta.finished.len() as u64;
        }
        fn poll(&mut self, _superstep: u64) -> Directives {
            let mut dir = Directives::default();
            if !self.admitted {
                self.admitted = true;
                dir.admit.push(self.request.clone());
            }
            dir.shutdown = self.done >= self.request.starts.len() as u64;
            dir
        }
    }

    /// A served request's paths are byte-identical to a batch run with
    /// the request's seed — even though the service itself was built with
    /// a different seed, proving trajectories bind to the request.
    #[test]
    fn served_request_matches_batch_run() {
        let g = gen::uniform_degree(60, 5, gen::GenOptions::seeded(3));
        let starts: Vec<VertexId> = vec![0, 7, 14, 21, 59];

        let batch = RandomWalkEngine::new(&g, FixedLen(12), WalkConfig::single_node(7))
            .run(WalkerStarts::Explicit(starts.clone()));

        let mut serve_cfg = WalkConfig::single_node(999);
        serve_cfg.threads_per_node = 2;
        let engine = RandomWalkEngine::new(&g, FixedLen(12), serve_cfg);
        let request = AdmitRequest {
            tag: 1,
            base_id: 0,
            seed: 7,
            starts: starts.clone(),
            trace: false,
        };
        let n = starts.len() as u64;
        let (outs, _comm) = run_cluster_with_metrics::<Msg<FixedLen>, _, _>(1, |ctx| {
            let mut ctx = ctx;
            let mut driver = OneShotDriver {
                request: request.clone(),
                admitted: false,
                paths: Vec::new(),
                done: 0,
            };
            engine.run_service(&mut ctx, Some(&mut driver));
            driver.paths
        });
        let fragments = outs.into_iter().next().unwrap();
        let served = WalkResult::assemble_paths(n, fragments);
        assert_eq!(served, batch.paths);
    }

    /// Two nodes, driver on the leader only; non-leader is steered by
    /// broadcasts alone.
    #[test]
    fn two_node_service_matches_batch_run() {
        let g = gen::uniform_degree(80, 4, gen::GenOptions::seeded(5));
        let starts: Vec<VertexId> = (0..10).map(|i| i * 7).collect();

        let batch = RandomWalkEngine::new(&g, FixedLen(9), WalkConfig::with_nodes(2, 11))
            .run(WalkerStarts::Explicit(starts.clone()));

        let mut serve_cfg = WalkConfig::with_nodes(2, 1234);
        serve_cfg.threads_per_node = 1;
        let engine = RandomWalkEngine::new(&g, FixedLen(9), serve_cfg);
        let request = AdmitRequest {
            tag: 9,
            base_id: 0,
            seed: 11,
            starts: starts.clone(),
            trace: false,
        };
        let n = starts.len() as u64;
        let (outs, _comm) = run_cluster_with_metrics::<Msg<FixedLen>, _, _>(2, |ctx| {
            let mut ctx = ctx;
            if ctx.node == 0 {
                let mut driver = OneShotDriver {
                    request: request.clone(),
                    admitted: false,
                    paths: Vec::new(),
                    done: 0,
                };
                engine.run_service(&mut ctx, Some(&mut driver));
                Some(driver.paths)
            } else {
                engine.run_service(&mut ctx, None::<&mut OneShotDriver>);
                None
            }
        });
        let fragments = outs.into_iter().flatten().next().unwrap();
        let served = WalkResult::assemble_paths(n, fragments);
        assert_eq!(served, batch.paths);
    }

    /// Killed requests disappear: their walkers stop producing fragments
    /// and the service still drains to a clean exit.
    #[test]
    fn kill_terminates_request_walkers() {
        let g = gen::uniform_degree(40, 4, gen::GenOptions::seeded(2));

        struct KillDriver {
            admitted: bool,
            killed: bool,
            finished: Vec<FinishedWalk>,
        }
        impl ServeDriver for KillDriver {
            fn absorb(&mut self, _node: usize, delta: ServeDelta) {
                self.finished.extend(delta.finished);
            }
            fn poll(&mut self, superstep: u64) -> Directives {
                let mut dir = Directives::default();
                if !self.admitted {
                    self.admitted = true;
                    dir.admit.push(AdmitRequest {
                        tag: 5,
                        base_id: 0,
                        seed: 1,
                        starts: vec![0, 1, 2],
                        trace: false,
                    });
                }
                if superstep >= 3 && !self.killed {
                    self.killed = true;
                    dir.kill.push(5);
                }
                dir.shutdown = self.killed;
                dir
            }
        }

        // Walk length far beyond the kill point: only the kill can end it.
        let engine = RandomWalkEngine::new(&g, FixedLen(1_000_000), WalkConfig::single_node(1));
        let (outs, _comm) = run_cluster_with_metrics::<Msg<FixedLen>, _, _>(1, |ctx| {
            let mut ctx = ctx;
            let mut driver = KillDriver {
                admitted: false,
                killed: false,
                finished: Vec::new(),
            };
            engine.run_service(&mut ctx, Some(&mut driver));
            driver.finished.len()
        });
        // The service exited (we got here) and no walker finished
        // normally — the kill took them all out.
        assert_eq!(outs[0], 0);
    }

    /// Issues one update at superstep 0 alongside an admission, then
    /// shuts down once the walkers drain.
    struct UpdateDriver {
        batch: UpdateBatch,
        issued: bool,
        done: u64,
        want: u64,
    }

    impl ServeDriver for UpdateDriver {
        fn absorb(&mut self, _node: usize, delta: ServeDelta) {
            self.done += delta.finished.len() as u64;
        }
        fn poll(&mut self, _superstep: u64) -> Directives {
            let mut dir = Directives::default();
            if !self.issued {
                self.issued = true;
                dir.admit.push(AdmitRequest {
                    tag: 1,
                    base_id: 0,
                    seed: 3,
                    starts: vec![0, 25],
                    trace: false,
                });
                dir.update = Some(EpochUpdate {
                    epoch: 1,
                    batch: self.batch.clone(),
                });
            }
            dir.shutdown = self.done >= self.want;
            dir
        }
    }

    /// Incremental sampler maintenance: a batch touching k vertices
    /// rebuilds exactly k alias tables across the cluster, not O(V).
    /// Both ranks share one DynGraph instance (idempotent partitioned
    /// apply), each rebuilding only its owned slice of the touched set.
    #[test]
    fn update_rebuilds_exactly_touched_samplers() {
        use knightking_dyn::{DynConfig, DynGraph, EdgeAdd, EdgeRef, EdgeReweight};

        let g = gen::uniform_degree(50, 4, gen::GenOptions::paper_weighted(9));
        let dyn_graph = DynGraph::new(g, DynConfig::default());
        // Touched sources: {1, 7, 40} — the reweight of 1 folds into the
        // same touch as its add.
        let batch = UpdateBatch {
            adds: vec![
                EdgeAdd {
                    src: 1,
                    dst: 2,
                    weight: 3.0,
                    edge_type: 0,
                },
                EdgeAdd {
                    src: 40,
                    dst: 3,
                    weight: 2.0,
                    edge_type: 0,
                },
            ],
            dels: vec![EdgeRef { src: 7, dst: 0 }],
            reweights: vec![EdgeReweight {
                src: 1,
                dst: 2,
                weight: 5.0,
            }],
        };

        let mut cfg = WalkConfig::with_nodes(2, 5);
        cfg.threads_per_node = 1;
        let engine = RandomWalkEngine::new(&dyn_graph, FixedLen(8), cfg);
        let (outs, _comm) = run_cluster_with_metrics::<Msg<FixedLen>, _, _>(2, |ctx| {
            let mut ctx = ctx;
            if ctx.node == 0 {
                let mut driver = UpdateDriver {
                    batch: batch.clone(),
                    issued: false,
                    done: 0,
                    want: 2,
                };
                engine
                    .run_service(&mut ctx, Some(&mut driver))
                    .sampler_rebuilds
            } else {
                engine
                    .run_service(&mut ctx, None::<&mut UpdateDriver>)
                    .sampler_rebuilds
            }
        });
        assert_eq!(outs.iter().sum::<u64>(), 3, "per-rank rebuilds: {outs:?}");
        assert_eq!(dyn_graph.epoch(), 1);
        assert_eq!(dyn_graph.stats().rows_rebuilt, 3);
    }

    /// The O(k)-maintenance claim, counter-verified: a reweight-only
    /// batch touching k edges costs the radix backend exactly k bucket
    /// edits, while the alias backend pays Σ degree of the touched
    /// vertices. Structural edits cost degree on both.
    #[test]
    fn radix_patch_cost_counts_touched_edges_not_degree() {
        use knightking_dyn::{DynConfig, DynGraph, EdgeReweight};

        let g = gen::uniform_degree(50, 4, gen::GenOptions::paper_weighted(9));
        // Reweight one existing edge at each of two vertices: k = 2.
        let batch = UpdateBatch {
            reweights: vec![
                EdgeReweight {
                    src: 1,
                    dst: g.edge(1, 0).dst,
                    weight: 5.0,
                },
                EdgeReweight {
                    src: 40,
                    dst: g.edge(40, 2).dst,
                    weight: 0.25,
                },
            ],
            ..UpdateBatch::default()
        };

        let run = |sampler: crate::SamplerBackend| {
            let dyn_graph = DynGraph::new(g.clone(), DynConfig::default());
            let mut cfg = WalkConfig::single_node(5);
            cfg.threads_per_node = 1;
            cfg.sampler = sampler;
            let engine = RandomWalkEngine::new(&dyn_graph, FixedLen(8), cfg);
            let (outs, _comm) = run_cluster_with_metrics::<Msg<FixedLen>, _, _>(1, |ctx| {
                let mut ctx = ctx;
                let mut driver = UpdateDriver {
                    batch: batch.clone(),
                    issued: false,
                    done: 0,
                    want: 2,
                };
                let m = engine.run_service(&mut ctx, Some(&mut driver));
                (m.sampler_rebuilds, m.sampler_rebuild_cost)
            });
            outs[0]
        };

        let (alias_rebuilds, alias_cost) = run(crate::SamplerBackend::Alias);
        let (radix_rebuilds, radix_cost) = run(crate::SamplerBackend::Radix);
        assert_eq!(alias_rebuilds, 2);
        assert_eq!(radix_rebuilds, 2);
        // Alias: full rebuild of both degree-4 vertices.
        assert_eq!(alias_cost, 8);
        // Radix: one point edit per reweighted live edge instance.
        assert_eq!(radix_cost, 2);
    }
}
