//! Stitched execution: answering long first-order walks by splicing
//! precomputed segments instead of stepping.
//!
//! The MPC literature ("Walking Randomly, Massively, and Efficiently")
//! observes that a long random walk can be assembled from short
//! *independent* segments: for a first-order walk, a precomputed segment
//! starting at vertex `v` is a distribution-faithful sample of the walk
//! measure from `v`, so following one to its end and continuing with a
//! fresh segment from the endpoint composes exactly — provided no
//! segment is ever used twice (reuse would correlate trajectories).
//!
//! [`StitchedDriver`] is the serving half of that idea. It consumes
//! segments from a [`SegmentSource`] (the pool lives in
//! `knightking-stitch`; the trait keeps the dependency arrow pointing at
//! this crate) and **falls back to exact stepping** whenever a vertex's
//! pool runs dry, so results degrade toward the exact walk, never toward
//! garbage. The fallback samples the same static distribution the batch
//! engine would — an O(degree) CDF scan over `Ps` at the walker's pinned
//! epoch, which stays correct under dynamic updates with zero sampler
//! maintenance (dry vertices are the rare path by construction).
//!
//! Only programs that declare [`WalkerProgram::STITCHABLE`] may run
//! here; second-order programs get a typed [`StitchError`] naming them
//! at construction, before any pool or graph work happens.

use std::time::Instant;

use knightking_graph::VertexId;
use knightking_sampling::CdfTable;

use crate::graphref::GraphRef;
use crate::metrics::WalkMetrics;
use crate::program::WalkerProgram;
use crate::result::WalkResult;
use crate::walker::Walker;

/// A supply of precomputed, single-use walk segments.
///
/// `take` hands out a segment *starting at `v`* that is valid at `epoch`
/// (built at or before it, not invalidated by any update at or before
/// it), marking it consumed. A segment is the sequence of vertices
/// *after* `v` — splicing appends it verbatim. Returning `None` means
/// the pool is dry at `v` and the caller must step exactly.
///
/// Implementations must never return an empty segment: a zero-length
/// splice makes no progress and would loop the driver forever.
pub trait SegmentSource {
    /// Takes one unconsumed segment from `v` valid at `epoch`.
    fn take(&mut self, v: VertexId, epoch: u64) -> Option<&[VertexId]>;
}

/// Why a program cannot run under stitched execution. Produced at
/// construction/validation time — never mid-walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// The program is second-order: its transition law reads the
    /// previous vertex, which independent per-vertex segments cannot
    /// preserve across a splice boundary.
    SecondOrder {
        /// The program's [`WalkerProgram::NAME`].
        program: &'static str,
    },
    /// The program's transitions consult walker state (restart origin,
    /// meta-path scheme, dynamic component), so precomputed segments
    /// would not be distribution-faithful for it.
    NotStitchable {
        /// The program's [`WalkerProgram::NAME`].
        program: &'static str,
    },
}

impl std::fmt::Display for StitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StitchError::SecondOrder { program } => write!(
                f,
                "program '{program}' is second-order: its transitions depend on the \
                 previous vertex, which segment splicing cannot preserve; run it \
                 without --stitch"
            ),
            StitchError::NotStitchable { program } => write!(
                f,
                "program '{program}' consults walker state when choosing edges, so \
                 precomputed segments are not distribution-faithful for it; run it \
                 without --stitch"
            ),
        }
    }
}

impl std::error::Error for StitchError {}

/// Checks `P` against the stitchability contract without needing a graph
/// or a pool — what the CLI calls at argument-parse time.
///
/// # Errors
///
/// [`StitchError::SecondOrder`] for second-order programs (the sharper
/// diagnosis), [`StitchError::NotStitchable`] otherwise.
pub fn stitch_support<P: WalkerProgram>() -> Result<(), StitchError> {
    if P::SECOND_ORDER {
        Err(StitchError::SecondOrder { program: P::NAME })
    } else if !P::STITCHABLE {
        Err(StitchError::NotStitchable { program: P::NAME })
    } else {
        Ok(())
    }
}

/// The stitched execution engine: one walker at a time, splicing pool
/// segments and stepping exactly where the pool is dry.
///
/// Deliberately sequential and single-node: a stitched query's work is
/// O(fallback steps + splices), small by construction, and sequential
/// consumption is what makes runs deterministic — the same pool state,
/// epoch, and request seed always consume the same segments in the same
/// order and draw the same fallback samples.
pub struct StitchedDriver<'g, P: WalkerProgram> {
    graph: GraphRef<'g>,
    program: P,
}

impl<'g, P: WalkerProgram> StitchedDriver<'g, P> {
    /// Creates a driver, validating the program's stitchability.
    ///
    /// # Errors
    ///
    /// Propagates [`stitch_support`]'s verdict.
    pub fn new(graph: impl Into<GraphRef<'g>>, program: P) -> Result<Self, StitchError> {
        stitch_support::<P>()?;
        Ok(StitchedDriver {
            graph: graph.into(),
            program,
        })
    }

    /// The graph this driver walks.
    pub fn graph(&self) -> GraphRef<'g> {
        self.graph
    }

    /// Runs one walker from each of `starts`, reading the graph at
    /// `epoch` and consuming segments valid there. Paths are always
    /// recorded (a stitched query exists to return them). Walker `i`'s
    /// RNG stream derives from `(seed, i)` exactly as in the batch
    /// engine; it drives termination coins and fallback sampling, while
    /// spliced steps consume no request randomness at all.
    pub fn run(
        &self,
        pool: &mut dyn SegmentSource,
        starts: &[VertexId],
        epoch: u64,
        seed: u64,
    ) -> WalkResult {
        let t0 = Instant::now();
        let g = self.graph.at(epoch);
        let mut metrics = WalkMetrics::default();
        let mut paths = Vec::with_capacity(starts.len());
        let mut cdf_scratch: Vec<f64> = Vec::new();
        for (i, &start) in starts.iter().enumerate() {
            let id = i as u64;
            let mut walker = Walker::new(id, start, seed, self.program.init_data(id, start));
            walker.epoch = epoch;
            let mut path = vec![start];
            'walk: while !self.program.should_terminate(&mut walker) {
                if let Some(seg) = pool.take(walker.current, epoch) {
                    metrics.segments_spliced += 1;
                    debug_assert!(
                        !seg.is_empty(),
                        "segment sources must not hand out empty segments"
                    );
                    for &dst in seg {
                        walker.advance(dst);
                        self.program.on_move(&g, &mut walker);
                        path.push(dst);
                        metrics.steps += 1;
                        // Termination can land mid-segment; dropping the
                        // tail is a prefix of a faithful sample, itself
                        // faithful by the Markov property. The segment
                        // stays consumed either way.
                        if self.program.should_terminate(&mut walker) {
                            break 'walk;
                        }
                    }
                } else {
                    metrics.stitch_pool_dry += 1;
                    match self.exact_step(g, &mut walker, &mut cdf_scratch) {
                        Some(dst) => {
                            path.push(dst);
                            metrics.steps += 1;
                            metrics.stitch_fallback_steps += 1;
                        }
                        // Dead end (or zero static mass): the walk
                        // finishes here, as it would in the batch engine.
                        None => break 'walk,
                    }
                }
            }
            metrics.finished_walkers += 1;
            paths.push(path);
        }
        WalkResult {
            paths,
            active_per_iteration: Vec::new(),
            metrics,
            comm: Default::default(),
            elapsed: t0.elapsed(),
            #[cfg(feature = "obs")]
            profile: None,
        }
    }

    /// One exact step: samples an out-edge of the walker's vertex from
    /// the static distribution `Ps` at the pinned epoch, advances, and
    /// returns the destination; `None` finishes the walk (no out-edges
    /// or zero static mass, matching the batch engine's behavior).
    fn exact_step(
        &self,
        g: GraphRef<'_>,
        walker: &mut Walker<P::Data>,
        cdf: &mut Vec<f64>,
    ) -> Option<VertexId> {
        let v = walker.current;
        let deg = g.degree(v);
        if deg == 0 {
            return None;
        }
        cdf.clear();
        let mut run = 0.0f64;
        for i in 0..deg {
            run += self.program.static_comp(&g, g.edge(v, i)).max(0.0);
            cdf.push(run);
        }
        if run <= 0.0 {
            return None;
        }
        let idx = CdfTable::sample_prepared(cdf, &mut walker.rng);
        let dst = g.edge(v, idx).dst;
        walker.advance(dst);
        self.program.on_move(&g, walker);
        Some(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_graph::GraphBuilder;

    /// A fixed-length unbiased first-order walk that opts into stitching.
    struct Stitchy(u32);
    impl WalkerProgram for Stitchy {
        type Data = ();
        type Query = ();
        type Answer = ();
        const DYNAMIC: bool = false;
        const NAME: &'static str = "stitchy";
        const STITCHABLE: bool = true;
        fn init_data(&self, _id: u64, _start: VertexId) {}
        fn should_terminate(&self, w: &mut Walker<()>) -> bool {
            w.step >= self.0
        }
    }

    /// A second-order stand-in.
    struct TwoHop;
    impl WalkerProgram for TwoHop {
        type Data = ();
        type Query = ();
        type Answer = ();
        const SECOND_ORDER: bool = true;
        const NAME: &'static str = "twohop";
        fn init_data(&self, _id: u64, _start: VertexId) {}
        fn should_terminate(&self, w: &mut Walker<()>) -> bool {
            w.step >= 2
        }
    }

    /// A canned source: per-vertex queue of owned segments, the taken one
    /// kept alive in a side buffer so `take` can return a borrow.
    struct Queue {
        per_vertex: Vec<Vec<Vec<VertexId>>>,
        held: Vec<VertexId>,
    }
    impl Queue {
        fn new(per_vertex: Vec<Vec<Vec<VertexId>>>) -> Self {
            Queue {
                per_vertex,
                held: Vec::new(),
            }
        }
    }
    impl SegmentSource for Queue {
        fn take(&mut self, v: VertexId, _epoch: u64) -> Option<&[VertexId]> {
            let slot = &mut self.per_vertex[v as usize];
            if slot.is_empty() {
                return None;
            }
            self.held = slot.remove(0);
            Some(&self.held)
        }
    }

    fn ring(n: u32) -> knightking_graph::CsrGraph {
        let mut b = GraphBuilder::directed(n as usize);
        for v in 0..n {
            b.add_edge(v, (v + 1) % n);
        }
        b.build()
    }

    #[test]
    fn second_order_programs_are_rejected_by_name() {
        let g = ring(4);
        let err = StitchedDriver::new(&g, TwoHop).err().unwrap();
        assert_eq!(err, StitchError::SecondOrder { program: "twohop" });
        assert!(err.to_string().contains("second-order"));
        assert!(err.to_string().contains("twohop"));
    }

    #[test]
    fn non_stitchable_programs_are_rejected_by_name() {
        struct Plain;
        impl WalkerProgram for Plain {
            type Data = ();
            type Query = ();
            type Answer = ();
            const NAME: &'static str = "plain";
            fn init_data(&self, _id: u64, _start: VertexId) {}
            fn should_terminate(&self, w: &mut Walker<()>) -> bool {
                w.step >= 1
            }
        }
        let g = ring(3);
        let err = StitchedDriver::new(&g, Plain).err().unwrap();
        assert_eq!(err, StitchError::NotStitchable { program: "plain" });
        assert!(err.to_string().contains("plain"));
    }

    #[test]
    fn splices_segments_and_counts_them() {
        let g = ring(4);
        let driver = StitchedDriver::new(&g, Stitchy(4)).unwrap();
        // Vertex v holds one segment [v+1, v+2] on the ring.
        let segs = (0..4u32)
            .map(|v| vec![vec![(v + 1) % 4, (v + 2) % 4]])
            .collect();
        let mut pool = Queue::new(segs);
        let result = driver.run(&mut pool, &[0], 0, 7);
        assert_eq!(result.paths, vec![vec![0, 1, 2, 3, 0]]);
        assert_eq!(result.metrics.segments_spliced, 2);
        assert_eq!(result.metrics.steps, 4);
        assert_eq!(result.metrics.stitch_pool_dry, 0);
        assert_eq!(result.metrics.stitch_fallback_steps, 0);
        assert_eq!(result.metrics.finished_walkers, 1);
    }

    #[test]
    fn termination_mid_segment_truncates_the_splice() {
        let g = ring(4);
        let driver = StitchedDriver::new(&g, Stitchy(1)).unwrap();
        let segs = (0..4u32)
            .map(|v| vec![vec![(v + 1) % 4, (v + 2) % 4]])
            .collect();
        let mut pool = Queue::new(segs);
        let result = driver.run(&mut pool, &[0], 0, 7);
        assert_eq!(result.paths, vec![vec![0, 1]]);
        assert_eq!(result.metrics.steps, 1);
        assert_eq!(result.metrics.segments_spliced, 1);
    }

    #[test]
    fn dry_pool_falls_back_to_exact_stepping() {
        let g = ring(4);
        let driver = StitchedDriver::new(&g, Stitchy(6)).unwrap();
        // Empty pool everywhere: every step is an exact fallback. On a
        // ring the walk is forced, so the path is still fully valid.
        let mut pool = Queue::new(vec![Vec::new(); 4]);
        let result = driver.run(&mut pool, &[0], 0, 7);
        assert_eq!(result.paths, vec![vec![0, 1, 2, 3, 0, 1, 2]]);
        assert_eq!(result.metrics.segments_spliced, 0);
        assert_eq!(result.metrics.stitch_pool_dry, 6);
        assert_eq!(result.metrics.stitch_fallback_steps, 6);
        assert_eq!(result.metrics.steps, 6);
    }

    #[test]
    fn dead_end_finishes_the_walk_without_a_fallback_step() {
        // 0 -> 1, and 1 has no out-edges.
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        let g = b.build();
        let driver = StitchedDriver::new(&g, Stitchy(10)).unwrap();
        let mut pool = Queue::new(vec![Vec::new(); 2]);
        let result = driver.run(&mut pool, &[0], 0, 3);
        assert_eq!(result.paths, vec![vec![0, 1]]);
        assert_eq!(
            result.metrics.stitch_pool_dry, 2,
            "dry at 0, then dry at the dead end"
        );
        assert_eq!(
            result.metrics.stitch_fallback_steps, 1,
            "the dead end took no step"
        );
    }

    #[test]
    fn weighted_fallback_samples_the_static_distribution() {
        // 0 -> 1 has weight 0, 0 -> 2 weight 5: the fallback must never
        // pick the zero-weight edge.
        let mut b = GraphBuilder::directed(3).with_weights();
        b.add_weighted_edge(0, 1, 0.0);
        b.add_weighted_edge(0, 2, 5.0);
        let g = b.build();
        let driver = StitchedDriver::new(&g, Stitchy(1)).unwrap();
        for seed in 0..64 {
            let mut pool = Queue::new(vec![Vec::new(); 3]);
            let result = driver.run(&mut pool, &[0], 0, seed);
            assert_eq!(result.paths[0], vec![0, 2], "seed {seed}");
        }
    }

    #[test]
    fn same_seed_and_pool_state_is_deterministic() {
        let g = ring(5);
        let driver = StitchedDriver::new(&g, Stitchy(8)).unwrap();
        let segs: Vec<Vec<Vec<VertexId>>> = (0..5u32)
            .map(|v| vec![vec![(v + 1) % 5, (v + 2) % 5]])
            .collect();
        let a = driver.run(&mut Queue::new(segs.clone()), &[0, 2, 4], 0, 99);
        let b = driver.run(&mut Queue::new(segs), &[0, 2, 4], 0, 99);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.metrics, b.metrics);
    }
}
