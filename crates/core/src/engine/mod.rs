//! The KnightKing execution engine.
//!
//! One [`RandomWalkEngine`] run executes a [`WalkerProgram`] over a graph
//! on a simulated cluster (§5.1, §6):
//!
//! 1. The vertex set is 1-D partitioned across nodes, balancing
//!    `|V_i| + |E_i]` (§6.1).
//! 2. Each node builds alias tables for its owned vertices when the
//!    static component is non-uniform (§3), and instantiates the walkers
//!    whose start vertices it owns.
//! 3. BSP iterations run until no walker remains active. Static and
//!    first-order walks resolve each step locally in one exchange
//!    (`first_order` module); second-order walks add the two-round
//!    walker-to-vertex query protocol (`second_order` module).
//!
//! Rejection sampling (with lower-bound pre-acceptance and outlier
//! folding) happens in the per-step helpers in this module; when
//! `max_local_trials` darts all miss, the engine falls back to an *exact*
//! full scan, which both preserves exactness under adversarially-bad
//! bounds and detects the "no eligible edge" termination condition (§2.2).

mod first_order;
mod instrument;
mod second_order;
mod serve;
mod stitched;

pub use serve::{
    AdmitRequest, Directives, EpochUpdate, FinishedWalk, LiveSample, NoopDriver, ServeDelta,
    ServeDriver, SpanEvent, SpanEventKind,
};
pub use stitched::{stitch_support, SegmentSource, StitchError, StitchedDriver};

use std::collections::HashMap;
use std::time::Instant;

use knightking_cluster::{comm::run_cluster_with_metrics, Scheduler};
use knightking_graph::{CsrGraph, EdgeView, Partition, VertexId};
use knightking_net::{Transport, Wire, WireError};
use knightking_sampling::{
    rejection::{Envelope, OutlierSlot},
    AliasTable, CdfTable, DeterministicRng, RadixTable,
};

use knightking_dyn::UpdateBatch;

use crate::{
    config::{SamplerBackend, WalkConfig, WalkerStarts},
    graphref::GraphRef,
    metrics::WalkMetrics,
    program::{NoopObserver, WalkObserver, WalkerProgram},
    result::{PathEntry, WalkResult},
    walker::Walker,
};

use instrument::{ChunkCtx, ChunkObs, NodeObs, Phase};

/// Window of outstanding state queries per walker during a full-scan
/// fallback, bounding per-iteration message burst at hub vertices.
const FULL_SCAN_WINDOW: usize = 4096;

/// Messages exchanged between nodes.
///
/// Public because [`RandomWalkEngine::run_distributed`] is generic over
/// `Transport<Msg<P>>`; user code never constructs these.
pub enum Msg<P: WalkerProgram> {
    /// A walker migrating to the node owning its new residing vertex.
    Move(Walker<P::Data>),
    /// A walker-to-vertex state query (§5.1 step 2).
    Query {
        /// Node to route the answer back to.
        from: u32,
        /// Slot index of the asking walker on `from`.
        slot: u32,
        /// Caller-defined tag (edge index) echoed in the answer.
        tag: u32,
        /// Vertex whose owner executes the query.
        target: VertexId,
        /// The asking walker's pinned graph epoch: the owner answers
        /// against the same snapshot the walker samples (0 on static
        /// runs).
        epoch: u64,
        /// Program-defined payload.
        payload: P::Query,
    },
    /// A query response (§5.1 step 3).
    Answer {
        /// Slot index of the asking walker on the receiving node.
        slot: u32,
        /// Echoed tag.
        tag: u32,
        /// Program-defined result.
        payload: P::Answer,
    },
}

/// One tag byte plus the active variant's fields — no padding, no unused
/// variants. The same function prices messages for the in-process byte
/// statistics and frames them on the TCP transport, which is what makes
/// the two backends' byte histograms agree.
impl<P: WalkerProgram> Wire for Msg<P> {
    fn wire_size(&self) -> usize {
        1 + match self {
            Msg::Move(walker) => walker.wire_size(),
            Msg::Query {
                from,
                slot,
                tag,
                target,
                epoch,
                payload,
            } => {
                from.wire_size()
                    + slot.wire_size()
                    + tag.wire_size()
                    + target.wire_size()
                    + epoch.wire_size()
                    + payload.wire_size()
            }
            Msg::Answer { slot, tag, payload } => {
                slot.wire_size() + tag.wire_size() + payload.wire_size()
            }
        }
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            Msg::Move(walker) => {
                out.push(0);
                walker.encode(out)
            }
            Msg::Query {
                from,
                slot,
                tag,
                target,
                epoch,
                payload,
            } => {
                out.push(1);
                from.encode(out)?;
                slot.encode(out)?;
                tag.encode(out)?;
                target.encode(out)?;
                epoch.encode(out)?;
                payload.encode(out)
            }
            Msg::Answer { slot, tag, payload } => {
                out.push(2);
                slot.encode(out)?;
                tag.encode(out)?;
                payload.encode(out)
            }
        }
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        match u8::decode(input)? {
            0 => Ok(Msg::Move(Walker::decode(input)?)),
            1 => Ok(Msg::Query {
                from: u32::decode(input)?,
                slot: u32::decode(input)?,
                tag: u32::decode(input)?,
                target: VertexId::decode(input)?,
                epoch: u64::decode(input)?,
                payload: P::Query::decode(input)?,
            }),
            2 => Ok(Msg::Answer {
                slot: u32::decode(input)?,
                tag: u32::decode(input)?,
                payload: P::Answer::decode(input)?,
            }),
            b => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("wire: invalid Msg tag {b}"),
            )),
        }
    }
}

/// Walker bookkeeping within a node.
///
/// Step-progress flags (`fresh`, `stuck`) live inside the states that
/// need them rather than alongside every walker: `Departed` and
/// `Finished` slots — retained through the exchange until the iteration's
/// `retain` pass — carry no dead flag bytes, and a state transition can
/// never leave a stale flag behind.
pub(crate) struct Slot<P: WalkerProgram> {
    pub(crate) walker: Walker<P::Data>,
    pub(crate) state: SlotState<P>,
}

/// Per-walker execution state.
pub(crate) enum SlotState<P: WalkerProgram> {
    /// Ready to throw darts.
    Active {
        /// Whether the walker is about to *start* a step (the termination
        /// component `Pe` is evaluated once per step, not once per trial).
        fresh: bool,
        /// Consecutive remote-answer rejections for the current step.
        /// Second-order walks reject across iterations; once this exceeds
        /// the trial budget the engine switches to the exact full scan,
        /// which guarantees liveness even when all queried `Pd` are zero.
        stuck: u32,
    },
    /// One dart thrown; awaiting the state query answer for its candidate.
    Awaiting {
        edge: u32,
        y: f64,
        answer: Option<P::Answer>,
        /// Rejection count carried across the query round (see
        /// [`SlotState::Active`]).
        stuck: u32,
    },
    /// Exact full-scan fallback in progress (rare; see module docs).
    FullScan(Box<FullScanState<P::Answer>>),
    /// Walker moved to another node this iteration.
    Departed,
    /// Walk complete.
    Finished,
}

impl<P: WalkerProgram> SlotState<P> {
    /// A freshly (re)started walker: about to begin a step, no rejections.
    #[inline]
    pub(crate) fn fresh() -> Self {
        SlotState::Active {
            fresh: true,
            stuck: 0,
        }
    }
}

/// State of an in-progress exact full scan over a walker's out-edges.
pub(crate) struct FullScanState<A> {
    /// `Ps·Pd` per edge; `NaN` = not yet known.
    pub(crate) products: Vec<f64>,
    /// Answers received this iteration, to fold in at phase B.
    pub(crate) received: Vec<(u32, A)>,
    /// Edges whose product is still unknown.
    pub(crate) unfilled: usize,
    /// Next edge index not yet queried.
    pub(crate) next_unqueried: usize,
}

/// Per-chunk accumulator used by both execution paths.
pub(crate) struct ChunkAcc<P: WalkerProgram, O: WalkObserver<P::Data>> {
    pub(crate) outbox: Vec<Vec<Msg<P>>>,
    pub(crate) paths: Vec<PathEntry>,
    /// Walkers that terminated this iteration, tagged with the request
    /// they belong to. Batch runs discard these; serve mode ships them to
    /// the leader so it can complete requests.
    pub(crate) finished: Vec<FinishedWalk>,
    pub(crate) metrics: WalkMetrics,
    /// Observer accumulator (chunk-local; merged at iteration end).
    pub(crate) obs_acc: O::Acc,
    /// Chunk-local instrumentation (thread-owned, merged in chunk order).
    pub(crate) obs: ChunkObs,
    /// Scratch envelope reused across steps to avoid per-step allocation.
    pub(crate) env: Envelope,
    /// Scratch buffer for full-scan CDF sampling.
    pub(crate) cdf_scratch: Vec<f64>,
    /// Stage pool reused across this accumulator's chunks (interleaved
    /// engine only; stays empty under the scalar engine).
    pub(crate) pool: StagePool,
}

impl<P: WalkerProgram, O: WalkObserver<P::Data>> ChunkAcc<P, O> {
    fn new(n_nodes: usize, obs: &O, obs_ctx: ChunkCtx) -> Self {
        ChunkAcc {
            outbox: (0..n_nodes).map(|_| Vec::new()).collect(),
            paths: Vec::new(),
            finished: Vec::new(),
            metrics: WalkMetrics::default(),
            obs_acc: obs.make_acc(),
            obs: ChunkObs::new(obs_ctx),
            env: Envelope::simple(1.0, 1.0),
            cdf_scratch: Vec::new(),
            pool: StagePool::default(),
        }
    }
}

/// Visitation-order scratch for the interleaved engine's optional
/// cache-block sort, reused across a thread's chunks. Stays empty in the
/// default (unsorted) pipeline, which walks the slot slice directly.
#[derive(Default)]
pub(crate) struct StagePool {
    order: Vec<u32>,
}

/// Cache-block granularity of the optional gather-stage sort: vertices
/// whose CSR offsets share a `2^BLOCK_SHIFT`-id block are visited
/// together. Coarse on purpose — the sort only needs to cluster walkers
/// enough that a block's rows stay resident across its visits.
const BLOCK_SHIFT: u32 = 10;

/// Drives one chunk of walkers through the stage-interleaved pipeline.
///
/// The loop runs `step` — the exact scalar per-slot logic — on walker
/// `i` while issuing software prefetches for walkers `i + ring/2` and
/// `i + ring`:
///
/// * distance `ring`: the CSR offsets entry (row bounds) and the
///   first-level sampler entry (`Option<AliasTable>` / `max_ps` cell);
/// * distance `ring/2`: the row *payload* (edge targets + weights) and
///   the alias table's `prob`/`alias` arrays — these reads of row bounds
///   and the alias pointer hit lines the distance-`ring` stage already
///   requested.
///
/// Lookahead reads the un-stepped slots directly (their `current`/`epoch`
/// are stable until their own `step` runs, and the slot line is warmed
/// for the step that follows). With `sort_blocks`, a gather stage first
/// builds a visitation order clustered by current-vertex cache block
/// (stable within a block), timed into `Phase::Gather` as thread-summed
/// CPU nanoseconds.
///
/// Byte-identity with the scalar engine holds by construction: prefetches
/// are architectural no-ops, the early reads touch only immutable data,
/// every kept slot runs `step` exactly once, and each walker's RNG
/// stream is private to it — so trajectories, metrics, and
/// instrumentation are unchanged in every bit. Prefetching a *dead*
/// slot's vertex (possibly foreign) is likewise harmless: local CSR
/// slices span the full vertex range and the hint wrappers never fault.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chunk_interleaved<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slice: &mut [Slot<P>],
    base: usize,
    acc: &mut ChunkAcc<P, O>,
    ring: usize,
    sort_blocks: bool,
    keep: impl Fn(&Slot<P>) -> bool,
    mut step: impl FnMut(&mut Slot<P>, u32, &mut ChunkAcc<P, O>),
) {
    let d1 = ring.max(1);
    let d2 = (d1 / 2).max(1);
    let stage1 = |slot: &Slot<P>| {
        let v = slot.walker.current;
        rt.graph.prefetch_row_bounds(v);
        rt.prefetch_sampler(v);
    };
    let stage2 = |slot: &Slot<P>| {
        let (v, epoch) = (slot.walker.current, slot.walker.epoch);
        rt.graph.at(epoch).prefetch_row_payload(v);
        rt.prefetch_sampler_deep(v, epoch);
    };

    if !sort_blocks {
        // Fast path: visit in slice order, no gather, no indirection.
        let n = slice.len();
        for slot in slice.iter().take(d1.min(n)) {
            stage1(slot);
        }
        for slot in slice.iter().take(d2.min(n)) {
            stage2(slot);
        }
        for i in 0..n {
            if i + d1 < n {
                stage1(&slice[i + d1]);
            }
            if i + d2 < n {
                stage2(&slice[i + d2]);
            }
            if keep(&slice[i]) {
                step(&mut slice[i], (base + i) as u32, acc);
            }
        }
        return;
    }

    // Sorted path: gather a block-clustered visitation order first.
    let gather_begin = Instant::now();
    let mut pool = std::mem::take(&mut acc.pool);
    pool.order.clear();
    pool.order
        .extend((0..slice.len() as u32).filter(|&i| keep(&slice[i as usize])));
    // Stable: within a block, chunk order is preserved.
    pool.order
        .sort_by_key(|&i| slice[i as usize].walker.current >> BLOCK_SHIFT);
    acc.obs
        .record_gather_ns(gather_begin.elapsed().as_nanos() as u64);

    let n = pool.order.len();
    for k in 0..d1.min(n) {
        stage1(&slice[pool.order[k] as usize]);
    }
    for k in 0..d2.min(n) {
        stage2(&slice[pool.order[k] as usize]);
    }
    for i in 0..n {
        if i + d1 < n {
            stage1(&slice[pool.order[i + d1] as usize]);
        }
        if i + d2 < n {
            stage2(&slice[pool.order[i + d2] as usize]);
        }
        let j = pool.order[i] as usize;
        step(&mut slice[j], (base + j) as u32, acc);
    }
    acc.pool = pool;
}

/// One vertex's rebuilt static sampling structures, stamped at the epoch
/// of the update that invalidated them. Only the field matching the
/// run's backend and mode is populated: `alias` for decoupled-biased
/// alias runs, `max_ps` for alias mixed mode, `radix` for the radix
/// backend (which serves both decoupled candidates and the mixed-mode
/// max bound via [`RadixTable::max_slab`]).
pub(crate) struct SamplerEntry {
    pub(crate) alias: Option<AliasTable>,
    pub(crate) radix: Option<RadixTable>,
    pub(crate) max_ps: f64,
}

/// Per-node runtime shared by the execution paths. Immutable during an
/// iteration; dynamic runs mutate the sampler overrides between
/// supersteps via [`NodeRt::apply_update`] (exclusive access — the serve
/// loop holds `&mut`).
pub(crate) struct NodeRt<'a, P: WalkerProgram, O: WalkObserver<P::Data>> {
    /// This node's graph view. Static runs: the local CSR slice (owned
    /// vertices' out-edges only). Dynamic runs: the shared/full dynamic
    /// graph pinned at the build epoch; per-walker access re-pins via
    /// [`GraphRef::at`].
    pub(crate) graph: GraphRef<'a>,
    pub(crate) program: &'a P,
    pub(crate) observer: &'a O,
    pub(crate) partition: &'a Partition,
    pub(crate) cfg: &'a WalkConfig,
    pub(crate) me: usize,
    /// First vertex owned by this node.
    pub(crate) base: VertexId,
    /// Alias tables for owned vertices (`None` for degree-0 vertices);
    /// empty when the static component is uniform or the radix backend is
    /// selected. Built at [`NodeRt::graph`]'s epoch; superseded per
    /// vertex by `overrides`.
    pub(crate) alias: Vec<Option<AliasTable>>,
    /// Radix tables for owned vertices when `cfg.sampler` is
    /// [`SamplerBackend::Radix`] and the graph is weighted (`None` for
    /// degree-0 / zero-mass vertices). Serves biased candidate draws in
    /// decoupled mode and the `max_ps`-equivalent envelope bound in mixed
    /// mode; superseded per vertex by `overrides`.
    pub(crate) radix: Vec<Option<RadixTable>>,
    /// Per-owned-vertex maximum `Ps`, used only in alias-backend mixed
    /// mode (Figure 8); the radix backend reads
    /// [`RadixTable::max_slab`] instead.
    pub(crate) max_ps: Vec<f64>,
    /// Epoch-versioned sampler rebuilds, keyed by local vertex index —
    /// only the vertices graph updates touched ever get an entry, which
    /// is what makes maintenance incremental. Versions are epoch-sorted;
    /// a walker pinned at epoch `e` uses the latest version ≤ `e`,
    /// falling back to the build-time `alias`/`max_ps` tables.
    pub(crate) overrides: HashMap<u32, Vec<(u64, SamplerEntry)>>,
    /// Whether candidates are drawn from per-vertex sampler tables
    /// (biased static component, decoupled mode).
    pub(crate) biased: bool,
    /// Whether the radix backend is active (epoch-pinned config: chosen
    /// once at build, constant for the run).
    pub(crate) radix_on: bool,
}

/// What one local sampling attempt decided.
pub(crate) enum StepOutcome {
    /// Walk over (termination, dead end, or zero probability mass).
    Finished,
    /// Edge accepted; move to this vertex.
    Moved(VertexId),
    /// (Second-order only) a state query was posted for this candidate.
    Posted { edge: u32, y: f64 },
    /// (Second-order only) rejection trials exhausted; switch to full
    /// scan.
    NeedFullScan,
}

impl<'a, P: WalkerProgram, O: WalkObserver<P::Data>> NodeRt<'a, P, O> {
    /// Builds the per-node runtime, including alias tables for owned
    /// vertices (parallel over the scheduler).
    fn build(
        graph: GraphRef<'a>,
        program: &'a P,
        observer: &'a O,
        partition: &'a Partition,
        cfg: &'a WalkConfig,
        me: usize,
        scheduler: &Scheduler,
    ) -> Self {
        let range = partition.range(me);
        let base = range.start;
        let n_local = (range.end - range.start) as usize;
        let biased = cfg.decoupled_static && graph.is_weighted();
        let radix_on = cfg.sampler == SamplerBackend::Radix && graph.is_weighted();

        let alias = if biased && !radix_on {
            let mut locals: Vec<VertexId> = (range.start..range.end).collect();
            let tables = scheduler.run_chunks(
                &mut locals,
                Vec::new,
                |_base, slice, acc: &mut Vec<Option<AliasTable>>| {
                    for &v in slice.iter() {
                        let deg = graph.degree(v);
                        if deg == 0 {
                            acc.push(None);
                        } else {
                            let mut weights: Vec<f64> = Vec::with_capacity(deg);
                            graph
                                .for_each_edge(v, |e| weights.push(program.static_comp(&graph, e)));
                            acc.push(AliasTable::new(&weights).ok());
                        }
                    }
                },
            );
            tables.into_iter().flatten().collect()
        } else {
            Vec::new()
        };

        let radix = if radix_on {
            let mut locals: Vec<VertexId> = (range.start..range.end).collect();
            let tables = scheduler.run_chunks(
                &mut locals,
                Vec::new,
                |_base, slice, acc: &mut Vec<Option<RadixTable>>| {
                    for &v in slice.iter() {
                        let deg = graph.degree(v);
                        if deg == 0 {
                            acc.push(None);
                        } else {
                            let mut weights: Vec<f64> = Vec::with_capacity(deg);
                            graph
                                .for_each_edge(v, |e| weights.push(program.static_comp(&graph, e)));
                            acc.push(RadixTable::new(&weights).ok());
                        }
                    }
                },
            );
            tables.into_iter().flatten().collect()
        } else {
            Vec::new()
        };

        let max_ps = if !cfg.decoupled_static && !radix_on {
            (0..n_local)
                .map(|i| {
                    let v = base + i as VertexId;
                    let mut m = 0.0f64;
                    graph.for_each_edge(v, |e| m = m.max(program.static_comp(&graph, e)));
                    m
                })
                .collect()
        } else {
            Vec::new()
        };

        NodeRt {
            graph,
            program,
            observer,
            partition,
            cfg,
            me,
            base,
            alias,
            radix,
            max_ps,
            overrides: HashMap::new(),
            biased,
            radix_on,
        }
    }

    /// Refreshes the static sampling structures of the update-touched
    /// owned vertices, versioned at `epoch`. Called by the serve loop at
    /// the superstep boundary right after the graph update applies —
    /// exactly the touched vertices are refreshed, nothing else.
    ///
    /// The alias backend always rebuilds a touched vertex from scratch
    /// (O(degree)). The radix backend patches in place when it can: a
    /// vertex whose edits are *reweights only* keeps its merged-row edge
    /// indices, so the previous table is cloned and each touched edge
    /// gets an O(log degree) point reweight — O(k) bucket edits for a
    /// batch touching k edges, independent of vertex degree. Structural
    /// edits (adds/dels shift the merged row) or a vertex with no prior
    /// table still rebuild. Point updates and fresh builds produce
    /// bitwise-identical tables, so the patched sampler is
    /// indistinguishable from a rebuild.
    ///
    /// Returns `(rebuilt, cost)`: the number of sampler versions pushed
    /// (feeds `WalkMetrics::sampler_rebuilds`) and the maintenance cost
    /// in entry-edits — degree per rebuilt vertex, edges-touched per
    /// patched vertex (feeds `WalkMetrics::sampler_rebuild_cost`).
    pub(crate) fn apply_update(
        &mut self,
        epoch: u64,
        batch: &UpdateBatch,
        touched: &[VertexId],
    ) -> (u64, u64) {
        if self.cfg.decoupled_static && !self.biased {
            // Uniform static component: no per-vertex structures exist.
            return (0, 0);
        }
        let mut rebuilt = 0u64;
        let mut cost = 0u64;
        let g = self.graph.at(epoch);
        // Vertices with structural edits cannot be patched in place.
        let structural: std::collections::HashSet<VertexId> = batch
            .adds
            .iter()
            .map(|a| a.src)
            .chain(batch.dels.iter().map(|d| d.src))
            .collect();
        for &v in touched {
            debug_assert_eq!(self.partition.owner(v), self.me);
            let local = v - self.base;
            let deg = g.degree(v);

            if self.radix_on {
                // Structural edits shift merged-row indices, so those
                // vertices rebuild below; reweight-only vertices patch.
                let radix = if deg == 0 || structural.contains(&v) {
                    None
                } else {
                    // Reweight-only vertex: clone the version the previous
                    // epoch used and point-patch the touched edges. The
                    // merged row is index-stable under reweights, and a
                    // reweight hits every live parallel (v, dst) instance —
                    // exactly `edge_range(v, dst)` at the new epoch.
                    let prev = match self.override_at(local, epoch) {
                        Some(entry) => entry.radix.clone(),
                        None => self.radix.get(local as usize).cloned().flatten(),
                    };
                    prev.filter(|t| t.len() == deg).map(|mut table| {
                        for r in batch.reweights.iter().filter(|r| r.src == v) {
                            for i in g.edge_range(v, r.dst) {
                                table.reweight(i, self.program.static_comp(&g, g.edge(v, i)));
                                cost += 1;
                            }
                        }
                        table
                    })
                };
                let radix = match radix {
                    Some(table) => Some(table),
                    None if deg > 0 => {
                        let mut weights: Vec<f64> = Vec::with_capacity(deg);
                        g.for_each_edge(v, |e| weights.push(self.program.static_comp(&g, e)));
                        cost += deg as u64;
                        RadixTable::new(&weights).ok()
                    }
                    None => None,
                };
                self.overrides.entry(local).or_default().push((
                    epoch,
                    SamplerEntry {
                        alias: None,
                        radix,
                        max_ps: 0.0,
                    },
                ));
                rebuilt += 1;
                continue;
            }

            let alias = if self.biased && deg > 0 {
                let mut weights: Vec<f64> = Vec::with_capacity(deg);
                g.for_each_edge(v, |e| weights.push(self.program.static_comp(&g, e)));
                AliasTable::new(&weights).ok()
            } else {
                None
            };
            let max_ps = if !self.cfg.decoupled_static {
                let mut m = 0.0f64;
                g.for_each_edge(v, |e| m = m.max(self.program.static_comp(&g, e)));
                m
            } else {
                0.0
            };
            cost += deg as u64;
            self.overrides.entry(local).or_default().push((
                epoch,
                SamplerEntry {
                    alias,
                    radix: None,
                    max_ps,
                },
            ));
            rebuilt += 1;
        }
        (rebuilt, cost)
    }

    /// Drops sampler versions no live walker can pin anymore — the
    /// sampler-side mirror of `DynGraph::retire`.
    pub(crate) fn retire_samplers(&mut self, watermark: u64) {
        for vers in self.overrides.values_mut() {
            let n = vers.partition_point(|(ep, _)| *ep <= watermark);
            if n > 1 {
                vers.drain(..n - 1);
            }
        }
    }

    /// The sampler override in effect for `local` at `epoch`, if any.
    #[inline]
    fn override_at(&self, local: u32, epoch: u64) -> Option<&SamplerEntry> {
        if self.overrides.is_empty() {
            return None; // static runs: zero-cost path
        }
        let vers = self.overrides.get(&local)?;
        vers.iter()
            .rev()
            .find(|(ep, _)| *ep <= epoch)
            .map(|(_, e)| e)
    }

    /// Static component of an edge, as the program defines it, against
    /// the pinned graph view `g`.
    #[inline]
    pub(crate) fn ps(&self, g: GraphRef<'_>, edge: EdgeView) -> f64 {
        self.program.static_comp(&g, edge)
    }

    /// Draws a candidate edge index from the static distribution at the
    /// walker's pinned epoch.
    #[inline]
    pub(crate) fn candidate(
        &self,
        v: VertexId,
        deg: usize,
        epoch: u64,
        rng: &mut DeterministicRng,
    ) -> usize {
        if self.biased {
            let local = v - self.base;
            if self.radix_on {
                let table = match self.override_at(local, epoch) {
                    Some(entry) => entry.radix.as_ref(),
                    None => self.radix[local as usize].as_ref(),
                };
                return match table {
                    Some(table) => table.sample(rng),
                    // Zero static mass: callers gate on `static_total`
                    // (decoupled) or `Envelope::total_area` before
                    // drawing candidates.
                    None => unreachable!("candidate drawn at zero-mass vertex {v}"),
                };
            }
            let table = match self.override_at(local, epoch) {
                Some(entry) => entry.alias.as_ref(),
                None => self.alias[local as usize].as_ref(),
            };
            match table {
                Some(table) => table.sample(rng),
                None => unreachable!("candidate drawn at zero-mass vertex {v}"),
            }
        } else {
            rng.next_index(deg)
        }
    }

    /// Sum of static components at `v` (the envelope's width) at `epoch`.
    ///
    /// A biased vertex with no sampler table (all static weights zero or
    /// invalid) reports `0.0`, and the step paths finish the walker —
    /// matching [`NodeRt::local_full_scan`], which finishes on a zero
    /// total. Degree never substitutes for missing mass.
    #[inline]
    pub(crate) fn static_total(&self, v: VertexId, deg: usize, epoch: u64) -> f64 {
        if self.biased {
            let local = v - self.base;
            if self.radix_on {
                let table = match self.override_at(local, epoch) {
                    Some(entry) => entry.radix.as_ref(),
                    None => self.radix[local as usize].as_ref(),
                };
                return table.map_or(0.0, |t| t.total_weight());
            }
            let table = match self.override_at(local, epoch) {
                Some(entry) => entry.alias.as_ref(),
                None => self.alias[local as usize].as_ref(),
            };
            table.map_or(0.0, |t| t.total_weight())
        } else {
            deg as f64
        }
    }

    /// First-level sampler prefetch for a walker about to step at `v`:
    /// warms the `Option<AliasTable>` slot (biased runs) or the `max_ps`
    /// cell (mixed mode). Pure hint — reads nothing.
    #[inline]
    pub(crate) fn prefetch_sampler(&self, v: VertexId) {
        let local = v.wrapping_sub(self.base) as usize;
        if self.radix_on {
            if let Some(entry) = self.radix.get(local) {
                knightking_sampling::prefetch::read(entry);
            }
        } else if self.biased {
            if let Some(entry) = self.alias.get(local) {
                knightking_sampling::prefetch::read(entry);
            }
        } else if !self.cfg.decoupled_static {
            if let Some(m) = self.max_ps.get(local) {
                knightking_sampling::prefetch::read(m);
            }
        }
    }

    /// Second-level sampler prefetch: reads the (already-warmed) table
    /// slot and prefetches the table's hot arrays — the alias
    /// `prob`/`alias` pair, or the radix slab tree's head plus the leaf
    /// region the descent and acceptance test will read. The read touches
    /// only immutable sampler metadata, so issuing it early cannot change
    /// results. No-op for uniform alias runs (alias mixed mode has no
    /// second level).
    #[inline]
    pub(crate) fn prefetch_sampler_deep(&self, v: VertexId, epoch: u64) {
        let local = v.wrapping_sub(self.base);
        if self.radix_on {
            let table = match self.override_at(local, epoch) {
                Some(entry) => entry.radix.as_ref(),
                None => self.radix.get(local as usize).and_then(|t| t.as_ref()),
            };
            if let Some(table) = table {
                table.prefetch();
                table.prefetch_leaves();
            }
            return;
        }
        if !self.biased {
            return;
        }
        let table = match self.override_at(local, epoch) {
            Some(entry) => entry.alias.as_ref(),
            None => self.alias.get(local as usize).and_then(|t| t.as_ref()),
        };
        if let Some(table) = table {
            table.prefetch();
        }
    }

    /// Mixed-mode per-vertex maximum `Ps` bound at `epoch`.
    ///
    /// Alias backend: the exact per-vertex maximum from the build/rebuild
    /// scan. Radix backend: the table's largest slab — a power-of-two
    /// upper bound within 2× of the true maximum that stays canonical
    /// under O(log n) reweights (a running max cannot shrink without an
    /// O(degree) rescan). Both keep the envelope sound; they differ in
    /// envelope height, which per-backend byte-identity permits.
    #[inline]
    fn max_ps_at(&self, v: VertexId, epoch: u64) -> f64 {
        let local = v - self.base;
        if self.radix_on {
            let table = match self.override_at(local, epoch) {
                Some(entry) => entry.radix.as_ref(),
                None => self.radix[local as usize].as_ref(),
            };
            return table.map_or(0.0, |t| t.max_slab());
        }
        match self.override_at(local, epoch) {
            Some(entry) => entry.max_ps,
            None => self.max_ps[local as usize],
        }
    }

    /// Evaluates the effective dynamic component for rejection testing.
    ///
    /// In decoupled mode this is the program's `Pd`; in mixed mode
    /// (Figure 8) it is `Ps·Pd`, emulating traditional samplers.
    #[inline]
    pub(crate) fn pd(
        &self,
        walker: &Walker<P::Data>,
        edge: EdgeView,
        answer: Option<P::Answer>,
        metrics: &mut WalkMetrics,
    ) -> f64 {
        metrics.edges_evaluated += 1;
        let g = self.graph.at(walker.epoch);
        let base = self.program.dynamic_comp(&g, walker, edge, answer);
        debug_assert!(
            base.is_finite() && base >= 0.0,
            "dynamic_comp returned invalid probability {base} for edge ({}, {})",
            edge.src,
            edge.dst
        );
        if self.cfg.decoupled_static {
            base
        } else {
            base * self.ps(g, edge)
        }
    }

    /// Rebuilds the scratch envelope for one step of `walker` at its
    /// residing vertex, against the walker's pinned snapshot.
    pub(crate) fn fill_envelope(&self, walker: &Walker<P::Data>, deg: usize, env: &mut Envelope) {
        let v = walker.current;
        let g = self.graph.at(walker.epoch);
        let q = self.program.upper_bound(&g, walker);
        env.outliers.clear();
        if self.cfg.decoupled_static {
            env.q = q;
            env.lower = if self.cfg.use_lower_bound {
                self.program.lower_bound(&g, walker)
            } else {
                0.0
            };
            env.static_total = self.static_total(v, deg, walker.epoch);
            self.program.declare_outliers(&g, walker, &mut env.outliers);
            if !self.cfg.use_outliers && !env.outliers.is_empty() {
                // Ablation mode (Table 5b "naive"): instead of folding the
                // outliers into appendix areas, raise the whole envelope
                // to cover them — the traditional, wasteful board shape.
                for o in &env.outliers {
                    env.q = env.q.max(o.height_bound);
                }
                env.outliers.clear();
            }
        } else {
            // Mixed mode: uniform candidates, weight folded into Pd, so
            // the envelope must absorb the vertex's largest weight — and
            // any declared outlier heights, since appendix folding assumes
            // decoupled static sampling.
            let mut q = q;
            self.program.declare_outliers(&g, walker, &mut env.outliers);
            for o in &env.outliers {
                q = q.max(o.height_bound);
            }
            env.outliers.clear();
            env.q = q * self.max_ps_at(v, walker.epoch);
            env.lower = 0.0;
            env.static_total = deg as f64;
        }
    }

    /// Records a path entry if path recording is on.
    #[inline]
    pub(crate) fn record(&self, acc: &mut ChunkAcc<P, O>, walker: &Walker<P::Data>) {
        if self.cfg.record_paths {
            acc.paths.push(PathEntry {
                walker: walker.id,
                step: walker.step,
                vertex: walker.current,
            });
        }
    }

    /// Performs the exact full scan for a walker whose `Pd` is locally
    /// computable, sampling from the true `Ps·Pd` distribution — or
    /// finishing the walk if no edge has positive probability.
    pub(crate) fn local_full_scan(
        &self,
        walker: &mut Walker<P::Data>,
        deg: usize,
        acc: &mut ChunkAcc<P, O>,
    ) -> StepOutcome {
        acc.metrics.fallback_scans += 1;
        acc.obs.fallback(walker.id);
        let graph = self.graph.at(walker.epoch);
        let v = walker.current;
        acc.cdf_scratch.clear();
        let mut run = 0.0f64;
        for i in 0..deg {
            let edge = graph.edge(v, i);
            let pd = self.pd(walker, edge, None, &mut acc.metrics);
            let ps = if self.cfg.decoupled_static {
                self.ps(graph, edge)
            } else {
                // Mixed mode folded Ps into `pd` already.
                1.0
            };
            run += (ps * pd).max(0.0);
            acc.cdf_scratch.push(run);
        }
        if run <= 0.0 {
            return StepOutcome::Finished;
        }
        let idx = CdfTable::sample_prepared(&acc.cdf_scratch, &mut walker.rng);
        StepOutcome::Moved(graph.edge(v, idx).dst)
    }

    /// Commits an accepted move: advances the walker, fires `on_move`,
    /// records the path entry, and emits a migration message if the new
    /// vertex lives on another node. Returns `true` if the walker stayed
    /// local.
    pub(crate) fn commit_move(
        &self,
        slot: &mut Slot<P>,
        dst: VertexId,
        acc: &mut ChunkAcc<P, O>,
    ) -> bool {
        slot.walker.advance(dst);
        let g = self.graph.at(slot.walker.epoch);
        self.program.on_move(&g, &mut slot.walker);
        acc.metrics.steps += 1;
        self.observer.on_move(&mut acc.obs_acc, &slot.walker);
        self.record(acc, &slot.walker);
        let owner = self.partition.owner(dst);
        if owner == self.me {
            slot.state = SlotState::fresh();
            true
        } else {
            slot.state = SlotState::Departed;
            let walker = slot.walker.clone();
            acc.outbox[owner].push(Msg::Move(walker));
            false
        }
    }
}

/// Output of one node's run.
struct NodeOut {
    paths: Vec<PathEntry>,
    metrics: WalkMetrics,
    active_series: Vec<u64>,
    profile: instrument::NodeProfileOut,
}

/// True wire size of one message: exactly what [`Wire::encode`] would
/// emit. `size_of::<Msg<P>>()` would charge every message the largest
/// variant's footprint (a `Move` carrying walker data), badly overstating
/// the small `Query`/`Answer` traffic of second-order walks.
pub(crate) fn msg_wire_bytes<P: WalkerProgram>(msg: &Msg<P>) -> usize {
    msg.wire_size()
}

/// The engine: a graph, a program, and a configuration.
///
/// See the [crate-level docs](crate) for an end-to-end example.
pub struct RandomWalkEngine<'g, P: WalkerProgram> {
    pub(crate) graph: GraphRef<'g>,
    pub(crate) program: P,
    pub(crate) config: WalkConfig,
}

impl<'g, P: WalkerProgram> RandomWalkEngine<'g, P> {
    /// Creates an engine over `graph` running `program`.
    ///
    /// `graph` is anything convertible to a [`GraphRef`]: a `&CsrGraph`
    /// (static run) or a `&DynGraph` (dynamic run — the engine pins the
    /// graph's current epoch at this call, and every walker of a batch
    /// run samples that snapshot).
    pub fn new(graph: impl Into<GraphRef<'g>>, program: P, config: WalkConfig) -> Self {
        RandomWalkEngine {
            graph: graph.into(),
            program,
            config,
        }
    }

    /// Access the configuration.
    pub fn config(&self) -> &WalkConfig {
        &self.config
    }

    /// Runs the walk to completion and returns the result.
    ///
    /// Timing covers walker and sampling-structure initialization plus the
    /// walk itself, matching §7.1's methodology (graph loading and
    /// partitioning excluded).
    pub fn run(&self, starts: WalkerStarts) -> WalkResult {
        self.run_with_observer(starts, &NoopObserver).0
    }

    /// Runs the walk with an in-flight [`WalkObserver`], returning the
    /// result plus the merged observation (§5.1's "computation embedded
    /// during the random walk process").
    pub fn run_with_observer<O: WalkObserver<P::Data>>(
        &self,
        starts: WalkerStarts,
        observer: &O,
    ) -> (WalkResult, O::Acc) {
        let starts = starts.materialize(self.graph.vertex_count());
        let partition = Partition::balanced(self.graph.base_csr(), self.config.n_nodes, 1.0);
        let n_walkers = starts.len() as u64;
        let threads = self.config.resolved_threads();

        // Physically partition the graph: each node receives only the
        // out-edges of its owned vertices, as on a real cluster.
        // Out-of-partition accesses become structurally impossible (a
        // foreign vertex has degree zero on this node). Single-node runs
        // use the input graph directly. Like graph loading/partitioning,
        // this is excluded from the timed region (§7.1). Dynamic graphs
        // are shared whole instead of sliced — their row versions can't
        // be cheaply split — so only the partition-ownership discipline
        // (debug-asserted on every sampled vertex) separates the nodes.
        let locals: Vec<CsrGraph> = match self.graph {
            GraphRef::Csr(g) if self.config.n_nodes > 1 => (0..self.config.n_nodes)
                .map(|node| partition.extract_local(g, node))
                .collect(),
            _ => Vec::new(),
        };

        let begin = Instant::now();
        let (outs, comm): (Vec<(NodeOut, O::Acc)>, _) =
            run_cluster_with_metrics::<Msg<P>, _, _>(self.config.n_nodes, |ctx| {
                let mut ctx = ctx;
                let local = if locals.is_empty() {
                    self.graph
                } else {
                    GraphRef::Csr(&locals[ctx.node])
                };
                self.node_main(&mut ctx, local, observer, &partition, &starts, threads)
            });
        let elapsed = begin.elapsed();

        // Post-run finalization (merge + path reassembly) is timed into
        // node 0's `Finalize` phase so per-node phase sums stay bounded by
        // the profile's wall clock.
        let finalize_begin = Instant::now();
        let mut fragments = Vec::new();
        let mut metrics = WalkMetrics::default();
        let mut active_series = Vec::new();
        let mut observation: Option<O::Acc> = None;
        #[cfg(feature = "obs")]
        let mut node_profiles: Vec<knightking_obs::NodeProfile> = Vec::new();
        for (i, (out, obs_acc)) in outs.into_iter().enumerate() {
            fragments.extend(out.paths);
            metrics.merge(&out.metrics);
            if i == 0 {
                active_series = out.active_series;
            }
            match &mut observation {
                None => observation = Some(obs_acc),
                Some(into) => observer.merge(into, obs_acc),
            }
            #[cfg(feature = "obs")]
            node_profiles.extend(out.profile);
            #[cfg(not(feature = "obs"))]
            let () = out.profile;
        }
        let paths = if self.config.record_paths {
            WalkResult::assemble_paths(n_walkers, fragments)
        } else {
            Vec::new()
        };
        #[cfg(feature = "obs")]
        let profile = if node_profiles.is_empty() {
            None
        } else {
            if let Some(n0) = node_profiles.first_mut() {
                n0.timers
                    .add(Phase::Finalize, finalize_begin.elapsed().as_nanos() as u64);
                n0.timers.flush_setup();
            }
            Some(knightking_obs::RunProfile {
                nodes: node_profiles,
                wall_nanos: begin.elapsed().as_nanos() as u64,
            })
        };
        #[cfg(not(feature = "obs"))]
        let _ = finalize_begin;
        let result = WalkResult {
            paths,
            active_per_iteration: active_series,
            metrics,
            comm,
            elapsed,
            #[cfg(feature = "obs")]
            profile,
        };
        (result, observation.unwrap_or_else(|| observer.make_acc()))
    }

    /// Body executed by each node — simulated (in-process `NodeCtx`) or
    /// real (one OS process driving a `TcpTransport`). `local` is this
    /// node's slice of the graph: out-edges of owned vertices only.
    fn node_main<O: WalkObserver<P::Data>, T: Transport<Msg<P>>>(
        &self,
        ctx: &mut T,
        local: GraphRef<'_>,
        observer: &O,
        partition: &Partition,
        starts: &[VertexId],
        threads: usize,
    ) -> (NodeOut, O::Acc) {
        let cfg = &self.config;
        let me = ctx.node();
        let scheduler = Scheduler {
            threads,
            chunk_size: cfg.chunk_size,
            light_threshold: cfg.light_threshold,
        };
        let mut prof = NodeObs::new(cfg.profile, me);
        let rt = prof.time(Phase::AliasBuild, || {
            NodeRt::build(
                local,
                &self.program,
                observer,
                partition,
                cfg,
                me,
                &scheduler,
            )
        });

        // Instantiate locally-owned walkers, recording their start vertex
        // as path step 0.
        let (mut slots, mut paths) = prof.time(Phase::Init, || {
            let mut slots: Vec<Slot<P>> = Vec::new();
            let mut paths: Vec<PathEntry> = Vec::new();
            for (id, &start) in starts.iter().enumerate() {
                if partition.owner(start) == me {
                    let data = self.program.init_data(id as u64, start);
                    let mut walker = Walker::new(id as u64, start, cfg.seed, data);
                    // Batch runs pin every walker at the engine's snapshot
                    // epoch (0 for CSR graphs).
                    walker.epoch = local.epoch();
                    if cfg.record_paths {
                        paths.push(PathEntry {
                            walker: walker.id,
                            step: 0,
                            vertex: start,
                        });
                    }
                    slots.push(Slot {
                        walker,
                        state: SlotState::fresh(),
                    });
                }
            }
            (slots, paths)
        });
        prof.flush_setup();

        let mut metrics = WalkMetrics::default();
        let mut active_series = Vec::new();
        let mut obs_acc = observer.make_acc();
        // Batch runs don't route per-request completions anywhere; the
        // scratch buffer just absorbs them each iteration.
        let mut finished_scratch: Vec<FinishedWalk> = Vec::new();
        loop {
            metrics.iterations += 1;
            finished_scratch.clear();
            if P::SECOND_ORDER {
                second_order::iteration(
                    &rt,
                    ctx,
                    &scheduler,
                    &mut slots,
                    &mut paths,
                    &mut finished_scratch,
                    &mut metrics,
                    &mut obs_acc,
                    &mut prof,
                );
            } else {
                first_order::iteration(
                    &rt,
                    ctx,
                    &scheduler,
                    &mut slots,
                    &mut paths,
                    &mut finished_scratch,
                    &mut metrics,
                    &mut obs_acc,
                    &mut prof,
                );
            }
            let active = prof.time(Phase::Exchange, || ctx.allreduce_sum(slots.len() as u64));
            if ctx.is_leader() {
                active_series.push(active);
            }
            prof.end_iteration();
            // Cooperative cancellation is a collective: every node votes
            // with its local token, so all nodes agree on the same
            // superstep to stop at — walkers freeze and the run finalizes
            // with whatever paths/metrics exist so far.
            if let Some(token) = &cfg.cancel {
                let cancelled = prof.time(Phase::Exchange, || {
                    ctx.allreduce_sum(token.is_cancelled() as u64)
                });
                if cancelled > 0 {
                    break;
                }
            }
            if active == 0 {
                break;
            }
        }

        (
            NodeOut {
                paths,
                metrics,
                active_series,
                profile: prof.finish(),
            },
            obs_acc,
        )
    }

    /// Runs the walk as **one node of a real multi-process cluster**, with
    /// inter-node communication carried by `transport` (e.g. a
    /// [`TcpTransport`] over a full mesh of sockets).
    ///
    /// Every process must call this with the same graph, program, config,
    /// and starts (the SPMD contract); `config.n_nodes` must equal
    /// `transport.n_nodes()`. Each process derives its own partition from
    /// the shared graph, walks its owned walkers, and at the end sends its
    /// path fragments and metrics to rank 0, which assembles the full
    /// [`WalkResult`] — byte-identical to an in-process
    /// [`run`](RandomWalkEngine::run) with the same seed and node count.
    ///
    /// Returns `Some(result)` on rank 0 and `None` on every other rank.
    ///
    /// [`TcpTransport`]: https://docs.rs/knightking-net
    ///
    /// # Panics
    ///
    /// Panics if `transport.n_nodes() != config.n_nodes`.
    pub fn run_distributed<T: Transport<Msg<P>>>(
        &self,
        transport: &mut T,
        starts: WalkerStarts,
    ) -> Option<WalkResult> {
        assert_eq!(
            transport.n_nodes(),
            self.config.n_nodes,
            "transport has {} nodes but config.n_nodes is {}",
            transport.n_nodes(),
            self.config.n_nodes
        );
        let starts = starts.materialize(self.graph.vertex_count());
        let partition = Partition::balanced(self.graph.base_csr(), self.config.n_nodes, 1.0);
        let n_walkers = starts.len() as u64;
        let threads = self.config.resolved_threads();
        let me = transport.node();

        // Every process loads the full graph and extracts its own slice —
        // the same physical partitioning as the in-process path, just
        // without materializing the other nodes' slices. Dynamic graphs
        // stay whole (see `run_with_observer`).
        let local_owned;
        let local: GraphRef<'_> = match self.graph {
            GraphRef::Csr(g) if self.config.n_nodes > 1 => {
                local_owned = partition.extract_local(g, me);
                GraphRef::Csr(&local_owned)
            }
            other => other,
        };

        let begin = Instant::now();
        let (out, ()) = self.node_main(
            transport,
            local,
            &NoopObserver,
            &partition,
            &starts,
            threads,
        );
        let elapsed = begin.elapsed();

        // Result collection: each rank ships (metrics, path fragments) to
        // the leader as one opaque blob; counters are snapshotted as a
        // collective so every rank agrees the run is over.
        let finalize_begin = Instant::now();
        let blob = knightking_net::to_bytes(&(out.metrics, out.paths))
            .expect("result blob exceeds wire limits");
        let gathered = transport.gather_bytes(blob);
        let comm = transport.cluster_counts();
        let parts = gathered?;

        let mut fragments = Vec::new();
        let mut metrics = WalkMetrics::default();
        for (rank, part) in parts.iter().enumerate() {
            let (m, paths): (WalkMetrics, Vec<PathEntry>) = knightking_net::from_bytes(part)
                .unwrap_or_else(|e| panic!("corrupt result blob from rank {rank}: {e}"));
            metrics.merge(&m);
            fragments.extend(paths);
        }
        let paths = if self.config.record_paths {
            WalkResult::assemble_paths(n_walkers, fragments)
        } else {
            Vec::new()
        };
        #[cfg(feature = "obs")]
        let profile = {
            // Only the leader's own node profile is collected; shipping
            // every rank's profile through the gather would require a wire
            // encoding for the whole obs tree.
            let mut node_profile = out.profile;
            if let Some(n0) = node_profile.as_mut() {
                n0.timers
                    .add(Phase::Finalize, finalize_begin.elapsed().as_nanos() as u64);
                n0.timers.flush_setup();
            }
            node_profile.map(|n0| knightking_obs::RunProfile {
                nodes: vec![n0],
                wall_nanos: begin.elapsed().as_nanos() as u64,
            })
        };
        #[cfg(not(feature = "obs"))]
        let _ = finalize_begin;
        Some(WalkResult {
            paths,
            active_per_iteration: out.active_series,
            metrics,
            comm,
            elapsed,
            #[cfg(feature = "obs")]
            profile,
        })
    }
}

/// Merges chunk accumulators into node-level buffers and returns the
/// combined outbox. Chunk instrumentation is absorbed here too — in chunk
/// order, so profiles inherit the scheduler's determinism contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_accs<P: WalkerProgram, O: WalkObserver<P::Data>>(
    observer: &O,
    accs: Vec<ChunkAcc<P, O>>,
    n_nodes: usize,
    paths: &mut Vec<PathEntry>,
    finished: &mut Vec<FinishedWalk>,
    metrics: &mut WalkMetrics,
    obs_acc: &mut O::Acc,
    prof: &mut NodeObs,
) -> Vec<Vec<Msg<P>>> {
    let mut outbox: Vec<Vec<Msg<P>>> = (0..n_nodes).map(|_| Vec::new()).collect();
    let mut iter_metrics = WalkMetrics::default();
    for mut acc in accs {
        for (to, msgs) in acc.outbox.iter_mut().enumerate() {
            outbox[to].append(msgs);
        }
        paths.append(&mut acc.paths);
        finished.append(&mut acc.finished);
        iter_metrics.merge(&acc.metrics);
        observer.merge(obs_acc, acc.obs_acc);
        prof.absorb(acc.obs);
    }
    // Chunk accumulators start from zero each iteration; fold their sums
    // into the running node totals (iterations tracked by the caller).
    let saved_iterations = metrics.iterations;
    metrics.merge(&iter_metrics);
    metrics.iterations = saved_iterations;
    outbox
}

/// Shared helper: runs one *local* sampling decision for a walker
/// (everything except remote-answer cases). Used directly by the
/// first-order path, and by the second-order path until a query is
/// needed. `slot_idx` is the walker's index in the node's slot vector,
/// used to address query answers back to it.
///
/// When the walker is `fresh`, the termination component is checked first
/// (once per step, not per trial).
pub(crate) fn local_step<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slot: &mut Slot<P>,
    slot_idx: u32,
    acc: &mut ChunkAcc<P, O>,
) -> StepOutcome {
    // All graph reads in this step resolve at the walker's pinned epoch.
    let graph = rt.graph.at(slot.walker.epoch);
    // Distributed-memory discipline: a node only ever samples at vertices
    // it owns. The CSR is shared for simulation convenience, but every
    // access in the walk path must stay partition-local.
    debug_assert_eq!(
        rt.partition.owner(slot.walker.current),
        rt.me,
        "walker resides on a vertex this node does not own"
    );
    let SlotState::Active { fresh, stuck } = slot.state else {
        unreachable!("local_step requires an Active slot")
    };
    if fresh {
        if rt.program.should_terminate(&mut slot.walker) {
            return StepOutcome::Finished;
        }
        if let Some(dst) = rt.program.teleport(&graph, &mut slot.walker) {
            // Restart-style jump: no edge traversed, no sampling.
            assert!(
                (dst as usize) < graph.vertex_count(),
                "teleport destination {dst} out of range"
            );
            return StepOutcome::Moved(dst);
        }
        slot.state = SlotState::Active {
            fresh: false,
            stuck,
        };
    }
    let v = slot.walker.current;
    let deg = graph.degree(v);
    if deg == 0 {
        return StepOutcome::Finished;
    }

    // Static walks: the sampler/uniform candidate *is* the sample. A
    // biased vertex whose static mass is zero (every edge reweighted to
    // zero, or the table invalid) has no edge to draw — the walk ends
    // there, exactly as the full-scan fallback decides.
    if !P::DYNAMIC {
        if rt.static_total(v, deg, slot.walker.epoch) <= 0.0 {
            return StepOutcome::Finished;
        }
        let idx = rt.candidate(v, deg, slot.walker.epoch, &mut slot.walker.rng);
        return StepOutcome::Moved(graph.edge(v, idx).dst);
    }

    rt.fill_envelope(&slot.walker, deg, &mut acc.env);
    if acc.env.total_area() <= 0.0 {
        return StepOutcome::Finished;
    }

    for _ in 0..rt.cfg.max_local_trials {
        acc.metrics.trials += 1;
        let Some(dart) = acc.env.draw(&mut slot.walker.rng) else {
            return StepOutcome::Finished;
        };
        match dart {
            knightking_sampling::Trial::Main { y } => {
                let idx = rt.candidate(v, deg, slot.walker.epoch, &mut slot.walker.rng);
                let edge = graph.edge(v, idx);
                if y < acc.env.lower {
                    acc.metrics.pre_accepts += 1;
                    return StepOutcome::Moved(edge.dst);
                }
                if P::SECOND_ORDER {
                    if let Some((target, payload)) = rt.program.state_query(&slot.walker, edge) {
                        post_query(
                            rt,
                            acc,
                            slot_idx,
                            target,
                            idx as u32,
                            slot.walker.epoch,
                            payload,
                        );
                        return StepOutcome::Posted {
                            edge: idx as u32,
                            y,
                        };
                    }
                }
                let pd = rt.pd(&slot.walker, edge, None, &mut acc.metrics);
                if y < pd {
                    return StepOutcome::Moved(edge.dst);
                }
            }
            knightking_sampling::Trial::Appendix { index, x_mass, y } => {
                acc.metrics.appendix_hits += 1;
                let slot_decl: OutlierSlot = acc.env.outliers[index];
                // Spread the appendix's horizontal mass across all
                // (possibly parallel) edges leading to the declared
                // target, proportionally to their Ps — exact even on
                // multigraphs.
                let mut chosen = None;
                let mut cum = 0.0f64;
                for i in graph.edge_range(v, slot_decl.target) {
                    let e = graph.edge(v, i);
                    cum += rt.ps(graph, e);
                    if x_mass < cum {
                        chosen = Some((i, e));
                        break;
                    }
                }
                let Some((idx, edge)) = chosen else {
                    continue;
                };
                if P::SECOND_ORDER {
                    if let Some((target, payload)) = rt.program.state_query(&slot.walker, edge) {
                        post_query(
                            rt,
                            acc,
                            slot_idx,
                            target,
                            idx as u32,
                            slot.walker.epoch,
                            payload,
                        );
                        return StepOutcome::Posted {
                            edge: idx as u32,
                            y,
                        };
                    }
                }
                let pd = rt.pd(&slot.walker, edge, None, &mut acc.metrics);
                if y < pd {
                    return StepOutcome::Moved(edge.dst);
                }
            }
        }
    }

    if P::SECOND_ORDER {
        StepOutcome::NeedFullScan
    } else {
        rt.local_full_scan(&mut slot.walker, deg, acc)
    }
}

/// Emits a state query message addressed to the owner of `target`,
/// carrying the asking walker's pinned epoch so the owner answers against
/// the same snapshot.
pub(crate) fn post_query<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    acc: &mut ChunkAcc<P, O>,
    slot_idx: u32,
    target: VertexId,
    tag: u32,
    epoch: u64,
    payload: P::Query,
) {
    acc.metrics.queries += 1;
    let owner = rt.partition.owner(target);
    acc.outbox[owner].push(Msg::Query {
        from: rt.me as u32,
        slot: slot_idx,
        tag,
        target,
        epoch,
        payload,
    });
}
