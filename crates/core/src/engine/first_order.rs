//! Static and first-order dynamic execution: one exchange per iteration.
//!
//! With no walker-to-vertex state queries, a walker's whole step — the
//! termination check, rejection sampling (or direct static sampling), and
//! the move — resolves locally within one iteration, and all walkers
//! advance in lockstep (§5.1: "For such algorithms, all walkers can move
//! lockstep").

use knightking_cluster::{NodeCtx, Scheduler};

use crate::{
    metrics::WalkMetrics,
    program::{WalkObserver, WalkerProgram},
    result::PathEntry,
};

use super::{local_step, merge_accs, ChunkAcc, Msg, NodeRt, Slot, SlotState, StepOutcome};

/// Runs one first-order BSP iteration on this node.
#[allow(clippy::too_many_arguments)]
pub(super) fn iteration<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    ctx: &NodeCtx<'_, Msg<P>>,
    scheduler: &Scheduler,
    slots: &mut Vec<Slot<P>>,
    paths: &mut Vec<PathEntry>,
    metrics: &mut WalkMetrics,
    obs_acc: &mut O::Acc,
) {
    let n = ctx.n_nodes();

    let accs = scheduler.run_chunks(
        slots,
        || ChunkAcc::new(n, rt.observer),
        |base, slice, acc| {
            for (i, slot) in slice.iter_mut().enumerate() {
                match local_step(rt, slot, (base + i) as u32, acc) {
                    StepOutcome::Finished => {
                        acc.metrics.finished_walkers += 1;
                        slot.state = SlotState::Finished;
                    }
                    StepOutcome::Moved(dst) => {
                        rt.commit_move(slot, dst, acc);
                    }
                    StepOutcome::Posted { .. } | StepOutcome::NeedFullScan => {
                        unreachable!("first-order walks resolve every step locally")
                    }
                }
            }
        },
    );
    let outbox = merge_accs(rt.observer, accs, n, paths, metrics, obs_acc);

    let inbox = ctx.exchange(outbox);
    slots.retain(|s| matches!(s.state, SlotState::Active));
    for msg in inbox {
        match msg {
            Msg::Move(walker) => slots.push(Slot {
                walker,
                state: SlotState::Active,
                fresh: true,
                stuck: 0,
            }),
            _ => unreachable!("first-order iterations exchange only walker moves"),
        }
    }
}
