//! Static and first-order dynamic execution: one exchange per iteration.
//!
//! With no walker-to-vertex state queries, a walker's whole step — the
//! termination check, rejection sampling (or direct static sampling), and
//! the move — resolves locally within one iteration, and all walkers
//! advance in lockstep (§5.1: "For such algorithms, all walkers can move
//! lockstep").

use knightking_cluster::Scheduler;
use knightking_net::Transport;

use crate::{
    config::StepEngine,
    metrics::WalkMetrics,
    program::{WalkObserver, WalkerProgram},
    result::PathEntry,
};

use super::{
    instrument::{NodeObs, Phase},
    local_step, merge_accs, msg_wire_bytes, run_chunk_interleaved, ChunkAcc, FinishedWalk, Msg,
    NodeRt, Slot, SlotState, StepOutcome,
};

/// One walker's whole first-order step: the local sampling decision plus
/// outcome handling. Shared verbatim by the scalar and interleaved
/// engines — the engines differ only in visitation order and prefetching.
fn step_one<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slot: &mut Slot<P>,
    idx: u32,
    acc: &mut ChunkAcc<P, O>,
) {
    let trials_before = acc.metrics.trials;
    match local_step(rt, slot, idx, acc) {
        StepOutcome::Finished => {
            acc.metrics.finished_walkers += 1;
            slot.state = SlotState::Finished;
            acc.obs.walk_finished(slot.walker.step as u64);
            acc.finished.push(FinishedWalk {
                tag: slot.walker.tag,
                walker: slot.walker.id,
                steps: slot.walker.step,
            });
        }
        StepOutcome::Moved(dst) => {
            rt.commit_move(slot, dst, acc);
        }
        StepOutcome::Posted { .. } | StepOutcome::NeedFullScan => {
            unreachable!("first-order walks resolve every step locally")
        }
    }
    if P::DYNAMIC {
        acc.obs.record_trials(acc.metrics.trials - trials_before);
    }
}

/// Runs one first-order BSP iteration on this node.
#[allow(clippy::too_many_arguments)]
pub(super) fn iteration<P: WalkerProgram, O: WalkObserver<P::Data>, T: Transport<Msg<P>>>(
    rt: &NodeRt<'_, P, O>,
    ctx: &mut T,
    scheduler: &Scheduler,
    slots: &mut Vec<Slot<P>>,
    paths: &mut Vec<PathEntry>,
    finished: &mut Vec<FinishedWalk>,
    metrics: &mut WalkMetrics,
    obs_acc: &mut O::Acc,
    prof: &mut NodeObs,
) {
    let n = ctx.n_nodes();

    let light = scheduler.is_light(slots.len());
    prof.superstep(
        slots.len() as u64,
        scheduler.chunk_count(slots.len()) as u64,
        light,
    );
    let compute_phase = if light {
        Phase::LightMode
    } else {
        Phase::LocalCompute
    };
    let obs_ctx = prof.chunk_ctx();
    let accs = prof.time(compute_phase, || {
        scheduler.run_chunks(
            slots,
            || ChunkAcc::new(n, rt.observer, obs_ctx),
            |base, slice, acc| match rt.cfg.step_engine {
                StepEngine::Scalar => {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        step_one(rt, slot, (base + i) as u32, acc);
                    }
                }
                engine @ StepEngine::Interleaved { .. } => run_chunk_interleaved(
                    rt,
                    slice,
                    base,
                    acc,
                    engine.ring(),
                    // First-order answer routing is tag-free, so the
                    // visitation order is free to chase cache locality.
                    rt.cfg.block_sort,
                    |_| true,
                    |slot, idx, acc| step_one(rt, slot, idx, acc),
                ),
            },
        )
    });
    let outbox = merge_accs(
        rt.observer,
        accs,
        n,
        paths,
        finished,
        metrics,
        obs_acc,
        prof,
    );

    let (inbox, stats) = prof.time(Phase::Exchange, || {
        ctx.exchange_with_stats(outbox, &msg_wire_bytes::<P>)
    });
    prof.record_exchange_bytes(stats.sent_bytes);
    slots.retain(|s| matches!(s.state, SlotState::Active { .. }));
    for msg in inbox {
        match msg {
            Msg::Move(walker) => slots.push(Slot {
                walker,
                state: SlotState::fresh(),
            }),
            _ => unreachable!("first-order iterations exchange only walker moves"),
        }
    }
}
