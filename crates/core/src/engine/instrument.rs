//! Engine-side observability shim over `knightking-obs`.
//!
//! The engine code calls one fixed API (`NodeObs` per node, `ChunkObs` per
//! chunk accumulator); this module provides two implementations selected
//! by the `obs` cargo feature. The real one records into `knightking-obs`
//! primitives; the inert one is all zero-sized no-ops, so an
//! `--no-default-features` build compiles the exact same engine code with
//! every instrumentation call optimized away.
//!
//! Determinism contract: `ChunkObs` is owned by its chunk accumulator
//! (thread-owned, no atomics or locks), and is absorbed into `NodeObs` in
//! chunk order by `merge_accs` — instrumentation follows the same merge
//! discipline as walk results, so enabling it cannot perturb them.

#[cfg(feature = "obs")]
mod real {
    use knightking_obs::{Event, EventKind, EventRing, NodeProfile, Pow2Histogram};

    pub(crate) use knightking_obs::Phase;

    /// Per-chunk trace ring capacity: a chunk processes at most
    /// `chunk_size` walkers per iteration, so fallback events rarely
    /// exceed this.
    const CHUNK_RING_CAP: usize = 256;

    /// Node-level trace ring capacity: bounds profile memory on long runs
    /// (oldest events are overwritten and counted as dropped).
    const NODE_RING_CAP: usize = 65_536;

    /// What a node's run contributes to the profile (`None` when
    /// profiling is off).
    pub(crate) type NodeProfileOut = Option<NodeProfile>;

    /// Immutable per-chunk recording context, cheap to copy into the
    /// scheduler's accumulator-init closure.
    #[derive(Clone, Copy)]
    pub(crate) struct ChunkCtx {
        enabled: bool,
        iteration: u32,
        node: u32,
    }

    /// Chunk-local instrumentation: owned by one `ChunkAcc`, never shared
    /// across threads, absorbed in chunk order.
    pub(crate) struct ChunkObs {
        ctx: ChunkCtx,
        ring: EventRing,
        walk_length: Pow2Histogram,
        trials_per_step: Pow2Histogram,
        gather_ns: u64,
    }

    impl ChunkObs {
        pub(crate) fn new(ctx: ChunkCtx) -> Self {
            ChunkObs {
                ctx,
                // Disabled chunks keep an empty (1-slot) ring so the
                // accumulator stays allocation-free on unprofiled runs.
                ring: EventRing::new(if ctx.enabled { CHUNK_RING_CAP } else { 1 }),
                walk_length: Pow2Histogram::new(),
                trials_per_step: Pow2Histogram::new(),
                gather_ns: 0,
            }
        }

        /// Records CPU nanoseconds spent building this chunk's stage pool
        /// (the interleaved engine's gather stage). Thread-summed across
        /// chunks into `Phase::Gather`, so the total can exceed the
        /// wall-clock `LocalCompute` time on many threads.
        #[inline]
        pub(crate) fn record_gather_ns(&mut self, ns: u64) {
            if self.ctx.enabled {
                self.gather_ns += ns;
            }
        }

        /// Records the rejection trials one sampling step consumed.
        #[inline]
        pub(crate) fn record_trials(&mut self, trials: u64) {
            if self.ctx.enabled && trials > 0 {
                self.trials_per_step.record(trials);
            }
        }

        /// Records a finished walk of `steps` steps.
        #[inline]
        pub(crate) fn walk_finished(&mut self, steps: u64) {
            if self.ctx.enabled {
                self.walk_length.record(steps);
            }
        }

        /// Records a full-scan fallback for `walker`.
        #[inline]
        pub(crate) fn fallback(&mut self, walker: u64) {
            if self.ctx.enabled {
                self.ring.push(Event {
                    iteration: self.ctx.iteration,
                    node: self.ctx.node,
                    kind: EventKind::FullScanFallback { walker },
                });
            }
        }
    }

    /// Node-level instrumentation: phase timers, the node trace ring, and
    /// the per-node histograms, assembled into a [`NodeProfile`] at the
    /// end of the run.
    pub(crate) struct NodeObs {
        enabled: bool,
        /// Live-service mode: fold phase times into run totals without
        /// per-iteration rows, so a resident loop's profile stays bounded.
        live: bool,
        iteration: u32,
        profile: NodeProfile,
        ring: EventRing,
        last_light: Option<bool>,
        exchange_total: u64,
    }

    impl NodeObs {
        pub(crate) fn new(enabled: bool, node: usize) -> Self {
            NodeObs {
                enabled,
                live: false,
                iteration: 0,
                profile: NodeProfile::new(node as u32),
                ring: EventRing::new(if enabled { NODE_RING_CAP } else { 1 }),
                last_light: None,
                exchange_total: 0,
            }
        }

        /// A profile for a resident service: everything unbounded
        /// (per-iteration timer rows) is folded instead of stored, so the
        /// loop can run for days while gauges stay scrapeable.
        pub(crate) fn new_live(enabled: bool, node: usize) -> Self {
            let mut obs = NodeObs::new(enabled, node);
            obs.live = true;
            obs
        }

        /// Cumulative nanoseconds per phase since the node started.
        pub(crate) fn phase_ns_totals(&self) -> [u64; knightking_obs::N_PHASES] {
            self.profile.timers.totals
        }

        /// Cumulative exchange bytes this node has sent since it started.
        pub(crate) fn exchange_bytes_total(&self) -> u64 {
            self.exchange_total
        }

        /// Times `f` under `phase` (runs it untimed when profiling is
        /// off).
        #[inline]
        pub(crate) fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
            if self.enabled {
                self.profile.timers.time(phase, f)
            } else {
                f()
            }
        }

        /// Folds pre-loop setup time (`Init`, `AliasBuild`) into the run
        /// totals without an iteration row.
        pub(crate) fn flush_setup(&mut self) {
            if self.enabled {
                self.profile.timers.flush_setup();
            }
        }

        /// Context handed to each chunk accumulator this iteration.
        pub(crate) fn chunk_ctx(&self) -> ChunkCtx {
            ChunkCtx {
                enabled: self.enabled,
                iteration: self.iteration,
                node: self.profile.node,
            }
        }

        /// Records the start of a BSP superstep, plus a light-mode switch
        /// event whenever the mode differs from the previous iteration
        /// (the first iteration establishes the mode and is recorded too).
        pub(crate) fn superstep(&mut self, active: u64, chunks: u64, light: bool) {
            if !self.enabled {
                return;
            }
            self.profile.active_walkers.record(active);
            self.ring.push(Event {
                iteration: self.iteration,
                node: self.profile.node,
                kind: EventKind::Superstep {
                    active,
                    chunks,
                    light,
                },
            });
            if self.last_light != Some(light) {
                self.ring.push(Event {
                    iteration: self.iteration,
                    node: self.profile.node,
                    kind: EventKind::LightModeSwitch { light, active },
                });
                self.last_light = Some(light);
            }
        }

        /// Records the remote bytes one exchange sent from this node.
        #[inline]
        pub(crate) fn record_exchange_bytes(&mut self, bytes: u64) {
            if self.enabled {
                self.profile.exchange_bytes.record(bytes);
                self.exchange_total += bytes;
            }
        }

        /// Absorbs one chunk's instrumentation, in chunk order.
        pub(crate) fn absorb(&mut self, mut chunk: ChunkObs) {
            if !self.enabled {
                return;
            }
            self.profile.walk_length.merge(&chunk.walk_length);
            self.profile.trials_per_step.merge(&chunk.trials_per_step);
            if chunk.gather_ns > 0 {
                self.profile.timers.add(Phase::Gather, chunk.gather_ns);
            }
            for e in chunk.ring.drain() {
                self.ring.push(e);
            }
            self.profile.dropped_events += chunk.ring.dropped();
        }

        /// Closes the current BSP iteration: snapshots a timer row (or, in
        /// live mode, folds it without a row) and advances the iteration
        /// counter.
        pub(crate) fn end_iteration(&mut self) {
            if self.enabled {
                if self.live {
                    self.profile.timers.flush_setup();
                } else {
                    self.profile.timers.end_iteration();
                }
            }
            self.iteration += 1;
        }

        /// Finishes the run and yields this node's profile.
        pub(crate) fn finish(mut self) -> NodeProfileOut {
            if !self.enabled {
                return None;
            }
            self.profile.events = self.ring.drain();
            self.profile.dropped_events += self.ring.dropped();
            Some(self.profile)
        }
    }
}

#[cfg(feature = "obs")]
pub(crate) use real::*;

#[cfg(not(feature = "obs"))]
mod inert {
    /// Mirror of `knightking_obs::Phase` so engine call sites compile
    /// unchanged without the dependency.
    #[allow(dead_code)]
    #[derive(Clone, Copy)]
    pub(crate) enum Phase {
        Init,
        AliasBuild,
        LocalCompute,
        Exchange,
        QueryRound,
        AnswerRound,
        LightMode,
        Finalize,
        Gather,
        Commit,
    }

    pub(crate) type NodeProfileOut = ();

    #[derive(Clone, Copy)]
    pub(crate) struct ChunkCtx;

    pub(crate) struct ChunkObs;

    impl ChunkObs {
        #[inline]
        pub(crate) fn new(_ctx: ChunkCtx) -> Self {
            ChunkObs
        }

        #[inline]
        pub(crate) fn record_trials(&mut self, _trials: u64) {}

        #[inline]
        pub(crate) fn record_gather_ns(&mut self, _ns: u64) {}

        #[inline]
        pub(crate) fn walk_finished(&mut self, _steps: u64) {}

        #[inline]
        pub(crate) fn fallback(&mut self, _walker: u64) {}
    }

    pub(crate) struct NodeObs;

    impl NodeObs {
        #[inline]
        pub(crate) fn new(_enabled: bool, _node: usize) -> Self {
            NodeObs
        }

        #[inline]
        pub(crate) fn new_live(_enabled: bool, _node: usize) -> Self {
            NodeObs
        }

        #[inline]
        pub(crate) fn phase_ns_totals(&self) -> [u64; 10] {
            [0; 10]
        }

        #[inline]
        pub(crate) fn exchange_bytes_total(&self) -> u64 {
            0
        }

        #[inline]
        pub(crate) fn time<R>(&mut self, _phase: Phase, f: impl FnOnce() -> R) -> R {
            f()
        }

        #[inline]
        pub(crate) fn flush_setup(&mut self) {}

        #[inline]
        pub(crate) fn chunk_ctx(&self) -> ChunkCtx {
            ChunkCtx
        }

        #[inline]
        pub(crate) fn superstep(&mut self, _active: u64, _chunks: u64, _light: bool) {}

        #[inline]
        pub(crate) fn record_exchange_bytes(&mut self, _bytes: u64) {}

        #[inline]
        pub(crate) fn absorb(&mut self, _chunk: ChunkObs) {}

        #[inline]
        pub(crate) fn end_iteration(&mut self) {}

        #[inline]
        pub(crate) fn finish(self) -> NodeProfileOut {}
    }
}

#[cfg(not(feature = "obs"))]
pub(crate) use inert::*;
