//! Second-order execution: the two-round query protocol (§5.1).
//!
//! Each iteration implements the paper's five steps:
//!
//! 1. walkers generate candidate edges and perform preliminary screening
//!    (pre-acceptance below `L(v)`, locally-resolvable `Pd` cases);
//! 2. walkers issue walker-to-vertex state queries for candidates whose
//!    `Pd` depends on another vertex's state;
//! 3. all nodes process received queries and send back results;
//! 4. walkers retrieve their query results;
//! 5. walkers decide the sampling outcome and move if successful —
//!    rejected walkers stay put and retry next iteration (the straggler
//!    behaviour §6.2 discusses).
//!
//! Three all-to-all exchanges carry this: queries (+ early moves),
//! answers, then late moves.
//!
//! A walker that exhausts `max_local_trials` darts switches to an exact
//! distributed **full scan**: it queries the state of every out-edge in
//! windows of [`FULL_SCAN_WINDOW`](super::FULL_SCAN_WINDOW) per iteration,
//! accumulates the true `Ps·Pd` of each edge, then either samples from the
//! exact distribution or — if the total mass is zero — terminates, which
//! is how "no out edges with positive transition probability" (§2.2) is
//! detected without sacrificing exactness.

use knightking_cluster::Scheduler;
use knightking_net::Transport;
use knightking_sampling::CdfTable;

use crate::{
    config::StepEngine,
    metrics::WalkMetrics,
    program::{WalkObserver, WalkerProgram},
    result::PathEntry,
};

use super::{
    instrument::{NodeObs, Phase},
    local_step, merge_accs, msg_wire_bytes, post_query, run_chunk_interleaved, ChunkAcc,
    FinishedWalk, FullScanState, Msg, NodeRt, Slot, SlotState, StepOutcome, FULL_SCAN_WINDOW,
};

/// Runs one second-order BSP iteration on this node.
#[allow(clippy::too_many_arguments)]
pub(super) fn iteration<P: WalkerProgram, O: WalkObserver<P::Data>, T: Transport<Msg<P>>>(
    rt: &NodeRt<'_, P, O>,
    ctx: &mut T,
    scheduler: &Scheduler,
    slots: &mut Vec<Slot<P>>,
    paths: &mut Vec<PathEntry>,
    finished: &mut Vec<FinishedWalk>,
    metrics: &mut WalkMetrics,
    obs_acc: &mut O::Acc,
    prof: &mut NodeObs,
) {
    let n = ctx.n_nodes();

    let light = scheduler.is_light(slots.len());
    prof.superstep(
        slots.len() as u64,
        scheduler.chunk_count(slots.len()) as u64,
        light,
    );
    let compute_phase = if light {
        Phase::LightMode
    } else {
        Phase::LocalCompute
    };
    let obs_ctx = prof.chunk_ctx();

    // ---- Phase A: candidates, screening, queries (steps 1-2). ----
    let accs = prof.time(compute_phase, || {
        scheduler.run_chunks(
            slots,
            || ChunkAcc::new(n, rt.observer, obs_ctx),
            |base, slice, acc| {
                let handle = |slot: &mut Slot<P>, idx: u32, acc: &mut ChunkAcc<P, O>| {
                    if matches!(slot.state, SlotState::Active { .. }) {
                        phase_a_active(rt, slot, idx, acc);
                    } else if matches!(slot.state, SlotState::FullScan(_)) {
                        post_scan_queries(rt, slot, idx, acc);
                    } else {
                        unreachable!("awaiting/departed/finished slots cannot start an iteration")
                    }
                };
                match rt.cfg.step_engine {
                    StepEngine::Scalar => {
                        for (i, slot) in slice.iter_mut().enumerate() {
                            handle(slot, (base + i) as u32, acc);
                        }
                    }
                    // No block sort: answers address slots positionally,
                    // and reordering would also reorder posted queries.
                    engine @ StepEngine::Interleaved { .. } => run_chunk_interleaved(
                        rt,
                        slice,
                        base,
                        acc,
                        engine.ring(),
                        false,
                        |_| true,
                        handle,
                    ),
                }
            },
        )
    });
    let outbox = merge_accs(
        rt.observer,
        accs,
        n,
        paths,
        finished,
        metrics,
        obs_acc,
        prof,
    );

    // ---- Exchange 1: queries out, early moves along for the ride. ----
    let (inbox, q_stats) = prof.time(Phase::QueryRound, || {
        ctx.exchange_with_stats(outbox, &msg_wire_bytes::<P>)
    });
    prof.record_exchange_bytes(q_stats.sent_bytes);
    let mut arrivals: Vec<Slot<P>> = Vec::new();
    let mut queries: Vec<(u32, u32, u32, knightking_graph::VertexId, u64, P::Query)> = Vec::new();
    for msg in inbox {
        match msg {
            Msg::Move(walker) => arrivals.push(Slot {
                walker,
                state: SlotState::fresh(),
            }),
            Msg::Query {
                from,
                slot,
                tag,
                target,
                epoch,
                payload,
            } => queries.push((from, slot, tag, target, epoch, payload)),
            Msg::Answer { .. } => unreachable!("no answers in the query round"),
        }
    }

    // ---- Step 3: execute queries at the owned vertices. ----
    let answer_outbox = prof.time(Phase::QueryRound, || {
        let answer_accs = scheduler.run_chunks(
            &mut queries,
            || -> Vec<Vec<Msg<P>>> { (0..n).map(|_| Vec::new()).collect() },
            |_base, slice, acc| {
                // Same two-distance lookahead as the walker pipeline:
                // query targets arrive in partition-random order, so each
                // one's adjacency row is a likely miss.
                let d1 = rt.cfg.step_engine.ring();
                let d2 = (d1 / 2).max(1);
                for k in 0..slice.len() {
                    if d1 > 0 {
                        if let Some(&(_, _, _, t, _, _)) = slice.get(k + d1) {
                            rt.graph.prefetch_row_bounds(t);
                        }
                        if let Some(&(_, _, _, t, ep, _)) = slice.get(k + d2) {
                            rt.graph.at(ep).prefetch_row_payload(t);
                        }
                    }
                    let (from, slot, tag, target, epoch, payload) = slice[k];
                    debug_assert_eq!(rt.partition.owner(target), rt.me);
                    // Answer against the asking walker's snapshot, not
                    // this node's build epoch.
                    let answer = rt
                        .program
                        .answer_query(&rt.graph.at(epoch), target, payload);
                    acc[from as usize].push(Msg::Answer {
                        slot,
                        tag,
                        payload: answer,
                    });
                }
            },
        );
        let mut answer_outbox: Vec<Vec<Msg<P>>> = (0..n).map(|_| Vec::new()).collect();
        for mut acc in answer_accs {
            for (to, msgs) in acc.iter_mut().enumerate() {
                answer_outbox[to].append(msgs);
            }
        }
        answer_outbox
    });

    // ---- Exchange 2 + step 4: answers come back. ----
    let (answers, a_stats) = prof.time(Phase::AnswerRound, || {
        ctx.exchange_with_stats(answer_outbox, &msg_wire_bytes::<P>)
    });
    prof.record_exchange_bytes(a_stats.sent_bytes);
    prof.time(Phase::AnswerRound, || {
        for msg in answers {
            let Msg::Answer { slot, tag, payload } = msg else {
                unreachable!("only answers in the answer round")
            };
            match &mut slots[slot as usize].state {
                SlotState::Awaiting { edge, answer, .. } => {
                    debug_assert_eq!(*edge, tag);
                    *answer = Some(payload);
                }
                SlotState::FullScan(scan) => scan.received.push((tag, payload)),
                _ => unreachable!("answer addressed to a slot that asked nothing"),
            }
        }
    });

    // ---- Phase B (step 5): decide outcomes; movers move. Timed as its
    // own `Commit` phase so the answer-application cost of second-order
    // walks is visible separately from phase A's sampling. ----
    let accs = prof.time(Phase::Commit, || {
        scheduler.run_chunks(
            slots,
            || ChunkAcc::new(n, rt.observer, obs_ctx),
            |base, slice, acc| {
                let handle = |slot: &mut Slot<P>, _idx: u32, acc: &mut ChunkAcc<P, O>| {
                    let answered = match &slot.state {
                        SlotState::Awaiting {
                            edge,
                            y,
                            answer: Some(a),
                            stuck,
                        } => Some((*edge, *y, *a, *stuck)),
                        SlotState::Awaiting { answer: None, .. } => {
                            unreachable!("every posted query is answered in its iteration")
                        }
                        _ => None,
                    };
                    if let Some((edge, y, a, stuck)) = answered {
                        let g = rt.graph.at(slot.walker.epoch);
                        let view = g.edge(slot.walker.current, edge as usize);
                        let pd = rt.pd(&slot.walker, view, Some(a), &mut acc.metrics);
                        if y < pd {
                            rt.commit_move(slot, view.dst, acc);
                        } else {
                            // Rejected: stuck at the current vertex until the
                            // next iteration. Too many consecutive rejections
                            // switch the walker to the exact full scan, which
                            // both bounds the retry cost and guarantees
                            // termination when the true probability mass is
                            // zero.
                            slot.state = SlotState::Active {
                                fresh: false,
                                stuck: stuck + 1,
                            };
                        }
                    } else if matches!(slot.state, SlotState::FullScan(_)) {
                        fold_scan_answers(rt, slot, acc);
                    }
                };
                match rt.cfg.step_engine {
                    StepEngine::Scalar => {
                        for (i, slot) in slice.iter_mut().enumerate() {
                            handle(slot, (base + i) as u32, acc);
                        }
                    }
                    // Only slots with phase-B work enter the pool; the
                    // scalar loop's visits to departed/finished slots are
                    // no-ops, so skipping them is identical.
                    engine @ StepEngine::Interleaved { .. } => run_chunk_interleaved(
                        rt,
                        slice,
                        base,
                        acc,
                        engine.ring(),
                        false,
                        |s| matches!(s.state, SlotState::Awaiting { .. } | SlotState::FullScan(_)),
                        handle,
                    ),
                }
            },
        )
    });
    let outbox = merge_accs(
        rt.observer,
        accs,
        n,
        paths,
        finished,
        metrics,
        obs_acc,
        prof,
    );

    // ---- Exchange 3: late moves. ----
    let (inbox, m_stats) = prof.time(Phase::Exchange, || {
        ctx.exchange_with_stats(outbox, &msg_wire_bytes::<P>)
    });
    prof.record_exchange_bytes(m_stats.sent_bytes);
    for msg in inbox {
        match msg {
            Msg::Move(walker) => arrivals.push(Slot {
                walker,
                state: SlotState::fresh(),
            }),
            _ => unreachable!("only moves in the move round"),
        }
    }

    slots.retain(|s| !matches!(s.state, SlotState::Departed | SlotState::Finished));
    slots.append(&mut arrivals);
}

/// Phase A handling of an `Active` walker: throw darts until a move, a
/// posted query, termination, or trial exhaustion.
fn phase_a_active<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slot: &mut Slot<P>,
    idx: u32,
    acc: &mut ChunkAcc<P, O>,
) {
    let SlotState::Active { stuck, .. } = slot.state else {
        unreachable!("phase_a_active requires an Active slot")
    };
    if stuck > rt.cfg.max_local_trials {
        init_full_scan(rt, slot, acc);
        post_scan_queries(rt, slot, idx, acc);
        return;
    }
    let trials_before = acc.metrics.trials;
    match local_step(rt, slot, idx, acc) {
        StepOutcome::Finished => {
            acc.metrics.finished_walkers += 1;
            slot.state = SlotState::Finished;
            acc.obs.walk_finished(slot.walker.step as u64);
            acc.finished.push(FinishedWalk {
                tag: slot.walker.tag,
                walker: slot.walker.id,
                steps: slot.walker.step,
            });
        }
        StepOutcome::Moved(dst) => {
            rt.commit_move(slot, dst, acc);
        }
        StepOutcome::Posted { edge, y } => {
            slot.state = SlotState::Awaiting {
                edge,
                y,
                answer: None,
                stuck,
            };
        }
        StepOutcome::NeedFullScan => {
            init_full_scan(rt, slot, acc);
            post_scan_queries(rt, slot, idx, acc);
        }
    }
    acc.obs.record_trials(acc.metrics.trials - trials_before);
}

/// Starts an exact full scan: pre-fills the `Ps·Pd` of every edge whose
/// `Pd` is locally computable; the rest await queried answers.
fn init_full_scan<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slot: &mut Slot<P>,
    acc: &mut ChunkAcc<P, O>,
) {
    acc.metrics.fallback_scans += 1;
    acc.obs.fallback(slot.walker.id);
    let v = slot.walker.current;
    let g = rt.graph.at(slot.walker.epoch);
    let deg = g.degree(v);
    let mut products = vec![f64::NAN; deg];
    let mut unfilled = deg;
    for (i, product) in products.iter_mut().enumerate() {
        let edge = g.edge(v, i);
        if rt.program.state_query(&slot.walker, edge).is_none() {
            let pd = rt.pd(&slot.walker, edge, None, &mut acc.metrics);
            *product = scan_product(rt, g, edge, pd);
            unfilled -= 1;
        }
    }
    slot.state = SlotState::FullScan(Box::new(FullScanState {
        products,
        received: Vec::new(),
        unfilled,
        next_unqueried: 0,
    }));
}

/// `Ps·Pd` with mixed-mode folding handled (mixed mode's `pd` already
/// includes `Ps`).
fn scan_product<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    g: crate::graphref::GraphRef<'_>,
    edge: knightking_graph::EdgeView,
    pd: f64,
) -> f64 {
    let ps = if rt.cfg.decoupled_static {
        rt.ps(g, edge)
    } else {
        1.0
    };
    (ps * pd).max(0.0)
}

/// Posts the next window of state queries for an in-progress full scan.
fn post_scan_queries<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slot: &mut Slot<P>,
    idx: u32,
    acc: &mut ChunkAcc<P, O>,
) {
    let v = slot.walker.current;
    let epoch = slot.walker.epoch;
    let g = rt.graph.at(epoch);
    let deg = g.degree(v);
    let SlotState::FullScan(scan) = &mut slot.state else {
        unreachable!("post_scan_queries requires a FullScan slot")
    };
    let mut posted = 0usize;
    let mut i = scan.next_unqueried;
    // Collect this window's queries first: `post_query` needs `&acc`
    // while `scan` borrows the slot, so stage then emit.
    let mut staged: Vec<(u32, knightking_graph::VertexId, P::Query)> = Vec::new();
    while i < deg && posted < FULL_SCAN_WINDOW {
        if scan.products[i].is_nan() {
            let edge = g.edge(v, i);
            if let Some((target, payload)) = rt.program.state_query(&slot.walker, edge) {
                staged.push((i as u32, target, payload));
                posted += 1;
            }
        }
        i += 1;
    }
    scan.next_unqueried = i;
    for (tag, target, payload) in staged {
        post_query(rt, acc, idx, target, tag, epoch, payload);
    }
}

/// Folds received answers into the scan; completes it when every edge's
/// product is known.
fn fold_scan_answers<P: WalkerProgram, O: WalkObserver<P::Data>>(
    rt: &NodeRt<'_, P, O>,
    slot: &mut Slot<P>,
    acc: &mut ChunkAcc<P, O>,
) {
    let v = slot.walker.current;
    let g = rt.graph.at(slot.walker.epoch);
    let SlotState::FullScan(scan) = &mut slot.state else {
        unreachable!("fold_scan_answers requires a FullScan slot")
    };
    let received = std::mem::take(&mut scan.received);
    // Split borrows: compute products against an immutable walker view.
    for (tag, answer) in received {
        let edge = g.edge(v, tag as usize);
        acc.metrics.edges_evaluated += 1;
        let base = rt
            .program
            .dynamic_comp(&g, &slot.walker, edge, Some(answer));
        let pd = if rt.cfg.decoupled_static {
            base
        } else {
            base * rt.program.static_comp(&g, edge)
        };
        let product = scan_product(rt, g, edge, pd);
        debug_assert!(scan.products[tag as usize].is_nan(), "duplicate answer");
        scan.products[tag as usize] = product;
        scan.unfilled -= 1;
    }
    if scan.unfilled > 0 {
        return;
    }

    // Scan complete: sample exactly or terminate on zero mass.
    acc.cdf_scratch.clear();
    let mut run = 0.0f64;
    for &p in &scan.products {
        run += p;
        acc.cdf_scratch.push(run);
    }
    if run <= 0.0 {
        acc.metrics.finished_walkers += 1;
        acc.obs.walk_finished(slot.walker.step as u64);
        acc.finished.push(FinishedWalk {
            tag: slot.walker.tag,
            walker: slot.walker.id,
            steps: slot.walker.step,
        });
        slot.state = SlotState::Finished;
        return;
    }
    let idx = CdfTable::sample_prepared(&acc.cdf_scratch, &mut slot.walker.rng);
    let dst = g.edge(v, idx).dst;
    rt.commit_move(slot, dst, acc);
}
