//! Engine configuration and walker placement.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use knightking_graph::VertexId;

/// A cooperative cancellation flag for long batch runs.
///
/// Cloning shares the flag. When [`WalkConfig::cancel`] carries a token,
/// the engine checks it once per superstep (as a collective, so every
/// node agrees) and, once cancelled, stops iterating: walkers freeze
/// where they are and the run finalizes normally — partial paths,
/// metrics, and the obs profile are all still assembled and flushed.
/// This is what lets `kk walk` turn SIGINT/SIGTERM into "drain and
/// flush" instead of dropping buffered output on the floor.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Safe to call from any thread (including a
    /// signal-watcher); idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Tokens compare by identity: two tokens are equal when they share the
/// same flag (`WalkConfig` derives `PartialEq` for config comparisons,
/// and "same config" means "same cancellation scope").
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Where walkers start (§5.2 "Initialization and termination").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkerStarts {
    /// `n` walkers placed by the paper's default strategy: walker `i`
    /// starts at vertex `i mod |V|`.
    Count(u64),
    /// One walker per vertex — the `|V|` walkers setup of §7.1.
    PerVertex,
    /// Explicit start vertices; walker `i` starts at `starts[i]`.
    Explicit(Vec<VertexId>),
}

impl WalkerStarts {
    /// Builds an explicit start list with `n` walkers placed at vertices
    /// sampled proportionally to out-degree — the natural "start from the
    /// stationary distribution" setup (§5.2 lets users supply a start
    /// *distribution*).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges but walkers were requested.
    pub fn degree_proportional(graph: &knightking_graph::CsrGraph, n: u64, seed: u64) -> Self {
        use knightking_sampling::DeterministicRng;
        if n == 0 {
            return WalkerStarts::Explicit(Vec::new());
        }
        let weights: Vec<f64> = (0..graph.vertex_count())
            .map(|v| graph.degree(v as VertexId) as f64)
            .collect();
        let cdf = knightking_sampling::CdfTable::new(&weights)
            .expect("degree-proportional starts need at least one edge");
        let mut rng = DeterministicRng::for_stream(seed, 0x57A2);
        WalkerStarts::Explicit((0..n).map(|_| cdf.sample(&mut rng) as VertexId).collect())
    }

    /// Checks every start vertex against the graph bounds, naming the
    /// first offending vertex instead of leaving the engine to hit a deep
    /// index panic later.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid start.
    pub fn validate(&self, vertex_count: usize) -> Result<(), String> {
        match self {
            WalkerStarts::Count(n) => {
                if vertex_count == 0 && *n > 0 {
                    return Err(format!(
                        "cannot start {n} walker(s): the graph has no vertices"
                    ));
                }
            }
            WalkerStarts::PerVertex => {}
            WalkerStarts::Explicit(starts) => {
                if let Some((i, &s)) = starts
                    .iter()
                    .enumerate()
                    .find(|&(_, &s)| (s as usize) >= vertex_count)
                {
                    return Err(format!(
                        "start vertex {s} (walker {i}) is out of range: the graph has \
                         {vertex_count} vertices (valid ids are 0..={})",
                        vertex_count.saturating_sub(1)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Materializes the start vertex of every walker.
    ///
    /// # Panics
    ///
    /// Panics with the [`validate`](WalkerStarts::validate) message if any
    /// start vertex is out of range (or the graph is empty but walkers
    /// were requested).
    pub fn materialize(&self, vertex_count: usize) -> Vec<VertexId> {
        if let Err(msg) = self.validate(vertex_count) {
            panic!("{msg}");
        }
        match self {
            WalkerStarts::Count(n) => (0..*n)
                .map(|i| (i % vertex_count as u64) as VertexId)
                .collect(),
            WalkerStarts::PerVertex => (0..vertex_count as VertexId).collect(),
            WalkerStarts::Explicit(starts) => starts.clone(),
        }
    }
}

/// How the intra-rank hot loop executes walker steps.
///
/// Both engines consume per-walker RNG streams in the same order and
/// produce byte-identical results; the interleaved engine only changes
/// *when* graph and sampler cache lines are touched, by issuing software
/// prefetches a fixed distance ahead of the committing walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEngine {
    /// One walker at a time, no lookahead — the original loop. Selectable
    /// for A/B runs via `KK_SCALAR_STEP=1`.
    Scalar,
    /// Stage-interleaved execution: while walker `i` samples, the CSR row
    /// bounds, edge/weight lines, and alias/max-`Ps` entries of walkers
    /// `i + ring/2` and `i + ring` are prefetched into L1.
    Interleaved {
        /// Number of in-flight walkers per thread (the prefetch distance).
        /// Clamped to at least 1; `ring == 1` degenerates to a
        /// one-ahead pipeline.
        ring: usize,
    },
}

impl StepEngine {
    /// The default engine, honoring the `KK_SCALAR_STEP` environment
    /// switch (`1`/`true` selects [`StepEngine::Scalar`]).
    pub fn from_env() -> Self {
        match std::env::var("KK_SCALAR_STEP") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => StepEngine::Scalar,
            _ => StepEngine::default(),
        }
    }

    /// The ring size (lookahead distance): 0 for the scalar engine.
    #[inline]
    pub fn ring(self) -> usize {
        match self {
            StepEngine::Scalar => 0,
            StepEngine::Interleaved { ring } => ring.max(1),
        }
    }
}

/// Eight in-flight walkers: far enough ahead to cover a DRAM miss at
/// typical per-walker sample costs, small enough to stay cache-resident.
impl Default for StepEngine {
    fn default() -> Self {
        StepEngine::Interleaved { ring: 8 }
    }
}

/// Which static-component sampler backend the engine builds per vertex.
///
/// Both backends sample the *same* distribution exactly; they differ in
/// maintenance cost under graph updates and in RNG consumption pattern,
/// so walks are byte-identical *per backend* (an alias run never matches
/// a radix run draw-for-draw, but each backend matches itself against a
/// freshly rebuilt reference at the same epoch). Backend choice is
/// config, pinned for the lifetime of a run or service — never switched
/// mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerBackend {
    /// Walker's alias method: O(1) sample, O(degree) rebuild on any
    /// weight change. Best for static graphs.
    #[default]
    Alias,
    /// Radix (power-of-two slab) factorization over a canonical segment
    /// tree: O(log degree) sample, O(log degree) per-edge reweight. Best
    /// under churn — a batch reweighting k edges costs O(k log d), not
    /// O(Σ degree).
    Radix,
}

impl SamplerBackend {
    /// Parses a CLI spelling (`alias` | `radix`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the valid spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "alias" => Ok(SamplerBackend::Alias),
            "radix" => Ok(SamplerBackend::Radix),
            other => Err(format!("unknown sampler {other:?} (alias|radix)")),
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SamplerBackend::Alias => "alias",
            SamplerBackend::Radix => "radix",
        }
    }
}

impl std::fmt::Display for SamplerBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Engine configuration.
///
/// The ablation flags (`use_lower_bound`, `use_outliers`,
/// `decoupled_static`) exist to reproduce the paper's Table 5 and
/// Figure 8; production users leave them at the defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkConfig {
    /// Number of simulated cluster nodes.
    pub n_nodes: usize,
    /// Compute threads per node (`0` = auto: available parallelism divided
    /// by `n_nodes`, at least 1).
    pub threads_per_node: usize,
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Record full walk paths (excluded from the paper's timings; cheap
    /// but memory-proportional to total steps).
    pub record_paths: bool,
    /// Light-mode threshold: a node with fewer active walkers processes
    /// them on one thread (§6.2; paper default 4000). `0` disables.
    pub light_threshold: usize,
    /// Task granularity for walkers and messages (paper default 128).
    pub chunk_size: usize,
    /// Local rejection trials before falling back to an exact full scan.
    /// The fallback guarantees liveness when all `Pd` mass is (nearly)
    /// zero — e.g. a Meta-path walker at a vertex with no matching edge
    /// type.
    pub max_local_trials: u32,
    /// Honor the program's `lower_bound` (pre-acceptance, Table 5a).
    pub use_lower_bound: bool,
    /// Honor the program's outlier declarations (appendix folding,
    /// Table 5b).
    pub use_outliers: bool,
    /// Keep `Ps` decoupled from `Pd` (Figure 8). When `false` ("mixed"
    /// mode), the engine emulates traditional samplers that fold edge
    /// weights into the dynamic component: candidates are drawn uniformly
    /// and `Pd` is multiplied by the weight, inflating the envelope by the
    /// vertex's maximum weight.
    pub decoupled_static: bool,
    /// Collect a per-run observability profile (phase timers, trace
    /// events, histograms) into `WalkResult::profile`. Only effective when
    /// the crate's `obs` feature (default on) is enabled; otherwise the
    /// flag is accepted and ignored. Profiling never changes walk results:
    /// instrumentation is accumulated per chunk and merged in chunk order,
    /// like every other engine output.
    pub profile: bool,
    /// Optional cooperative cancellation token (see [`CancelToken`]).
    /// When set, the engine spends one extra allreduce per superstep to
    /// agree on cancellation; when `None` the run pays nothing. The same
    /// token must be configured on every node of a distributed run (the
    /// check is a collective).
    pub cancel: Option<CancelToken>,
    /// Intra-rank step execution strategy (see [`StepEngine`]). Defaults
    /// to the stage-interleaved engine unless `KK_SCALAR_STEP=1` is set
    /// in the environment at config construction. Never changes results —
    /// both engines are byte-identical.
    pub step_engine: StepEngine,
    /// Sort each chunk's walkers by current-vertex cache block before
    /// stepping (first-order programs only; second-order answer routing
    /// is positional and is never reordered). Off by default: it helps
    /// when many walkers share hot vertices and hurts on uniform
    /// workloads. Byte-identity holds either way — per-walker RNG streams
    /// make trajectories order-independent, and paths/metrics are merged
    /// canonically.
    pub block_sort: bool,
    /// Static-component sampler backend (see [`SamplerBackend`]).
    /// Epoch-pinned by construction: config is immutable for the lifetime
    /// of a run or resident service, so every walker of a run samples
    /// through the same backend regardless of its admission epoch.
    pub sampler: SamplerBackend,
}

impl WalkConfig {
    /// A single-node configuration with auto threads.
    pub fn single_node(seed: u64) -> Self {
        WalkConfig::with_nodes(1, seed)
    }

    /// An `n`-node configuration with auto threads.
    pub fn with_nodes(n_nodes: usize, seed: u64) -> Self {
        WalkConfig {
            n_nodes,
            threads_per_node: 0,
            seed,
            record_paths: true,
            light_threshold: knightking_cluster::scheduler::DEFAULT_LIGHT_THRESHOLD,
            chunk_size: knightking_cluster::scheduler::DEFAULT_CHUNK,
            max_local_trials: 64,
            use_lower_bound: true,
            use_outliers: true,
            decoupled_static: true,
            profile: false,
            cancel: None,
            step_engine: StepEngine::from_env(),
            block_sort: false,
            sampler: SamplerBackend::default(),
        }
    }

    /// Resolved threads per node.
    pub fn resolved_threads(&self) -> usize {
        if self.threads_per_node > 0 {
            self.threads_per_node
        } else {
            let total = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            (total / self.n_nodes).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_proportional_favors_hubs() {
        use knightking_graph::GraphBuilder;
        let mut b = GraphBuilder::directed(3);
        // Vertex 0: degree 8; vertex 1: degree 2; vertex 2: degree 0.
        for _ in 0..8 {
            b.add_edge(0, 1);
        }
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build();
        let WalkerStarts::Explicit(starts) = WalkerStarts::degree_proportional(&g, 10_000, 1)
        else {
            panic!("expected explicit starts")
        };
        let at0 = starts.iter().filter(|&&s| s == 0).count();
        let at2 = starts.iter().filter(|&&s| s == 2).count();
        assert!(at0 > 7_500 && at0 < 8_500, "hub share {at0}");
        assert_eq!(at2, 0, "degree-0 vertex must never start a walker");
    }

    #[test]
    fn degree_proportional_zero_walkers() {
        use knightking_graph::GraphBuilder;
        let g = GraphBuilder::directed(1).build();
        assert_eq!(
            WalkerStarts::degree_proportional(&g, 0, 1),
            WalkerStarts::Explicit(Vec::new())
        );
    }

    #[test]
    fn count_uses_modulo_placement() {
        let starts = WalkerStarts::Count(7).materialize(3);
        assert_eq!(starts, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn per_vertex_places_one_each() {
        let starts = WalkerStarts::PerVertex.materialize(4);
        assert_eq!(starts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn explicit_passes_through() {
        let starts = WalkerStarts::Explicit(vec![2, 2, 0]).materialize(3);
        assert_eq!(starts, vec![2, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        WalkerStarts::Explicit(vec![5]).materialize(3);
    }

    #[test]
    fn zero_walkers_on_empty_graph_is_fine() {
        assert!(WalkerStarts::Count(0).materialize(0).is_empty());
    }

    #[test]
    fn validate_names_the_offending_vertex() {
        let err = WalkerStarts::Explicit(vec![0, 2, 9])
            .validate(3)
            .unwrap_err();
        assert!(err.contains("start vertex 9"), "{err}");
        assert!(err.contains("walker 2"), "{err}");
        assert!(err.contains("3 vertices"), "{err}");
        assert!(WalkerStarts::Explicit(vec![0, 2]).validate(3).is_ok());
        assert!(WalkerStarts::Count(5).validate(0).is_err());
        assert!(WalkerStarts::Count(0).validate(0).is_ok());
        assert!(WalkerStarts::PerVertex.validate(0).is_ok());
    }

    #[test]
    fn cancel_token_shares_state_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t2.is_cancelled());
        t.cancel();
        assert!(t2.is_cancelled());
        assert_eq!(t, t2, "clones compare equal (same flag)");
        assert_ne!(t, CancelToken::new(), "distinct tokens differ");
    }

    #[test]
    fn step_engine_ring_distances() {
        assert_eq!(StepEngine::Scalar.ring(), 0);
        assert_eq!(StepEngine::Interleaved { ring: 8 }.ring(), 8);
        assert_eq!(
            StepEngine::Interleaved { ring: 0 }.ring(),
            1,
            "ring clamps to at least one in-flight walker"
        );
        assert_eq!(StepEngine::default(), StepEngine::Interleaved { ring: 8 });
    }

    #[test]
    fn resolved_threads_positive() {
        let mut c = WalkConfig::with_nodes(64, 1);
        assert!(c.resolved_threads() >= 1);
        c.threads_per_node = 3;
        assert_eq!(c.resolved_threads(), 3);
    }
}
