#![warn(missing_docs)]

//! KnightKing: a walker-centric distributed graph random walk engine.
//!
//! This crate is the core of the KnightKing reproduction — the paper's
//! primary contribution. It provides:
//!
//! * the **unified transition probability model** (§2.2): each edge's
//!   unnormalized probability is `Ps(e) · Pd(e, v, w) · Pe(v, w)`, where
//!   users supply the static component `Ps`, the dynamic component `Pd`
//!   with upper/lower bounds and optional outlier declarations, and the
//!   termination component `Pe` — all through the [`WalkerProgram`] trait
//!   (the `edgeStaticComp` / `edgeDynamicComp` / `postStateQuery` /
//!   `dynamicCompUpperBound` / `dynamicCompLowerBound` APIs of §5.2);
//! * the **rejection-sampling execution engine** (§4): per-vertex alias
//!   tables for the static component, dart-board trials against the
//!   envelope `Q(v)`, lower-bound pre-acceptance, and outlier folding —
//!   O(1) expected cost per step regardless of vertex degree, with *exact*
//!   sampling;
//! * the **walker-centric BSP workflow** (§5.1): iterations over active
//!   walkers with walker migration across vertex partitions, and the
//!   two-round walker-to-vertex state query protocol that second-order
//!   algorithms (like node2vec) need;
//! * the system optimizations of §6: 1-D workload-balanced partitioning,
//!   chunked dynamic task scheduling, and straggler-aware light mode.
//!
//! # Quick start
//!
//! ```
//! use knightking_core::{RandomWalkEngine, WalkConfig, WalkerProgram, Walker, WalkerStarts};
//! use knightking_graph::gen;
//!
//! /// An unbiased truncated random walk of fixed length.
//! struct SimpleWalk;
//!
//! impl WalkerProgram for SimpleWalk {
//!     type Data = ();
//!     type Query = ();
//!     type Answer = ();
//!     const DYNAMIC: bool = false;
//!
//!     fn init_data(&self, _id: u64, _start: u32) {}
//!     fn should_terminate(&self, walker: &mut Walker<()>) -> bool {
//!         walker.step >= 10
//!     }
//! }
//!
//! let graph = gen::uniform_degree(100, 8, gen::GenOptions::seeded(3));
//! let result = RandomWalkEngine::new(&graph, SimpleWalk, WalkConfig::single_node(7))
//!     .run(WalkerStarts::Count(50));
//! assert_eq!(result.paths.len(), 50);
//! assert!(result.paths.iter().all(|p| p.len() == 11)); // start + 10 steps
//! ```

pub mod config;
pub mod engine;
pub mod graphref;
pub mod metrics;
pub mod program;
pub mod result;
pub mod walker;

pub use config::{CancelToken, SamplerBackend, StepEngine, WalkConfig, WalkerStarts};
pub use engine::{
    stitch_support, AdmitRequest, Directives, EpochUpdate, FinishedWalk, LiveSample, Msg,
    NoopDriver, RandomWalkEngine, SegmentSource, ServeDelta, ServeDriver, SpanEvent, SpanEventKind,
    StitchError, StitchedDriver,
};
pub use graphref::GraphRef;
pub use metrics::WalkMetrics;
pub use program::{NoopObserver, WalkObserver, WalkerProgram};
pub use result::WalkResult;
pub use walker::Walker;

// Re-export the substrate types users need to write programs.
pub use knightking_dyn::{DynConfig, DynGraph, UpdateBatch};
pub use knightking_graph::{CsrGraph, EdgeView, VertexId};
pub use knightking_net::{Transport, Wire, WireError};
pub use knightking_sampling::{rejection::OutlierSlot, DeterministicRng};

/// The observability primitives backing `WalkResult::profile` (phase
/// timers, event rings, histograms, report sinks). Present only with the
/// `obs` feature (default on).
#[cfg(feature = "obs")]
pub use knightking_obs as obs;
