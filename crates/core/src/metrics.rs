//! Per-run walk metrics.
//!
//! The paper's key machine-independent quantity is **edges per step** —
//! the average number of per-edge transition probability computations per
//! walker move (Tables 1 and 5, Figure 6). These counters are accumulated
//! locally inside scheduler chunk accumulators (no atomics on the hot
//! path) and summed across nodes at the end of a run.

/// Aggregated counters for one walk execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkMetrics {
    /// Walker moves actually taken (the denominator of edges/step).
    pub steps: u64,
    /// Dynamic component (`Pd`) evaluations (the numerator of edges/step).
    pub edges_evaluated: u64,
    /// Rejection trials (darts thrown).
    pub trials: u64,
    /// Darts pre-accepted at or below the lower bound `L(v)` — each saved
    /// a `Pd` evaluation (and, for second-order walks, a query round
    /// trip).
    pub pre_accepts: u64,
    /// Darts landing in outlier appendix areas.
    pub appendix_hits: u64,
    /// Exact full-scan fallbacks after exhausting rejection trials.
    pub fallback_scans: u64,
    /// Walker-to-vertex state queries sent.
    pub queries: u64,
    /// Walks completed.
    pub finished_walkers: u64,
    /// BSP iterations executed.
    pub iterations: u64,
    /// Per-vertex sampling structures (alias table / radix table / trial
    /// bound) rebuilt in response to dynamic graph updates. Zero on
    /// static runs.
    pub sampler_rebuilds: u64,
    /// Sampler maintenance cost in entry-edits: the vertex degree for
    /// every O(degree) rebuild, the number of edges actually touched for
    /// every O(log degree) radix point-patch. The counter that makes the
    /// alias-vs-radix maintenance asymptotics observable.
    pub sampler_rebuild_cost: u64,
    /// Precomputed segments spliced into walks by stitched execution
    /// (each splice covers up to L steps without sampling). Zero on exact
    /// runs.
    pub segments_spliced: u64,
    /// Stitched-execution pool misses: times a walker stood at a vertex
    /// whose segment pool was dry (exhausted, invalidated, or never
    /// built) and had to fall back toward exact stepping.
    pub stitch_pool_dry: u64,
    /// Exact steps actually taken by the stitched fallback path. Can be
    /// lower than `stitch_pool_dry` (a dry pool at a dead end terminates
    /// without a step); the ratio against `steps` is the stitched mode's
    /// step-work reduction.
    pub stitch_fallback_steps: u64,
}

impl WalkMetrics {
    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &WalkMetrics) {
        self.steps += other.steps;
        self.edges_evaluated += other.edges_evaluated;
        self.trials += other.trials;
        self.pre_accepts += other.pre_accepts;
        self.appendix_hits += other.appendix_hits;
        self.fallback_scans += other.fallback_scans;
        self.queries += other.queries;
        self.finished_walkers += other.finished_walkers;
        self.iterations = self.iterations.max(other.iterations);
        self.sampler_rebuilds += other.sampler_rebuilds;
        self.sampler_rebuild_cost += other.sampler_rebuild_cost;
        self.segments_spliced += other.segments_spliced;
        self.stitch_pool_dry += other.stitch_pool_dry;
        self.stitch_fallback_steps += other.stitch_fallback_steps;
    }

    /// Average `Pd` computations per walker move — the paper's
    /// "edges/step" (Table 1, Table 5, Figure 6).
    pub fn edges_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.edges_evaluated as f64 / self.steps as f64
        }
    }

    /// Average rejection trials per walker move.
    pub fn trials_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.trials as f64 / self.steps as f64
        }
    }
}

use knightking_net::{Wire, WireError};

/// Metrics travel to the leader in the end-of-run result gather of
/// multi-process runs.
impl Wire for WalkMetrics {
    fn wire_size(&self) -> usize {
        14 * 8
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        for v in [
            self.steps,
            self.edges_evaluated,
            self.trials,
            self.pre_accepts,
            self.appendix_hits,
            self.fallback_scans,
            self.queries,
            self.finished_walkers,
            self.iterations,
            self.sampler_rebuilds,
            self.sampler_rebuild_cost,
            self.segments_spliced,
            self.stitch_pool_dry,
            self.stitch_fallback_steps,
        ] {
            v.encode(out)?;
        }
        Ok(())
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(WalkMetrics {
            steps: u64::decode(input)?,
            edges_evaluated: u64::decode(input)?,
            trials: u64::decode(input)?,
            pre_accepts: u64::decode(input)?,
            appendix_hits: u64::decode(input)?,
            fallback_scans: u64::decode(input)?,
            queries: u64::decode(input)?,
            finished_walkers: u64::decode(input)?,
            iterations: u64::decode(input)?,
            sampler_rebuilds: u64::decode(input)?,
            sampler_rebuild_cost: u64::decode(input)?,
            segments_spliced: u64::decode(input)?,
            stitch_pool_dry: u64::decode(input)?,
            stitch_fallback_steps: u64::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = WalkMetrics {
            steps: 10,
            edges_evaluated: 15,
            trials: 12,
            iterations: 5,
            ..Default::default()
        };
        let b = WalkMetrics {
            steps: 5,
            edges_evaluated: 5,
            trials: 8,
            iterations: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.edges_evaluated, 20);
        assert_eq!(a.trials, 20);
        assert_eq!(a.iterations, 7);
    }

    #[test]
    fn rates_guard_division_by_zero() {
        let m = WalkMetrics::default();
        assert_eq!(m.edges_per_step(), 0.0);
        assert_eq!(m.trials_per_step(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let m = WalkMetrics {
            steps: 4,
            edges_evaluated: 6,
            trials: 8,
            ..Default::default()
        };
        assert_eq!(m.edges_per_step(), 1.5);
        assert_eq!(m.trials_per_step(), 2.0);
    }
}
