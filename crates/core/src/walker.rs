//! The walker: the unit of computation in KnightKing's walker-centric
//! model.
//!
//! Where traditional graph engines update vertex state along edges,
//! KnightKing tracks many independent walkers, each carrying its own
//! position, recent history, step count, RNG stream, and algorithm-defined
//! custom state (§5.1). Walkers are owned by the node that owns their
//! current residing vertex and migrate between nodes as messages when a
//! step crosses a partition boundary.

use std::io;

use knightking_graph::VertexId;
use knightking_net::Wire;
use knightking_sampling::DeterministicRng;

/// Marker for algorithm-defined per-walker state.
///
/// Blanket-implemented for every `Clone + Send + 'static` type; walkers
/// migrate between nodes by value, so their custom state must too.
pub trait WalkerData: Clone + Send + 'static {}
impl<T: Clone + Send + 'static> WalkerData for T {}

/// One walker.
///
/// The engine maintains the built-in fields (`current`, `prev`, `step`);
/// programs read them freely and keep anything else in `data` (§5.2,
/// "Walker state"). The `rng` field is the walker's private random stream,
/// derived from `(run_seed, id)` — every probabilistic decision about this
/// walker draws from it, which makes trajectories independent of thread
/// scheduling and node count.
#[derive(Debug, Clone)]
pub struct Walker<D> {
    /// Globally unique walker id, assigned densely from 0 at start.
    pub id: u64,
    /// The vertex the walker currently resides at.
    pub current: VertexId,
    /// The previous stop (`last(w)` in the paper); `None` before the first
    /// step. Second-order programs build their `Pd` on this.
    pub prev: Option<VertexId>,
    /// Number of steps taken so far.
    pub step: u32,
    /// Request tag: which serve-mode walk request this walker belongs to
    /// (0 for batch runs, which have no requests). Carried on the wire so
    /// distributed serving can route each finished walker's results back
    /// to the request that admitted it.
    pub tag: u64,
    /// The graph epoch this walker samples. Pinned at admission and
    /// carried on the wire, so every step of the walk — on any node —
    /// sees the same snapshot of a dynamic graph. Always 0 on static
    /// (CSR-backed) runs.
    pub epoch: u64,
    /// The walker's private random stream.
    pub rng: DeterministicRng,
    /// Algorithm-defined state (e.g. a Meta-path scheme assignment).
    pub data: D,
}

impl<D: WalkerData> Walker<D> {
    /// Creates a walker at `start` with a stream derived from
    /// `(seed, id)`.
    pub fn new(id: u64, start: VertexId, seed: u64, data: D) -> Self {
        Walker {
            id,
            current: start,
            prev: None,
            step: 0,
            tag: 0,
            epoch: 0,
            rng: DeterministicRng::for_stream(seed, id),
            data,
        }
    }

    /// Advances the walker along an accepted edge to `dst`.
    ///
    /// Updates position, history, and step count; the engine calls the
    /// program's `on_move` hook right after.
    #[inline]
    pub fn advance(&mut self, dst: VertexId) {
        self.prev = Some(self.current);
        self.current = dst;
        self.step += 1;
    }
}

/// Walkers migrate between processes on the TCP transport; the encoding
/// carries the full RNG state so a trajectory continues *exactly* where it
/// left off — this losslessness is what makes multi-process runs
/// byte-identical to in-process ones.
impl<D: WalkerData + Wire> Wire for Walker<D> {
    fn wire_size(&self) -> usize {
        self.id.wire_size()
            + self.current.wire_size()
            + self.prev.wire_size()
            + self.step.wire_size()
            + self.tag.wire_size()
            + self.epoch.wire_size()
            + self.rng.state().wire_size()
            + self.data.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), knightking_net::WireError> {
        self.id.encode(out)?;
        self.current.encode(out)?;
        self.prev.encode(out)?;
        self.step.encode(out)?;
        self.tag.encode(out)?;
        self.epoch.encode(out)?;
        self.rng.state().encode(out)?;
        self.data.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        let id = u64::decode(input)?;
        let current = VertexId::decode(input)?;
        let prev = Option::<VertexId>::decode(input)?;
        let step = u32::decode(input)?;
        let tag = u64::decode(input)?;
        let epoch = u64::decode(input)?;
        let state = <[u64; 4]>::decode(input)?;
        if state == [0; 4] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "wire: all-zero walker rng state",
            ));
        }
        let data = D::decode(input)?;
        Ok(Walker {
            id,
            current,
            prev,
            step,
            tag,
            epoch,
            rng: DeterministicRng::from_state(state),
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_walker_has_clean_state() {
        let w: Walker<()> = Walker::new(3, 17, 42, ());
        assert_eq!(w.id, 3);
        assert_eq!(w.current, 17);
        assert_eq!(w.prev, None);
        assert_eq!(w.step, 0);
        assert_eq!(w.tag, 0, "batch walkers belong to no request");
        assert_eq!(w.epoch, 0, "static runs pin the base epoch");
    }

    #[test]
    fn advance_tracks_history() {
        let mut w: Walker<()> = Walker::new(0, 5, 1, ());
        w.advance(9);
        assert_eq!(w.current, 9);
        assert_eq!(w.prev, Some(5));
        assert_eq!(w.step, 1);
        w.advance(2);
        assert_eq!(w.prev, Some(9));
        assert_eq!(w.step, 2);
    }

    #[test]
    fn rng_streams_depend_on_id_and_seed() {
        let mut a: Walker<()> = Walker::new(0, 0, 7, ());
        let mut b: Walker<()> = Walker::new(1, 0, 7, ());
        let mut c: Walker<()> = Walker::new(0, 0, 8, ());
        let (ra, rb, rc) = (a.rng.next_u64(), b.rng.next_u64(), c.rng.next_u64());
        assert_ne!(ra, rb);
        assert_ne!(ra, rc);

        // Same (seed, id) → same stream, regardless of start vertex.
        let mut d: Walker<()> = Walker::new(0, 99, 7, ());
        assert_eq!(d.rng.next_u64(), ra);
    }

    #[test]
    fn custom_data_travels_with_clone() {
        let w: Walker<Vec<u32>> = Walker::new(0, 0, 1, vec![1, 2, 3]);
        let w2 = w.clone();
        assert_eq!(w2.data, vec![1, 2, 3]);
    }

    #[test]
    fn wire_round_trip_resumes_rng_stream() {
        let mut w: Walker<(Option<VertexId>, Option<VertexId>)> =
            Walker::new(9, 4, 77, (Some(1), None));
        w.tag = 0xFEED;
        w.epoch = 3;
        w.advance(8);
        let _ = w.rng.next_u64(); // advance the stream past its origin
        let bytes = knightking_net::to_bytes(&w).unwrap();
        assert_eq!(bytes.len(), w.wire_size());
        let mut back: Walker<(Option<VertexId>, Option<VertexId>)> =
            knightking_net::from_bytes(&bytes).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.current, 8);
        assert_eq!(back.prev, Some(4));
        assert_eq!(back.step, 1);
        assert_eq!(back.tag, 0xFEED);
        assert_eq!(back.epoch, 3);
        assert_eq!(back.data, (Some(1), None));
        // The decoded walker continues the exact same random stream.
        assert_eq!(back.rng.next_u64(), w.rng.next_u64());
    }

    #[test]
    fn wire_rejects_zero_rng_state() {
        let w: Walker<()> = Walker::new(0, 0, 1, ());
        let mut bytes = knightking_net::to_bytes(&w).unwrap();
        // Zero out the 32-byte rng state (after id, current, prev, step,
        // tag, epoch).
        let off = 8 + 4 + w.prev.wire_size() + 4 + 8 + 8;
        bytes[off..off + 32].fill(0);
        let err = knightking_net::from_bytes::<Walker<()>>(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
