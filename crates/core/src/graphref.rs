//! [`GraphRef`]: the engine's view of a graph — static CSR or a pinned
//! epoch of a dynamic graph.
//!
//! The execution engine and every [`WalkerProgram`] hook read the graph
//! through this enum. For a static run it is a transparent wrapper over
//! [`CsrGraph`] (one match on a `Copy` value per accessor — the CSR hot
//! path is unchanged). For a dynamic run it carries a
//! [`DynGraph`] plus a **pinned epoch**, and every accessor resolves at
//! that epoch: re-pinning with [`GraphRef::at`] is how the engine gives
//! each walker the snapshot current at its admission, which is what keeps
//! an in-flight walk byte-identical to a batch walk on the materialized
//! graph at that epoch while updates land underneath it.
//!
//! [`WalkerProgram`]: crate::WalkerProgram

use knightking_dyn::DynGraph;
use knightking_graph::{CsrGraph, EdgeView, VertexId};

/// A borrowed graph: a static CSR, or a dynamic graph pinned at an epoch.
///
/// `Copy`: pass it around by value; [`at`](GraphRef::at) re-pins cheaply.
#[derive(Clone, Copy)]
pub enum GraphRef<'g> {
    /// An immutable CSR graph. Epoch is always 0.
    Csr(&'g CsrGraph),
    /// A dynamic graph read at a pinned epoch.
    Dyn {
        /// The epoch-versioned graph.
        graph: &'g DynGraph,
        /// The epoch every accessor resolves at.
        epoch: u64,
    },
}

impl<'g> From<&'g CsrGraph> for GraphRef<'g> {
    fn from(g: &'g CsrGraph) -> Self {
        GraphRef::Csr(g)
    }
}

/// Pins the dynamic graph's *current* epoch at conversion time.
impl<'g> From<&'g DynGraph> for GraphRef<'g> {
    fn from(g: &'g DynGraph) -> Self {
        GraphRef::Dyn {
            graph: g,
            epoch: g.epoch(),
        }
    }
}

impl<'g> GraphRef<'g> {
    /// Re-pins to `epoch`. A no-op for CSR graphs (their only epoch is 0).
    #[inline]
    pub fn at(self, epoch: u64) -> Self {
        match self {
            GraphRef::Csr(g) => GraphRef::Csr(g),
            GraphRef::Dyn { graph, .. } => GraphRef::Dyn { graph, epoch },
        }
    }

    /// The pinned epoch (0 for CSR graphs).
    #[inline]
    pub fn epoch(self) -> u64 {
        match self {
            GraphRef::Csr(_) => 0,
            GraphRef::Dyn { epoch, .. } => epoch,
        }
    }

    /// The CSR, if this is a static graph.
    #[inline]
    pub fn as_csr(self) -> Option<&'g CsrGraph> {
        match self {
            GraphRef::Csr(g) => Some(g),
            GraphRef::Dyn { .. } => None,
        }
    }

    /// The dynamic graph, if this is one.
    #[inline]
    pub fn dyn_graph(self) -> Option<&'g DynGraph> {
        match self {
            GraphRef::Csr(_) => None,
            GraphRef::Dyn { graph, .. } => Some(graph),
        }
    }

    /// The underlying CSR: the graph itself when static, the epoch-0 base
    /// when dynamic. Partitioning is computed from this — ownership must
    /// not shift under in-flight walkers, so it binds to the base even as
    /// epochs advance.
    #[inline]
    pub fn base_csr(self) -> &'g CsrGraph {
        match self {
            GraphRef::Csr(g) => g,
            GraphRef::Dyn { graph, .. } => graph.base(),
        }
    }

    /// Number of vertices (epoch-independent: updates mutate edges only).
    #[inline]
    pub fn vertex_count(self) -> usize {
        self.base_csr().vertex_count()
    }

    /// Whether edges carry weights.
    #[inline]
    pub fn is_weighted(self) -> bool {
        self.base_csr().is_weighted()
    }

    /// Whether edges carry types.
    #[inline]
    pub fn is_typed(self) -> bool {
        self.base_csr().is_typed()
    }

    /// Out-degree of `v` at the pinned epoch.
    #[inline]
    pub fn degree(self, v: VertexId) -> usize {
        match self {
            GraphRef::Csr(g) => g.degree(v),
            GraphRef::Dyn { graph, epoch } => graph.degree_at(v, epoch),
        }
    }

    /// The `i`-th out-edge of `v` at the pinned epoch.
    #[inline]
    pub fn edge(self, v: VertexId, i: usize) -> EdgeView {
        match self {
            GraphRef::Csr(g) => g.edge(v, i),
            GraphRef::Dyn { graph, epoch } => graph.edge_at(v, i, epoch),
        }
    }

    /// Index range of the out-edges of `v` targeting `x` (empty when
    /// absent). Adjacency is destination-sorted at every epoch.
    #[inline]
    pub fn edge_range(self, v: VertexId, x: VertexId) -> std::ops::Range<usize> {
        match self {
            GraphRef::Csr(g) => g.edge_range(v, x),
            GraphRef::Dyn { graph, epoch } => graph.edge_range_at(v, x, epoch),
        }
    }

    /// Whether `v -> x` exists at the pinned epoch — the O(log d)
    /// membership probe second-order programs answer queries with.
    #[inline]
    pub fn has_edge(self, v: VertexId, x: VertexId) -> bool {
        match self {
            GraphRef::Csr(g) => g.has_edge(v, x),
            GraphRef::Dyn { graph, epoch } => graph.has_edge_at(v, x, epoch),
        }
    }

    /// Index of the first out-edge of `v` targeting `x`.
    #[inline]
    pub fn find_edge(self, v: VertexId, x: VertexId) -> Option<usize> {
        match self {
            GraphRef::Csr(g) => g.find_edge(v, x),
            GraphRef::Dyn { graph, epoch } => graph.find_edge_at(v, x, epoch),
        }
    }

    /// Sum of out-edge weights of `v` (1.0 per edge when unweighted).
    #[inline]
    pub fn weight_sum(self, v: VertexId) -> f64 {
        match self {
            GraphRef::Csr(g) => g.weight_sum(v),
            GraphRef::Dyn { graph, epoch } => graph.weight_sum_at(v, epoch),
        }
    }

    /// Hints the CPU to warm the CSR offsets entry of `v` — the first
    /// cache line the next step of a walker at `v` will touch. Purely a
    /// performance hint: never reads graph data, never faults, never
    /// blocks (the dynamic path prefetches the lock-free base only at
    /// this distance).
    #[inline]
    pub fn prefetch_row_bounds(self, v: VertexId) {
        match self {
            GraphRef::Csr(g) => g.prefetch_row_bounds(v),
            GraphRef::Dyn { graph, .. } => graph.base().prefetch_row_bounds(v),
        }
    }

    /// Hints the CPU to warm the adjacency payload of `v`: edge targets
    /// and weights on the static path, plus the overlay row (via a
    /// non-blocking `try_read`) on the dynamic path. Reads only immutable
    /// row *bounds* — issuing it early never changes results.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (same contract as
    /// [`degree`](GraphRef::degree)).
    #[inline]
    pub fn prefetch_row_payload(self, v: VertexId) {
        match self {
            GraphRef::Csr(g) => g.prefetch_row_payload(v),
            GraphRef::Dyn { graph, epoch } => graph.prefetch_row_at(v, epoch),
        }
    }

    /// Walks the out-edges of `v` in index order. One virtual-free lock
    /// acquisition per vertex on the dynamic path, against per-edge
    /// resolution with [`edge`](GraphRef::edge).
    #[inline]
    pub fn for_each_edge(self, v: VertexId, f: impl FnMut(EdgeView)) {
        match self {
            GraphRef::Csr(g) => {
                let mut f = f;
                for e in g.edges(v) {
                    f(e);
                }
            }
            GraphRef::Dyn { graph, epoch } => graph.for_each_edge_at(v, epoch, f),
        }
    }
}

impl std::fmt::Debug for GraphRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphRef::Csr(g) => f
                .debug_struct("GraphRef::Csr")
                .field("vertices", &g.vertex_count())
                .field("edges", &g.edge_count())
                .finish(),
            GraphRef::Dyn { graph, epoch } => f
                .debug_struct("GraphRef::Dyn")
                .field("vertices", &graph.vertex_count())
                .field("epoch", epoch)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_dyn::{DynConfig, EdgeAdd, UpdateBatch};
    use knightking_graph::GraphBuilder;

    fn base() -> CsrGraph {
        let mut b = GraphBuilder::directed(3).with_weights();
        b.add_weighted_edge(0, 1, 2.0);
        b.add_weighted_edge(0, 2, 3.0);
        b.add_weighted_edge(1, 0, 1.0);
        b.build()
    }

    #[test]
    fn csr_ref_is_transparent() {
        let g = base();
        let r = GraphRef::from(&g);
        assert_eq!(r.epoch(), 0);
        assert_eq!(r.vertex_count(), 3);
        assert_eq!(r.degree(0), 2);
        assert_eq!(r.edge(0, 1).dst, 2);
        assert!(r.has_edge(0, 1));
        assert_eq!(r.find_edge(1, 0), Some(0));
        assert_eq!(r.weight_sum(0), 5.0);
        assert!(r.as_csr().is_some());
        assert!(r.dyn_graph().is_none());
        // at() is a no-op for CSR graphs.
        assert_eq!(r.at(99).epoch(), 0);
    }

    #[test]
    fn prefetch_hints_are_inert() {
        let g = base();
        let r = GraphRef::from(&g);
        r.prefetch_row_bounds(0);
        r.prefetch_row_payload(2);
        // Out-of-range bounds prefetch must not fault (it is issued at a
        // longer lookahead distance than the payload prefetch, before the
        // walker is known to be live).
        r.prefetch_row_bounds(999);
        let d = DynGraph::new(base(), DynConfig::default());
        let rd = GraphRef::from(&d);
        rd.prefetch_row_bounds(1);
        rd.prefetch_row_payload(1);
        assert_eq!(rd.degree(0), 2, "hints never change reads");
    }

    #[test]
    fn dyn_ref_pins_and_repins_epochs() {
        let d = DynGraph::new(base(), DynConfig::default());
        let r0 = GraphRef::from(&d);
        assert_eq!(r0.epoch(), 0);
        d.apply(&UpdateBatch {
            adds: vec![EdgeAdd {
                src: 0,
                dst: 0,
                weight: 4.0,
                edge_type: 0,
            }],
            dels: vec![],
            reweights: vec![],
        })
        .unwrap();
        // The old pin still reads the old snapshot.
        assert_eq!(r0.degree(0), 2);
        assert_eq!(r0.weight_sum(0), 5.0);
        // A fresh pin (or a re-pin) sees the update.
        let r1 = GraphRef::from(&d);
        assert_eq!(r1.epoch(), 1);
        assert_eq!(r1.degree(0), 3);
        assert_eq!(r0.at(1).weight_sum(0), 9.0);
        let mut dsts = Vec::new();
        r1.for_each_edge(0, |e| dsts.push(e.dst));
        assert_eq!(dsts, vec![0, 1, 2]);
        assert_eq!(r1.base_csr().degree(0), 2);
    }
}
