//! Walk results: reassembled paths, per-iteration activity, metrics.

use knightking_graph::VertexId;
use knightking_net::{Wire, WireError};

use crate::metrics::WalkMetrics;

/// One recorded path entry: walker `walker` stood at `vertex` after
/// `step` steps. Nodes record entries locally as walkers pass through
/// (mirroring the paper's per-node walking trace collection); the engine
/// reassembles full paths at the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// Walker id.
    pub walker: u64,
    /// Step index (0 = start vertex).
    pub step: u32,
    /// Vertex visited.
    pub vertex: VertexId,
}

/// Path fragments travel to the leader in the end-of-run result gather of
/// multi-process runs.
impl Wire for PathEntry {
    fn wire_size(&self) -> usize {
        8 + 4 + 4
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.walker.encode(out)?;
        self.step.encode(out)?;
        self.vertex.encode(out)
    }
    fn decode(input: &mut &[u8]) -> std::io::Result<Self> {
        Ok(PathEntry {
            walker: u64::decode(input)?,
            step: u32::decode(input)?,
            vertex: VertexId::decode(input)?,
        })
    }
}

/// The outcome of one engine run.
#[derive(Debug, Clone)]
pub struct WalkResult {
    /// Full walk sequences indexed by walker id; empty when path recording
    /// is disabled.
    pub paths: Vec<Vec<VertexId>>,
    /// Number of walkers still active after each BSP iteration — the
    /// series behind the paper's Figure 5 tail-behavior plot.
    pub active_per_iteration: Vec<u64>,
    /// Aggregated counters.
    pub metrics: WalkMetrics,
    /// Inter-node communication volume (remote messages, bytes,
    /// exchanges) over the whole run.
    pub comm: knightking_cluster::metrics::MetricCounts,
    /// Wall-clock duration of the walk phase (initialization of walkers
    /// and sampling structures included; graph loading and partitioning
    /// excluded — matching the paper's §7.1 methodology).
    pub elapsed: std::time::Duration,
    /// Observability profile of the run (phase timers, trace events,
    /// histograms per node); `Some` only when `WalkConfig::profile` was
    /// set. Render it with `RunProfile::render_table` or
    /// `RunProfile::write_jsonl`.
    #[cfg(feature = "obs")]
    pub profile: Option<knightking_obs::RunProfile>,
}

impl WalkResult {
    /// Dumps the recorded walk sequences as plain text, one walk per
    /// line, vertices space-separated — the corpus format SkipGram-style
    /// consumers (word2vec, gensim) ingest directly.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_paths<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        let mut out = std::io::BufWriter::new(writer);
        for path in &self.paths {
            let mut first = true;
            for &v in path {
                if !first {
                    write!(out, " ")?;
                }
                write!(out, "{v}")?;
                first = false;
            }
            writeln!(out)?;
        }
        use std::io::Write as _;
        out.flush()
    }

    /// Reassembles per-walker paths from unordered per-node fragments.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if fragments contain duplicate
    /// `(walker, step)` pairs or leave gaps — both would indicate an
    /// engine bug.
    pub fn assemble_paths(n_walkers: u64, mut fragments: Vec<PathEntry>) -> Vec<Vec<VertexId>> {
        let mut lens = vec![0u32; n_walkers as usize];
        for e in &fragments {
            let l = &mut lens[e.walker as usize];
            *l = (*l).max(e.step + 1);
        }
        let mut paths: Vec<Vec<VertexId>> = lens
            .iter()
            .map(|&l| vec![VertexId::MAX; l as usize])
            .collect();
        fragments.sort_unstable_by_key(|e| (e.walker, e.step));
        for e in fragments {
            let slot = &mut paths[e.walker as usize][e.step as usize];
            debug_assert_eq!(*slot, VertexId::MAX, "duplicate path entry");
            *slot = e.vertex;
        }
        for (w, p) in paths.iter().enumerate() {
            debug_assert!(
                p.iter().all(|&v| v != VertexId::MAX),
                "gap in path of walker {w}"
            );
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_interleaved_fragments() {
        let frags = vec![
            PathEntry {
                walker: 1,
                step: 1,
                vertex: 30,
            },
            PathEntry {
                walker: 0,
                step: 0,
                vertex: 10,
            },
            PathEntry {
                walker: 1,
                step: 0,
                vertex: 20,
            },
            PathEntry {
                walker: 0,
                step: 2,
                vertex: 12,
            },
            PathEntry {
                walker: 0,
                step: 1,
                vertex: 11,
            },
        ];
        let paths = WalkResult::assemble_paths(2, frags);
        assert_eq!(paths[0], vec![10, 11, 12]);
        assert_eq!(paths[1], vec![20, 30]);
    }

    #[test]
    fn walkers_without_fragments_get_empty_paths() {
        let paths = WalkResult::assemble_paths(
            3,
            vec![PathEntry {
                walker: 1,
                step: 0,
                vertex: 5,
            }],
        );
        assert!(paths[0].is_empty());
        assert_eq!(paths[1], vec![5]);
        assert!(paths[2].is_empty());
    }

    #[test]
    fn empty_input() {
        let paths = WalkResult::assemble_paths(0, Vec::new());
        assert!(paths.is_empty());
    }

    #[test]
    fn write_paths_is_one_walk_per_line() {
        let r = WalkResult {
            paths: vec![vec![1, 2, 3], vec![], vec![7]],
            active_per_iteration: Vec::new(),
            metrics: crate::metrics::WalkMetrics::default(),
            comm: Default::default(),
            elapsed: std::time::Duration::ZERO,
            #[cfg(feature = "obs")]
            profile: None,
        };
        let mut buf = Vec::new();
        r.write_paths(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1 2 3\n\n7\n");
    }

    #[test]
    #[should_panic(expected = "duplicate path entry")]
    #[cfg(debug_assertions)]
    fn duplicate_entries_caught() {
        WalkResult::assemble_paths(
            1,
            vec![
                PathEntry {
                    walker: 0,
                    step: 0,
                    vertex: 1,
                },
                PathEntry {
                    walker: 0,
                    step: 0,
                    vertex: 2,
                },
            ],
        );
    }
}
