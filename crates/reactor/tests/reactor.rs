//! End-to-end reactor tests over real loopback sockets: a trivial
//! length-free echo protocol exercises accept, edge-triggered reads,
//! buffered writes, cross-thread sends, idle eviction, the connection
//! cap, and drain-then-exit.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use knightking_reactor::{
    CloseReason, ConnHandler, ConnIo, Reactor, ReactorConfig, ReactorHandle, Token,
};

/// Echoes every byte back; `closes` reports each close reason.
struct Echo {
    closes: mpsc::Sender<(Token, CloseReason)>,
}

impl ConnHandler for Echo {
    type Conn = ();

    fn on_open(&mut self, _token: Token, _peer: SocketAddr) -> Self::Conn {}

    fn on_data(
        &mut self,
        io: &mut ConnIo<'_>,
        _conn: &mut Self::Conn,
        input: &mut Vec<u8>,
    ) -> std::io::Result<()> {
        io.send(input);
        input.clear();
        Ok(())
    }

    fn on_close(&mut self, token: Token, _conn: Self::Conn, reason: CloseReason) {
        let _ = self.closes.send((token, reason));
    }
}

struct Running {
    addr: SocketAddr,
    handle: ReactorHandle,
    closes: mpsc::Receiver<(Token, CloseReason)>,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

fn spawn_echo(cfg: ReactorConfig) -> Running {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (tx, rx) = mpsc::channel();
    let reactor = Reactor::new(listener, cfg, |_handle| Echo { closes: tx }).unwrap();
    let handle = reactor.handle();
    let thread = thread::spawn(move || reactor.run());
    Running {
        addr,
        handle,
        closes: rx,
        thread,
    }
}

fn read_exact_timeout(stream: &mut TcpStream, n: usize) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf).unwrap();
    buf
}

#[test]
fn echoes_across_many_connections() {
    let r = spawn_echo(ReactorConfig::default());
    let mut conns: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(r.addr).unwrap())
        .collect();
    for (i, c) in conns.iter_mut().enumerate() {
        let msg = format!("hello from client {i}");
        c.write_all(msg.as_bytes()).unwrap();
        let back = read_exact_timeout(c, msg.len());
        assert_eq!(back, msg.into_bytes());
    }
    // Interleave a second round in reverse order: connections are
    // independent and long-lived.
    for (i, c) in conns.iter_mut().enumerate().rev() {
        let msg = format!("round two {i}");
        c.write_all(msg.as_bytes()).unwrap();
        assert_eq!(read_exact_timeout(c, msg.len()), msg.into_bytes());
    }
    drop(conns);
    r.handle.stop();
    r.thread.join().unwrap().unwrap();
}

#[test]
fn one_byte_chunks_accumulate() {
    let r = spawn_echo(ReactorConfig::default());
    let mut c = TcpStream::connect(r.addr).unwrap();
    c.set_nodelay(true).unwrap();
    let msg = b"trickled";
    for &b in msg.iter() {
        c.write_all(&[b]).unwrap();
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(read_exact_timeout(&mut c, msg.len()), msg.to_vec());
    r.handle.stop();
    r.thread.join().unwrap().unwrap();
}

#[test]
fn peer_close_reaches_handler() {
    let r = spawn_echo(ReactorConfig::default());
    let c = TcpStream::connect(r.addr).unwrap();
    // Ensure the connection is fully established server-side first.
    thread::sleep(Duration::from_millis(50));
    drop(c);
    let (_token, reason) = r.closes.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(
        matches!(reason, CloseReason::PeerClosed),
        "expected PeerClosed, got {reason:?}"
    );
    r.handle.stop();
    r.thread.join().unwrap().unwrap();
}

#[test]
fn idle_connections_are_evicted() {
    let r = spawn_echo(ReactorConfig {
        idle_timeout: Duration::from_millis(200),
        ..ReactorConfig::default()
    });
    // A half-open peer: connects, says nothing, never reads.
    let mut c = TcpStream::connect(r.addr).unwrap();
    let start = Instant::now();
    let (_token, reason) = r.closes.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(
        matches!(reason, CloseReason::IdleTimeout),
        "expected IdleTimeout, got {reason:?}"
    );
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(150),
        "evicted too early: {waited:?}"
    );
    // The client observes EOF.
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(c.read(&mut buf).unwrap(), 0);
    r.handle.stop();
    r.thread.join().unwrap().unwrap();
}

#[test]
fn active_connections_survive_idle_sweeps() {
    let r = spawn_echo(ReactorConfig {
        idle_timeout: Duration::from_millis(300),
        ..ReactorConfig::default()
    });
    let mut c = TcpStream::connect(r.addr).unwrap();
    // Keep touching the connection for several timeout windows.
    for i in 0..10u32 {
        let msg = format!("beat {i}");
        c.write_all(msg.as_bytes()).unwrap();
        assert_eq!(read_exact_timeout(&mut c, msg.len()), msg.into_bytes());
        thread::sleep(Duration::from_millis(100));
    }
    assert!(
        r.closes.try_recv().is_err(),
        "an active connection was evicted"
    );
    r.handle.stop();
    r.thread.join().unwrap().unwrap();
}

#[test]
fn cross_thread_send_reaches_client() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (tok_tx, tok_rx) = mpsc::channel();

    struct Opens {
        tx: mpsc::Sender<Token>,
    }
    impl ConnHandler for Opens {
        type Conn = ();
        fn on_open(&mut self, token: Token, _peer: SocketAddr) -> Self::Conn {
            let _ = self.tx.send(token);
        }
        fn on_data(
            &mut self,
            _io: &mut ConnIo<'_>,
            _conn: &mut Self::Conn,
            input: &mut Vec<u8>,
        ) -> std::io::Result<()> {
            input.clear();
            Ok(())
        }
        fn on_close(&mut self, _token: Token, _conn: Self::Conn, _reason: CloseReason) {}
    }

    let reactor = Reactor::new(listener, ReactorConfig::default(), |_h| Opens {
        tx: tok_tx,
    })
    .unwrap();
    let handle = reactor.handle();
    let t = thread::spawn(move || reactor.run());

    let mut c = TcpStream::connect(addr).unwrap();
    let token = tok_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    // Push from this thread, not the poller thread — the wake-pipe path.
    handle.send(token, b"pushed from afar".to_vec());
    assert_eq!(read_exact_timeout(&mut c, 16), b"pushed from afar".to_vec());

    // A send to a closed connection must be inert, not a crash.
    drop(c);
    thread::sleep(Duration::from_millis(100));
    handle.send(token, b"into the void".to_vec());

    handle.stop();
    t.join().unwrap().unwrap();
}

#[test]
fn connection_cap_sheds_excess() {
    let r = spawn_echo(ReactorConfig {
        max_connections: 4,
        ..ReactorConfig::default()
    });
    let mut kept: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(r.addr).unwrap())
        .collect();
    // Make sure all four are registered before over-subscribing.
    for (i, c) in kept.iter_mut().enumerate() {
        let msg = format!("in {i}");
        c.write_all(msg.as_bytes()).unwrap();
        assert_eq!(read_exact_timeout(c, msg.len()), msg.into_bytes());
    }
    // The fifth is accepted then immediately closed: EOF, not a hang.
    let mut extra = TcpStream::connect(r.addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1];
    match extra.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("shed connection received {n} bytes"),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected error on shed connection: {e}"),
    }
    assert!(r.handle.rejected_connections() >= 1);
    // Shedding freed nothing: the four originals still work.
    for (i, c) in kept.iter_mut().enumerate() {
        let msg = format!("still {i}");
        c.write_all(msg.as_bytes()).unwrap();
        assert_eq!(read_exact_timeout(c, msg.len()), msg.into_bytes());
    }
    r.handle.stop();
    r.thread.join().unwrap().unwrap();
}

#[test]
fn stop_flushes_pending_writes_before_exit() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (tok_tx, tok_rx) = mpsc::channel();

    struct Opens {
        tx: mpsc::Sender<Token>,
    }
    impl ConnHandler for Opens {
        type Conn = ();
        fn on_open(&mut self, token: Token, _peer: SocketAddr) -> Self::Conn {
            let _ = self.tx.send(token);
        }
        fn on_data(
            &mut self,
            _io: &mut ConnIo<'_>,
            _conn: &mut Self::Conn,
            input: &mut Vec<u8>,
        ) -> std::io::Result<()> {
            input.clear();
            Ok(())
        }
        fn on_close(&mut self, _token: Token, _conn: Self::Conn, _reason: CloseReason) {}
    }

    let reactor = Reactor::new(listener, ReactorConfig::default(), |_h| Opens {
        tx: tok_tx,
    })
    .unwrap();
    let handle = reactor.handle();
    let t = thread::spawn(move || reactor.run());

    let mut c = TcpStream::connect(addr).unwrap();
    let token = tok_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let payload = vec![0x5Au8; 1 << 20];
    handle.send(token, payload.clone());
    handle.stop();

    // Stop must not lose the megabyte queued just before it.
    let got = read_exact_timeout(&mut c, payload.len());
    assert_eq!(got, payload);
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    t.join().unwrap().unwrap();
    assert_eq!(handle.connections(), 0);
}

#[test]
fn handler_requested_close_after_flush() {
    struct OneShot;
    impl ConnHandler for OneShot {
        type Conn = ();
        fn on_open(&mut self, _token: Token, _peer: SocketAddr) -> Self::Conn {}
        fn on_data(
            &mut self,
            io: &mut ConnIo<'_>,
            _conn: &mut Self::Conn,
            input: &mut Vec<u8>,
        ) -> std::io::Result<()> {
            io.send(b"bye");
            io.close();
            input.clear();
            Ok(())
        }
        fn on_close(&mut self, _token: Token, _conn: Self::Conn, _reason: CloseReason) {}
    }

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reactor = Reactor::new(listener, ReactorConfig::default(), |_h| OneShot).unwrap();
    let handle = reactor.handle();
    let t = thread::spawn(move || reactor.run());

    let mut c = TcpStream::connect(addr).unwrap();
    c.write_all(b"anything").unwrap();
    let mut all = Vec::new();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.read_to_end(&mut all).unwrap();
    // The farewell arrives, then EOF — not an abrupt reset.
    assert_eq!(all, b"bye");

    handle.stop();
    t.join().unwrap().unwrap();
}
