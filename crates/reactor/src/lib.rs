//! `knightking-reactor`: a dependency-free edge-triggered event loop.
//!
//! The serve tier's front door: raw `epoll` (Linux) / `kqueue`
//! (macOS, FreeBSD) declared straight against the platform libc, one
//! poller thread, a generation-counted [`Slab`] of connection states,
//! write-interest-driven flushes, and timer wheels for idle and
//! write-stall eviction. One thread holds tens of thousands of
//! connections; protocol logic plugs in through [`ConnHandler`].
//!
//! The lower layers are public on purpose: [`Poller`] is reused by the
//! open-loop bench to multiplex thousands of *client* sockets, and
//! [`sys::raise_nofile_limit`] is how anything holding that many
//! descriptors asks the OS for room.

mod poll;
mod reactor;
mod slab;
pub mod sys;
mod timer;

pub use poll::{Event, Interest, Poller};
pub use reactor::{CloseReason, ConnHandler, ConnIo, Reactor, ReactorConfig, ReactorHandle};
pub use slab::{Slab, Token};
pub use timer::TimerWheel;
