//! A generation-counted slab: connection states addressed by dense
//! indices that are safe to hand to the kernel.
//!
//! The poller gives back whatever 64-bit key a descriptor was
//! registered with — long after the connection may have died and its
//! slot been reused. A bare index would mis-deliver those stale events
//! to the slot's new occupant, so every slot carries a generation that
//! bumps on removal and the [`Token`] packs `generation << 32 | index`.
//! A stale token fails the generation check and the event falls on the
//! floor, which is exactly where it belongs.

/// A slab address: slot index in the low 32 bits, slot generation in
/// the high 32. The reactor registers this as the kernel event key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

impl Token {
    fn new(index: u32, generation: u32) -> Token {
        Token(u64::from(generation) << 32 | u64::from(index))
    }

    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// The slab itself. O(1) insert/remove/lookup; slots are reused LIFO.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Occupied slot count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its token.
    pub fn insert(&mut self, value: T) -> Token {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            Token::new(index, slot.generation)
        } else {
            let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            Token::new(index, 0)
        }
    }

    /// Stores the value built by `f`, which receives the token the
    /// value will live under (so connection state can capture its own
    /// address).
    pub fn insert_with(&mut self, f: impl FnOnce(Token) -> T) -> Token {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let generation = self.slots[index as usize].generation;
            let token = Token::new(index, generation);
            self.slots[index as usize].value = Some(f(token));
            token
        } else {
            let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            let token = Token::new(index, 0);
            self.slots.push(Slot {
                generation: 0,
                value: None,
            });
            self.slots[index as usize].value = Some(f(token));
            token
        }
    }

    /// The value at `token`, unless the token is stale or removed.
    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        let slot = self.slots.get_mut(token.index())?;
        if slot.generation != token.generation() {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the value at `token`; stale tokens remove
    /// nothing. The slot's generation bumps so the token can never
    /// resolve again.
    pub fn remove(&mut self, token: Token) -> Option<T> {
        let slot = self.slots.get_mut(token.index())?;
        if slot.generation != token.generation() {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(token.index() as u32);
        self.len -= 1;
        Some(value)
    }

    /// Tokens of every occupied slot (for shutdown sweeps).
    pub fn tokens(&self) -> Vec<Token> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.value.is_some())
            .map(|(i, s)| Token::new(i as u32, s.generation))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get_mut(a), Some(&mut "a"));
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get_mut(a), None);
    }

    #[test]
    fn stale_token_never_resolves_after_reuse() {
        let mut slab = Slab::new();
        let old = slab.insert(1u32);
        slab.remove(old);
        let new = slab.insert(2u32);
        // Same slot, different generation.
        assert_eq!(old.index(), new.index());
        assert_ne!(old.generation(), new.generation());
        assert_eq!(slab.get_mut(old), None);
        assert_eq!(slab.remove(old), None);
        assert_eq!(slab.get_mut(new), Some(&mut 2));
    }

    #[test]
    fn double_remove_is_inert() {
        let mut slab = Slab::new();
        let t = slab.insert(7u8);
        assert_eq!(slab.remove(t), Some(7));
        assert_eq!(slab.remove(t), None);
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn tokens_lists_live_slots_only() {
        let mut slab = Slab::new();
        let a = slab.insert(0);
        let b = slab.insert(1);
        let c = slab.insert(2);
        slab.remove(b);
        let mut live = slab.tokens();
        live.sort();
        assert_eq!(live, vec![a, c]);
    }

    #[test]
    fn slots_reused_lifo() {
        let mut slab = Slab::new();
        let tokens: Vec<_> = (0..100).map(|i| slab.insert(i)).collect();
        for &t in &tokens {
            slab.remove(t);
        }
        assert!(slab.is_empty());
        let again = slab.insert(999);
        assert_eq!(again.index(), 99);
        assert_eq!(slab.get_mut(again), Some(&mut 999));
    }
}
