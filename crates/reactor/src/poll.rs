//! [`Poller`]: one readiness queue, portable over epoll and kqueue.
//!
//! Registrations are edge-triggered when asked (`Interest::edge`), and
//! every registration carries a caller-chosen `u64` key that comes back
//! verbatim on each [`Event`] — the reactor packs slab tokens in there,
//! the bench packs client indices. The poller owns nothing but its
//! kernel queue descriptor; callers own their sockets.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or the peer closed).
    pub readable: bool,
    /// Wake when writable again.
    pub writable: bool,
    /// Edge-triggered: one wake per readiness *transition*; the caller
    /// must then read/write to `WouldBlock` or it will never hear about
    /// that descriptor again.
    pub edge: bool,
}

impl Interest {
    /// Edge-triggered read interest, the reactor's resting state.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: true,
    };

    /// Edge-triggered read + write interest, enabled only while a
    /// connection has unflushed output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The key the descriptor was registered with.
    pub key: u64,
    /// Readable now (includes EOF — read to find out).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// The peer closed or the descriptor errored; the connection is
    /// finished even if a final read would still succeed.
    pub closed: bool,
}

/// A readiness queue: epoll on Linux, kqueue on macOS/FreeBSD.
#[derive(Debug)]
pub struct Poller {
    fd: RawFd,
}

// The fd is just a kernel handle; registration and waiting are
// thread-safe at the syscall level. The reactor still confines waits to
// one thread by design.
unsafe impl Send for Poller {}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates the readiness queue.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            fd: sys::epoll_create()?,
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        if interest.edge {
            m |= sys::EPOLLET;
        }
        m
    }

    /// Starts watching `fd` under `key`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn register(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.fd, sys::EPOLL_CTL_ADD, fd, Self::mask(interest), key)
    }

    /// Replaces the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.fd, sys::EPOLL_CTL_MOD, fd, Self::mask(interest), key)
    }

    /// Stops watching `fd`. Harmless if the kernel already dropped the
    /// registration (close races).
    pub fn deregister(&self, fd: RawFd) {
        let _ = sys::epoll_control(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until readiness or `timeout`, appending to `events`
    /// (which is cleared first). `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates OS errors other than `EINTR` (which yields zero
    /// events).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 512];
        let n = sys::epoll_wait_events(self.fd, &mut buf, timeout_ms)?;
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let bits = ev.events;
            let key = ev.data;
            events.push(Event {
                key,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(any(target_os = "macos", target_os = "freebsd"))]
impl Poller {
    /// Creates the readiness queue.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            fd: sys::kqueue_create()?,
        })
    }

    fn change(fd: RawFd, filter: i16, flags: u16, key: u64) -> sys::Kevent {
        sys::Kevent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: key as *mut std::ffi::c_void,
        }
    }

    fn apply(&self, changes: &[sys::Kevent]) -> io::Result<()> {
        // Deletions of unregistered filters come back ENOENT inline;
        // those are expected (interest downgrades), so drop them.
        let mut out = [Self::change(0, 0, 0, 0); 4];
        let n = sys::kevent_wait(self.fd, changes, &mut out, 0)?;
        for ev in &out[..n] {
            if ev.flags & sys::EV_ERROR != 0 && ev.data != 0 {
                let err = io::Error::from_raw_os_error(ev.data as i32);
                if err.kind() != io::ErrorKind::NotFound {
                    return Err(err);
                }
            }
        }
        Ok(())
    }

    /// Starts watching `fd` under `key`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn register(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        self.modify(fd, key, interest)
    }

    /// Replaces the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn modify(&self, fd: RawFd, key: u64, interest: Interest) -> io::Result<()> {
        let clear = if interest.edge { sys::EV_CLEAR } else { 0 };
        let read_flags = if interest.readable {
            sys::EV_ADD | clear
        } else {
            sys::EV_DELETE
        };
        let write_flags = if interest.writable {
            sys::EV_ADD | clear
        } else {
            sys::EV_DELETE
        };
        self.apply(&[
            Self::change(fd, sys::EVFILT_READ, read_flags, key),
            Self::change(fd, sys::EVFILT_WRITE, write_flags, key),
        ])
    }

    /// Stops watching `fd`. Harmless if the kernel already dropped the
    /// registration (close races).
    pub fn deregister(&self, fd: RawFd) {
        let _ = self.apply(&[
            Self::change(fd, sys::EVFILT_READ, sys::EV_DELETE, 0),
            Self::change(fd, sys::EVFILT_WRITE, sys::EV_DELETE, 0),
        ]);
    }

    /// Blocks until readiness or `timeout`, appending to `events`
    /// (which is cleared first). `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates OS errors other than `EINTR` (which yields zero
    /// events).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX),
        };
        let mut buf = [Self::change(0, 0, 0, 0); 512];
        let n = sys::kevent_wait(self.fd, &[], &mut buf, timeout_ms)?;
        for ev in &buf[..n] {
            events.push(Event {
                key: ev.udata as u64,
                readable: ev.filter == sys::EVFILT_READ,
                writable: ev.filter == sys::EVFILT_WRITE,
                closed: ev.flags & (sys::EV_EOF | sys::EV_ERROR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn readable_event_fires_with_registered_key() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 42, Interest::READ)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 42 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn edge_trigger_fires_once_per_arrival() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        client.write_all(b"a").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());
        // Without reading, an edge-triggered poller stays silent.
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.is_empty(),
            "edge-triggered event re-fired: {events:?}"
        );
    }

    #[test]
    fn write_interest_can_be_toggled() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        // An idle socket is immediately writable once we ask.
        poller
            .modify(server.as_raw_fd(), 1, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.writable));
        // Downgrading back to read-only silences the write events.
        poller
            .modify(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable), "{events:?}");
    }
}
