//! A hashed timer wheel for connection deadlines.
//!
//! The reactor needs two kinds of deadline per connection — idle
//! timeout and write-stall timeout — for up to tens of thousands of
//! connections, where almost every deadline is *cancelled* (the
//! connection stays active) rather than fired. The wheel makes the
//! common path free: deadlines are never removed, only lazily
//! re-validated when their slot comes around. A connection that stayed
//! busy simply gets its entry re-filed at the fresh deadline; one that
//! went quiet fires. Cost per tick is the slot's entry list, cost per
//! activity is zero.

/// One scheduled entry: an opaque key the caller maps back to a
/// connection, due at `due_ms` (reactor-relative milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    due_ms: u64,
    key: u64,
}

/// The wheel. Slots cover `tick_ms` each; entries further out than one
/// full rotation still land in their modular slot and are skipped (and
/// kept) until their lap arrives.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick_ms: u64,
    /// The next slot `advance` will process, in absolute tick units.
    next_tick: u64,
    /// Entries filed for ticks already processed; fired on the next
    /// `advance` once due.
    late: Vec<Entry>,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick_ms` wide. Accuracy is one
    /// tick: entries fire within `tick_ms` of their deadline.
    pub fn new(tick_ms: u64, slots: usize) -> TimerWheel {
        assert!(tick_ms > 0 && slots > 1);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick_ms,
            next_tick: 0,
            late: Vec::new(),
        }
    }

    /// Files `key` to fire at `due_ms`. Deadlines already in the past
    /// fire on the next [`advance`](TimerWheel::advance).
    pub fn schedule(&mut self, due_ms: u64, key: u64) {
        let tick = due_ms / self.tick_ms;
        if tick < self.next_tick {
            // That slot has already been processed this lap; park the
            // entry where the next advance is guaranteed to see it.
            self.late.push(Entry { due_ms, key });
            return;
        }
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { due_ms, key });
    }

    /// Processes every slot up to `now_ms`, calling `fire(key)` for
    /// each due entry. Entries parked in a passed slot for a future lap
    /// are re-filed, not fired.
    pub fn advance(&mut self, now_ms: u64, mut fire: impl FnMut(u64)) {
        let mut still_late = Vec::new();
        for e in std::mem::take(&mut self.late) {
            if e.due_ms <= now_ms {
                fire(e.key);
            } else {
                still_late.push(e);
            }
        }
        self.late = still_late;
        let target_tick = now_ms / self.tick_ms;
        while self.next_tick <= target_tick {
            let slot = (self.next_tick % self.slots.len() as u64) as usize;
            let entries = std::mem::take(&mut self.slots[slot]);
            for e in entries {
                if e.due_ms <= now_ms {
                    fire(e.key);
                } else {
                    self.schedule(e.due_ms, e.key);
                }
            }
            self.next_tick += 1;
        }
    }

    /// Scheduled entry count (live and stale alike), for tests and
    /// introspection.
    pub fn len(&self) -> usize {
        self.late.len() + self.slots.iter().map(Vec::len).sum::<usize>()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(wheel: &mut TimerWheel, now_ms: u64) -> Vec<u64> {
        let mut out = Vec::new();
        wheel.advance(now_ms, |k| out.push(k));
        out.sort_unstable();
        out
    }

    #[test]
    fn fires_at_deadline_within_a_tick() {
        let mut w = TimerWheel::new(10, 16);
        w.schedule(35, 1);
        assert_eq!(fired(&mut w, 20), Vec::<u64>::new());
        assert_eq!(fired(&mut w, 40), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let mut w = TimerWheel::new(10, 16);
        w.advance(100, |_| {});
        w.schedule(50, 9);
        assert_eq!(fired(&mut w, 100), vec![9]);
    }

    #[test]
    fn far_future_entries_survive_full_laps() {
        let mut w = TimerWheel::new(10, 4);
        // One lap is 40ms; a 170ms deadline parks in its modular slot
        // through four passes.
        w.schedule(170, 5);
        assert_eq!(fired(&mut w, 160), Vec::<u64>::new());
        assert_eq!(fired(&mut w, 180), vec![5]);
    }

    #[test]
    fn many_keys_fire_in_their_own_slots() {
        let mut w = TimerWheel::new(5, 8);
        for k in 0..100 {
            w.schedule(k * 3, k);
        }
        let mut all = Vec::new();
        for now in (0..350).step_by(7) {
            w.advance(now, |k| all.push(k));
        }
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn advance_is_monotonic_and_idempotent() {
        let mut w = TimerWheel::new(10, 16);
        w.schedule(30, 1);
        assert_eq!(fired(&mut w, 30), vec![1]);
        // Re-advancing over the same span fires nothing twice.
        assert_eq!(fired(&mut w, 30), Vec::<u64>::new());
        assert_eq!(fired(&mut w, 25), Vec::<u64>::new());
    }
}
