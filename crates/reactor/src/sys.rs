//! Raw readiness syscalls: `epoll` on Linux, `kqueue` on the BSDs and
//! macOS, declared directly against the platform libc that `std`
//! already links. No `libc` crate, no `mio` — the reactor's entire
//! platform surface is this file.
//!
//! Everything here is `unsafe` FFI wrapped into narrow safe helpers
//! that turn `-1` into [`io::Error::last_os_error`]. The structures
//! mirror the kernel ABI exactly; `epoll_event` is packed on x86-64
//! (and only there), matching the kernel's layout quirk.

use std::ffi::c_int;
use std::io;

/// File-descriptor resource limit, queried and raised by callers that
/// want to hold tens of thousands of sockets (the open-loop bench).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct Rlimit {
    /// Soft limit (what the process may actually use).
    pub cur: u64,
    /// Hard ceiling (the most the soft limit can be raised to without
    /// privilege).
    pub max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// Returns the process's open-file limit (soft, hard).
///
/// # Errors
///
/// Propagates the OS error.
pub fn nofile_limit() -> io::Result<Rlimit> {
    let mut lim = Rlimit::default();
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == -1 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim)
}

/// Raises the soft open-file limit toward `want` (capped at the hard
/// limit) and returns the resulting soft limit. Never lowers it.
///
/// # Errors
///
/// Propagates the OS error from `setrlimit`.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let lim = nofile_limit()?;
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let raised = Rlimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == -1 {
        return Err(io::Error::last_os_error());
    }
    Ok(raised.cur)
}

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::ffi::c_int;
    use std::io;
    use std::os::unix::io::RawFd;

    // The kernel packs epoll_event on x86-64 only; every other
    // architecture uses natural alignment. Getting this wrong corrupts
    // every second event in the wait buffer.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn epoll_create() -> io::Result<RawFd> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// One `epoll_ctl` operation ([`EPOLL_CTL_ADD`] / `MOD` / `DEL`).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn epoll_control(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        // DEL ignores the event argument but pre-2.6.9 kernels fault on
        // NULL, so always pass a real struct.
        let mut ev = EpollEvent { events, data };
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits for readiness, filling `buf`; returns how many events
    /// landed. A negative `timeout_ms` blocks indefinitely. `EINTR`
    /// surfaces as zero events, not an error — reactors always re-poll.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` OS errors.
    pub fn epoll_wait_events(
        epfd: RawFd,
        buf: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n == -1 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    /// Closes a raw descriptor owned by the poller.
    pub fn close_fd(fd: RawFd) {
        unsafe { close(fd) };
    }
}

#[cfg(any(target_os = "macos", target_os = "freebsd"))]
pub use bsd::*;

#[cfg(any(target_os = "macos", target_os = "freebsd"))]
mod bsd {
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::ptr;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct Kevent {
        pub ident: usize,
        pub filter: i16,
        pub flags: u16,
        pub fflags: u32,
        pub data: isize,
        pub udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    pub const EVFILT_READ: i16 = -1;
    pub const EVFILT_WRITE: i16 = -2;
    pub const EV_ADD: u16 = 0x1;
    pub const EV_DELETE: u16 = 0x2;
    pub const EV_CLEAR: u16 = 0x20;
    pub const EV_EOF: u16 = 0x8000;
    pub const EV_ERROR: u16 = 0x4000;

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const Kevent,
            nchanges: c_int,
            eventlist: *mut Kevent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Creates a kqueue instance.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn kqueue_create() -> io::Result<RawFd> {
        let fd = unsafe { kqueue() };
        if fd == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// Applies a change list and/or collects events. A negative
    /// `timeout_ms` blocks indefinitely. `EINTR` surfaces as zero
    /// events.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` OS errors.
    pub fn kevent_wait(
        kq: RawFd,
        changes: &[Kevent],
        events: &mut [Kevent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        let ts;
        let ts_ptr = if timeout_ms < 0 {
            ptr::null()
        } else {
            ts = Timespec {
                tv_sec: i64::from(timeout_ms) / 1000,
                tv_nsec: (i64::from(timeout_ms) % 1000) * 1_000_000,
            };
            &ts as *const Timespec
        };
        let n = unsafe {
            kevent(
                kq,
                changes.as_ptr(),
                changes.len() as c_int,
                events.as_mut_ptr(),
                events.len() as c_int,
                ts_ptr,
            )
        };
        if n == -1 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    /// Closes a raw descriptor owned by the poller.
    pub fn close_fd(fd: RawFd) {
        unsafe { close(fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofile_limit_is_sane() {
        let lim = nofile_limit().unwrap();
        assert!(lim.cur > 0);
        assert!(lim.max >= lim.cur);
    }

    #[test]
    fn raise_never_lowers() {
        let before = nofile_limit().unwrap();
        let got = raise_nofile_limit(1).unwrap();
        assert_eq!(got, before.cur);
    }
}
