//! The reactor proper: one poller thread servicing every connection.
//!
//! # Shape
//!
//! A [`Reactor`] owns a listening socket, a [`Poller`], a [`Slab`] of
//! connection states, and two [`TimerWheel`]s (idle and write-stall
//! deadlines). [`Reactor::run`] is the event loop; protocol logic lives
//! in a caller-supplied [`ConnHandler`], which sees raw bytes and
//! answers through a [`ConnIo`] (synchronous, inside the loop) or a
//! [`ReactorHandle`] (from any thread, e.g. when a walk completes
//! superstep later).
//!
//! # Readiness model
//!
//! Everything is edge-triggered: one wake per readiness *transition*,
//! so every readable socket is drained to `WouldBlock` and every write
//! runs until the kernel buffer fills. Write interest is the exception
//! state — a connection is registered read-only until a flush leaves
//! bytes behind, gains `EPOLLOUT` while the backlog drains, and drops
//! it again the moment the buffer empties. Ten thousand idle
//! connections therefore cost zero events per tick.
//!
//! # Cross-thread sends
//!
//! [`ReactorHandle::send`] enqueues bytes under a mutex and pokes a
//! wake pipe (a `UnixStream` pair registered with the poller); the loop
//! drains the command queue on every iteration. Tokens are
//! generation-checked, so a send racing a disconnect falls on the floor
//! instead of hitting a recycled slot.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::poll::{Event, Interest, Poller};
use crate::slab::{Slab, Token};
use crate::timer::TimerWheel;

/// Poller key for the listening socket.
const LISTENER_KEY: u64 = u64::MAX;
/// Poller key for the wake pipe's read end.
const WAKER_KEY: u64 = u64::MAX - 1;

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Connections held at once; accepts beyond this are closed
    /// immediately (connection-level shed — the client sees EOF).
    pub max_connections: usize,
    /// A connection with no read activity for this long is evicted.
    pub idle_timeout: Duration,
    /// A connection whose write backlog makes no progress for this
    /// long (a reader that stopped reading) is evicted.
    pub write_deadline: Duration,
    /// Per-connection cap on buffered unparsed input; exceeding it is a
    /// protocol error and closes the connection.
    pub read_buf_limit: usize,
    /// Per-connection cap on buffered unflushed output; exceeding it
    /// counts as a stalled writer and closes the connection.
    pub write_buf_limit: usize,
    /// How long [`ReactorHandle::stop`] waits for write backlogs to
    /// drain before force-closing survivors.
    pub drain_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 10_240,
            idle_timeout: Duration::from_secs(60),
            write_deadline: Duration::from_secs(5),
            read_buf_limit: 64 << 20,
            write_buf_limit: 256 << 20,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Why a connection ended, handed to [`ConnHandler::on_close`].
#[derive(Debug)]
pub enum CloseReason {
    /// The peer closed and everything owed was flushed.
    PeerClosed,
    /// No read activity within [`ReactorConfig::idle_timeout`].
    IdleTimeout,
    /// The write backlog outlived [`ReactorConfig::write_deadline`] or
    /// outgrew [`ReactorConfig::write_buf_limit`].
    WriteStalled,
    /// The handler or a [`ReactorHandle`] asked for the close.
    Requested,
    /// The reactor is stopping and drained (or force-closed) the
    /// connection.
    Draining,
    /// An I/O or protocol error.
    Error(io::Error),
}

/// Per-connection protocol logic. One handler instance serves every
/// connection; per-connection state lives in `Self::Conn`.
pub trait ConnHandler {
    /// State carried by each connection (parser position, tenant id…).
    type Conn;

    /// A connection was accepted. `token` is its stable address for
    /// [`ReactorHandle::send`] until `on_close`.
    fn on_open(&mut self, token: Token, peer: SocketAddr) -> Self::Conn;

    /// Bytes arrived: `input` holds everything received and not yet
    /// consumed — parse what is complete, `drain(..n)` it, and leave
    /// partial frames for the next call. Respond synchronously via
    /// [`ConnIo::send`] or later via [`ReactorHandle::send`].
    ///
    /// # Errors
    ///
    /// An `Err` is a protocol violation: the connection closes with
    /// [`CloseReason::Error`].
    fn on_data(
        &mut self,
        io: &mut ConnIo<'_>,
        conn: &mut Self::Conn,
        input: &mut Vec<u8>,
    ) -> io::Result<()>;

    /// The connection ended (exactly once per `on_open`).
    fn on_close(&mut self, token: Token, conn: Self::Conn, reason: CloseReason);
}

/// The handler's window onto one connection during
/// [`ConnHandler::on_data`]. Sends are buffered and flushed when the
/// handler returns; nothing here blocks.
pub struct ConnIo<'a> {
    token: Token,
    out: &'a mut Vec<u8>,
    close: bool,
}

impl ConnIo<'_> {
    /// This connection's token (the address async responders need).
    pub fn token(&self) -> Token {
        self.token
    }

    /// Queues response bytes; the reactor flushes after the handler
    /// returns and keeps flushing on write readiness.
    pub fn send(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Closes the connection once everything queued has been flushed.
    pub fn close(&mut self) {
        self.close = true;
    }
}

enum Cmd {
    Send(Token, Vec<u8>),
    Close(Token),
}

struct HandleShared {
    cmds: Mutex<Vec<Cmd>>,
    wake_tx: UnixStream,
    stopping: AtomicBool,
    conns: AtomicUsize,
    accepts_rejected: AtomicU64,
}

/// A clonable, thread-safe handle into a running reactor.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<HandleShared>,
}

impl ReactorHandle {
    /// Queues `bytes` for the connection at `token` and wakes the
    /// loop. Callable from any thread; a send to a connection that
    /// already closed is silently dropped (its token can never alias a
    /// newer connection).
    pub fn send(&self, token: Token, bytes: Vec<u8>) {
        self.push(Cmd::Send(token, bytes));
    }

    /// Asks the loop to close `token` once its output drains.
    pub fn close(&self, token: Token) {
        self.push(Cmd::Close(token));
    }

    /// Stops the reactor: queued commands still apply, write backlogs
    /// get [`ReactorConfig::drain_grace`] to flush, then `run` returns.
    /// Idempotent.
    pub fn stop(&self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.wake();
    }

    /// Whether a stop has been requested.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.shared.conns.load(Ordering::Acquire)
    }

    /// Connections refused because [`ReactorConfig::max_connections`]
    /// was reached.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.accepts_rejected.load(Ordering::Acquire)
    }

    fn push(&self, cmd: Cmd) {
        match self.shared.cmds.lock() {
            Ok(mut q) => q.push(cmd),
            Err(mut poisoned) => poisoned.get_mut().push(cmd),
        }
        self.wake();
    }

    fn wake(&self) {
        // A full pipe already guarantees a pending wake; any error here
        // is therefore ignorable.
        let _ = (&self.shared.wake_tx).write(&[1]);
    }
}

struct Conn<C> {
    stream: TcpStream,
    state: C,
    input: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    want_write: bool,
    read_eof: bool,
    /// Close (with this reason) once `out` drains.
    closing: Option<CloseReason>,
    last_activity_ms: u64,
    /// When the current write backlog appeared; `None` while drained.
    out_since_ms: Option<u64>,
}

/// The event loop. Create with [`Reactor::new`], drive with
/// [`Reactor::run`] (usually on a dedicated thread), steer with the
/// [`ReactorHandle`] from anywhere else.
pub struct Reactor<H: ConnHandler> {
    listener: TcpListener,
    poller: Poller,
    handler: H,
    conns: Slab<Conn<H::Conn>>,
    idle_wheel: TimerWheel,
    write_wheel: TimerWheel,
    cfg: ReactorConfig,
    shared: Arc<HandleShared>,
    wake_rx: UnixStream,
    start: Instant,
    poll_interval: Duration,
}

impl<H: ConnHandler> Reactor<H> {
    /// Builds a reactor on `listener`. The handler is constructed by
    /// `make_handler` so it can capture the [`ReactorHandle`] for async
    /// responses.
    ///
    /// # Errors
    ///
    /// Propagates poller/listener/pipe setup failures.
    pub fn new<F>(listener: TcpListener, cfg: ReactorConfig, make_handler: F) -> io::Result<Self>
    where
        F: FnOnce(ReactorHandle) -> H,
    {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_KEY, Interest::READ)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.register(wake_rx.as_raw_fd(), WAKER_KEY, Interest::READ)?;
        let shared = Arc::new(HandleShared {
            cmds: Mutex::new(Vec::new()),
            wake_tx,
            stopping: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            accepts_rejected: AtomicU64::new(0),
        });
        let handler = make_handler(ReactorHandle {
            shared: shared.clone(),
        });
        // Tick fast enough that the shortest deadline is enforced with
        // reasonable accuracy, slow enough that an idle loop is cheap.
        let tick_ms = (cfg
            .idle_timeout
            .min(cfg.write_deadline)
            .as_millis()
            .max(1)
            .min(u128::from(u64::MAX)) as u64
            / 4)
        .clamp(5, 200);
        Ok(Reactor {
            listener,
            poller,
            handler,
            conns: Slab::new(),
            idle_wheel: TimerWheel::new(tick_ms, 256),
            write_wheel: TimerWheel::new(tick_ms, 256),
            cfg,
            shared,
            wake_rx,
            start: Instant::now(),
            poll_interval: Duration::from_millis(tick_ms),
        })
    }

    /// A handle usable from other threads.
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: self.shared.clone(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Runs the loop until [`ReactorHandle::stop`]. On return every
    /// connection has been closed (flushed where possible) and every
    /// `on_close` delivered.
    ///
    /// # Errors
    ///
    /// Only unrecoverable poller failures abort the loop; per-connection
    /// errors close that connection.
    pub fn run(mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut draining = false;
        let mut drain_deadline_ms = 0u64;
        loop {
            self.poller.wait(&mut events, Some(self.poll_interval))?;
            let now = self.now_ms();
            for &ev in events.iter() {
                match ev.key {
                    LISTENER_KEY => self.accept_ready(now, draining),
                    WAKER_KEY => self.drain_waker(),
                    _ => self.conn_event(Token(ev.key), ev, now),
                }
            }
            self.apply_cmds(now);
            self.fire_timers(now);

            if !draining && self.shared.stopping.load(Ordering::Acquire) {
                draining = true;
                drain_deadline_ms = now + self.cfg.drain_grace.as_millis() as u64;
                for token in self.conns.tokens() {
                    self.begin_close(token, CloseReason::Draining);
                }
            }
            if draining {
                if now >= drain_deadline_ms {
                    for token in self.conns.tokens() {
                        self.close_conn(token, CloseReason::Draining);
                    }
                }
                if self.conns.is_empty() {
                    return Ok(());
                }
            }
        }
    }

    fn accept_ready(&mut self, now: u64, draining: bool) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if draining || self.conns.len() >= self.cfg.max_connections {
                        // Shed at the door: close immediately. The
                        // client sees EOF instead of a hung connect.
                        self.shared.accepts_rejected.fetch_add(1, Ordering::AcqRel);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let handler = &mut self.handler;
                    let token = self.conns.insert_with(|token| Conn {
                        state: handler.on_open(token, peer),
                        stream,
                        input: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        want_write: false,
                        read_eof: false,
                        closing: None,
                        last_activity_ms: now,
                        out_since_ms: None,
                    });
                    let conn = self.conns.get_mut(token).expect("just inserted");
                    if self
                        .poller
                        .register(conn.stream.as_raw_fd(), token.0, Interest::READ)
                        .is_err()
                    {
                        let conn = self.conns.remove(token).expect("just inserted");
                        self.handler.on_close(
                            token,
                            conn.state,
                            CloseReason::Error(io::Error::other("poller registration failed")),
                        );
                        continue;
                    }
                    self.shared.conns.fetch_add(1, Ordering::AcqRel);
                    self.idle_wheel
                        .schedule(now + self.cfg.idle_timeout.as_millis() as u64, token.0);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (ECONNABORTED, EMFILE…):
                // drop the attempt; the periodic poll tick retries.
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_event(&mut self, token: Token, ev: Event, now: u64) {
        if ev.writable {
            self.flush_conn(token, now);
        }
        if ev.readable || ev.closed {
            self.conn_readable(token, now);
        }
    }

    fn conn_readable(&mut self, token: Token, now: u64) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        let mut got_bytes = false;
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.read_eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.input.len() + n > self.cfg.read_buf_limit {
                        self.close_conn(
                            token,
                            CloseReason::Error(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "input buffer exceeded {} bytes without a parseable frame",
                                    self.cfg.read_buf_limit
                                ),
                            )),
                        );
                        return;
                    }
                    conn.input.extend_from_slice(&chunk[..n]);
                    got_bytes = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.close_conn(token, CloseReason::Error(e));
                    return;
                }
            }
        }
        conn.last_activity_ms = now;
        if got_bytes {
            let mut conn_io = ConnIo {
                token,
                out: &mut conn.out,
                close: false,
            };
            let verdict = self
                .handler
                .on_data(&mut conn_io, &mut conn.state, &mut conn.input);
            let close_requested = conn_io.close;
            match verdict {
                Ok(()) => {
                    if close_requested && conn.closing.is_none() {
                        conn.closing = Some(CloseReason::Requested);
                    }
                }
                Err(e) => {
                    self.close_conn(token, CloseReason::Error(e));
                    return;
                }
            }
            self.flush_conn(token, now);
        }
        if let Some(conn) = self.conns.get_mut(token) {
            if conn.read_eof {
                if conn.out_pos >= conn.out.len() {
                    self.close_conn(token, CloseReason::PeerClosed);
                } else if conn.closing.is_none() {
                    conn.closing = Some(CloseReason::PeerClosed);
                }
            }
        }
    }

    /// Writes as much pending output as the kernel accepts, managing
    /// write interest and the stall clock.
    fn flush_conn(&mut self, token: Token, now: u64) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        while conn.out_pos < conn.out.len() {
            match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(
                        token,
                        CloseReason::Error(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        )),
                    );
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.close_conn(token, CloseReason::Error(e));
                    return;
                }
            }
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            conn.out_since_ms = None;
            if conn.want_write {
                conn.want_write = false;
                let _ = self
                    .poller
                    .modify(conn.stream.as_raw_fd(), token.0, Interest::READ);
            }
            if let Some(reason) = conn.closing.take() {
                self.close_conn(token, reason);
            }
        } else {
            if conn.out.len() - conn.out_pos > self.cfg.write_buf_limit {
                self.close_conn(token, CloseReason::WriteStalled);
                return;
            }
            if conn.out_since_ms.is_none() {
                conn.out_since_ms = Some(now);
                self.write_wheel
                    .schedule(now + self.cfg.write_deadline.as_millis() as u64, token.0);
            }
            if !conn.want_write {
                conn.want_write = true;
                let _ = self
                    .poller
                    .modify(conn.stream.as_raw_fd(), token.0, Interest::READ_WRITE);
            }
        }
    }

    fn apply_cmds(&mut self, now: u64) {
        loop {
            let cmds = {
                let mut q = match self.shared.cmds.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                std::mem::take(&mut *q)
            };
            if cmds.is_empty() {
                return;
            }
            for cmd in cmds {
                match cmd {
                    Cmd::Send(token, bytes) => {
                        if let Some(conn) = self.conns.get_mut(token) {
                            conn.out.extend_from_slice(&bytes);
                            self.flush_conn(token, now);
                        }
                    }
                    Cmd::Close(token) => self.begin_close(token, CloseReason::Requested),
                }
            }
        }
    }

    /// Closes now if flushed, otherwise once the backlog drains.
    fn begin_close(&mut self, token: Token, reason: CloseReason) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.out_pos >= conn.out.len() {
            self.close_conn(token, reason);
        } else if conn.closing.is_none() {
            conn.closing = Some(reason);
        }
    }

    fn close_conn(&mut self, token: Token, reason: CloseReason) {
        let Some(conn) = self.conns.remove(token) else {
            return;
        };
        self.poller.deregister(conn.stream.as_raw_fd());
        self.shared.conns.fetch_sub(1, Ordering::AcqRel);
        self.handler.on_close(token, conn.state, reason);
    }

    fn fire_timers(&mut self, now: u64) {
        let idle_ms = self.cfg.idle_timeout.as_millis() as u64;
        let mut due = Vec::new();
        self.idle_wheel.advance(now, |k| due.push(k));
        for key in due.drain(..) {
            let token = Token(key);
            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            let deadline = conn.last_activity_ms + idle_ms;
            if deadline <= now {
                self.close_conn(token, CloseReason::IdleTimeout);
            } else {
                // Lazy cancellation: the connection was active since
                // this entry was filed — re-file at the live deadline.
                self.idle_wheel.schedule(deadline, key);
            }
        }
        let write_ms = self.cfg.write_deadline.as_millis() as u64;
        self.write_wheel.advance(now, |k| due.push(k));
        for key in due {
            let token = Token(key);
            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            match conn.out_since_ms {
                // Backlog drained since the entry was filed; a future
                // stall re-schedules.
                None => {}
                Some(since) => {
                    let deadline = since + write_ms;
                    if deadline <= now {
                        self.close_conn(token, CloseReason::WriteStalled);
                    } else {
                        self.write_wheel.schedule(deadline, key);
                    }
                }
            }
        }
    }
}
