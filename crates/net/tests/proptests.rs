//! Property tests for the `Wire` codec round-trip contract, including
//! the serve protocol's REQ/RESP payloads.

use knightking_net::{from_bytes, to_bytes, Wire};
use knightking_serve::{Request, StartSpec, Status, WalkRequest, WalkResponse};
use proptest::prelude::*;

fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = to_bytes(&v).unwrap();
    assert_eq!(bytes.len(), v.wire_size(), "wire_size must be exact");
    assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
}

fn start_spec() -> impl Strategy<Value = StartSpec> {
    prop_oneof![
        any::<u64>().prop_map(StartSpec::Count),
        proptest::collection::vec(any::<u32>(), 0..8).prop_map(StartSpec::Explicit),
    ]
}

fn status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        any::<u64>().prop_map(|retry_after_ms| Status::Rejected { retry_after_ms }),
        Just(Status::DeadlineExceeded),
        Just(Status::ShuttingDown),
        ".{0,40}".prop_map(Status::Invalid),
    ]
}

proptest! {
    #[test]
    fn prop_u64_round_trip(v: u64) {
        round_trip(v);
    }

    #[test]
    fn prop_f64_round_trip(v in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        round_trip(v);
    }

    #[test]
    fn prop_vec_round_trip(v: Vec<u32>) {
        round_trip(v);
    }

    #[test]
    fn prop_nested_round_trip(v: Vec<(u64, Option<u32>)>) {
        round_trip(v);
    }

    #[test]
    fn prop_decode_never_panics_on_garbage(bytes: Vec<u8>) {
        // Arbitrary input must produce a value or an error — never panic.
        let _ = from_bytes::<Vec<(u64, Option<u32>, bool)>>(&bytes);
        let _ = from_bytes::<Option<u64>>(&bytes);
    }

    #[test]
    fn prop_serve_request_round_trip(
        seed: u64,
        starts in start_spec(),
        deadline_ms: u64,
        shutdown: bool,
    ) {
        let req = if shutdown {
            Request::Shutdown
        } else {
            Request::Walk(WalkRequest { seed, starts, deadline_ms })
        };
        round_trip(req);
    }

    #[test]
    fn prop_serve_response_round_trip(
        status in status(),
        paths in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..6),
            0..6,
        ),
    ) {
        round_trip(WalkResponse { status, paths });
    }

    #[test]
    fn prop_serve_decode_never_panics_on_garbage(bytes: Vec<u8>) {
        let _ = from_bytes::<Request>(&bytes);
        let _ = from_bytes::<WalkResponse>(&bytes);
        let _ = from_bytes::<Status>(&bytes);
    }
}
