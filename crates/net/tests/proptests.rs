//! Property tests for the `Wire` codec round-trip contract.

use knightking_net::{from_bytes, to_bytes, Wire};
use proptest::prelude::*;

fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = to_bytes(&v);
    assert_eq!(bytes.len(), v.wire_size(), "wire_size must be exact");
    assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
}

proptest! {
    #[test]
    fn prop_u64_round_trip(v: u64) {
        round_trip(v);
    }

    #[test]
    fn prop_f64_round_trip(v in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        round_trip(v);
    }

    #[test]
    fn prop_vec_round_trip(v: Vec<u32>) {
        round_trip(v);
    }

    #[test]
    fn prop_nested_round_trip(v: Vec<(u64, Option<u32>)>) {
        round_trip(v);
    }

    #[test]
    fn prop_decode_never_panics_on_garbage(bytes: Vec<u8>) {
        // Arbitrary input must produce a value or an error — never panic.
        let _ = from_bytes::<Vec<(u64, Option<u32>, bool)>>(&bytes);
        let _ = from_bytes::<Option<u64>>(&bytes);
    }
}
