//! Property tests for the `Wire` codec round-trip contract, including
//! the serve protocol's REQ/RESP payloads.

use knightking_net::{from_bytes, to_bytes, Wire};
use knightking_serve::{Request, StartSpec, Status, WalkRequest, WalkResponse};
use proptest::prelude::*;

fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = to_bytes(&v).unwrap();
    assert_eq!(bytes.len(), v.wire_size(), "wire_size must be exact");
    assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
}

fn start_spec() -> impl Strategy<Value = StartSpec> {
    prop_oneof![
        any::<u64>().prop_map(StartSpec::Count),
        proptest::collection::vec(any::<u32>(), 0..8).prop_map(StartSpec::Explicit),
    ]
}

fn status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        any::<u64>().prop_map(|retry_after_ms| Status::Rejected { retry_after_ms }),
        Just(Status::DeadlineExceeded),
        Just(Status::ShuttingDown),
        ".{0,40}".prop_map(Status::Invalid),
    ]
}

proptest! {
    #[test]
    fn prop_u64_round_trip(v: u64) {
        round_trip(v);
    }

    #[test]
    fn prop_f64_round_trip(v in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        round_trip(v);
    }

    #[test]
    fn prop_vec_round_trip(v: Vec<u32>) {
        round_trip(v);
    }

    #[test]
    fn prop_nested_round_trip(v: Vec<(u64, Option<u32>)>) {
        round_trip(v);
    }

    #[test]
    fn prop_decode_never_panics_on_garbage(bytes: Vec<u8>) {
        // Arbitrary input must produce a value or an error — never panic.
        let _ = from_bytes::<Vec<(u64, Option<u32>, bool)>>(&bytes);
        let _ = from_bytes::<Option<u64>>(&bytes);
    }

    #[test]
    fn prop_serve_request_round_trip(
        seed: u64,
        starts in start_spec(),
        deadline_ms: u64,
        shutdown: bool,
    ) {
        let req = if shutdown {
            Request::Shutdown
        } else {
            Request::Walk(WalkRequest { seed, starts, deadline_ms })
        };
        round_trip(req);
    }

    #[test]
    fn prop_serve_response_round_trip(
        status in status(),
        paths in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..6),
            0..6,
        ),
    ) {
        round_trip(WalkResponse { status, paths });
    }

    #[test]
    fn prop_serve_decode_never_panics_on_garbage(bytes: Vec<u8>) {
        let _ = from_bytes::<Request>(&bytes);
        let _ = from_bytes::<WalkResponse>(&bytes);
        let _ = from_bytes::<Status>(&bytes);
    }
}

// --- Adversarial chunking: incremental framing must agree with a ---
// --- whole-buffer decode no matter how the bytes arrive.          ---

use knightking_net::frame::{read_frame, split_frame, tag, write_frame, Frame};
use knightking_serve::protocol::{hello_bytes, split_hello, DEFAULT_TENANT};

/// One well-formed frame: any in-range tag, any seq, a small payload.
fn frame_parts() -> impl Strategy<Value = (u8, u64, Vec<u8>)> {
    (
        tag::DATA..=tag::RESP,
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..96),
    )
}

/// Encodes `frames` back-to-back the way a peer's socket would carry them.
fn encode_stream(frames: &[(u8, u64, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (t, seq, payload) in frames {
        write_frame(&mut out, *t, *seq, payload).unwrap();
    }
    out
}

/// Cuts `stream` into adversarial pieces: each piece's size comes from
/// `cuts` (cycled), so 1-byte trickles, split headers, and coalesced
/// frames all occur.
fn chunks<'a>(stream: &'a [u8], cuts: &'a [usize]) -> Vec<&'a [u8]> {
    let mut out = Vec::new();
    let (mut pos, mut i) = (0usize, 0usize);
    while pos < stream.len() {
        let n = cuts[i % cuts.len()].max(1).min(stream.len() - pos);
        out.push(&stream[pos..pos + n]);
        pos += n;
        i += 1;
    }
    out
}

/// Drains every complete frame currently in `buf`.
fn drain_frames(buf: &mut Vec<u8>) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some((frame, used)) = split_frame(buf).unwrap() {
        buf.drain(..used);
        out.push(frame);
    }
    out
}

proptest! {
    #[test]
    fn prop_chunked_split_frame_agrees_with_read_frame(
        frames in proptest::collection::vec(frame_parts(), 1..6),
        cuts in proptest::collection::vec(1usize..32, 1..24),
    ) {
        let stream = encode_stream(&frames);

        // Ground truth: the blocking reader over the whole stream.
        let mut cursor = std::io::Cursor::new(stream.clone());
        let whole: Vec<Frame> =
            (0..frames.len()).map(|_| read_frame(&mut cursor).unwrap()).collect();

        // Incremental: feed adversarial chunks, draining after each.
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for chunk in chunks(&stream, &cuts) {
            buf.extend_from_slice(chunk);
            got.extend(drain_frames(&mut buf));
        }
        prop_assert!(buf.is_empty(), "complete stream must be fully consumed");
        prop_assert_eq!(got, whole);
    }

    #[test]
    fn prop_chunked_hello_then_frames_decodes_identically(
        tenant in "[A-Za-z0-9._-]{0,64}",
        frames in proptest::collection::vec(frame_parts(), 0..4),
        cuts in proptest::collection::vec(1usize..16, 1..24),
    ) {
        let mut stream = hello_bytes(&tenant).unwrap();
        stream.extend_from_slice(&encode_stream(&frames));
        let want_tenant = if tenant.is_empty() { DEFAULT_TENANT } else { &tenant };

        let mut buf: Vec<u8> = Vec::new();
        let mut seen_tenant: Option<String> = None;
        let mut got = Vec::new();
        for chunk in chunks(&stream, &cuts) {
            buf.extend_from_slice(chunk);
            if seen_tenant.is_none() {
                if let Some((t, used)) = split_hello(&buf).unwrap() {
                    buf.drain(..used);
                    seen_tenant = Some(t);
                }
            }
            if seen_tenant.is_some() {
                got.extend(drain_frames(&mut buf));
            }
        }
        prop_assert_eq!(seen_tenant.as_deref(), Some(want_tenant));
        prop_assert!(buf.is_empty());
        prop_assert_eq!(got.len(), frames.len());
        for (g, (t, seq, payload)) in got.iter().zip(&frames) {
            prop_assert_eq!(g.tag, *t);
            prop_assert_eq!(g.seq, *seq);
            prop_assert_eq!(&g.payload, payload);
        }
    }

    #[test]
    fn prop_split_parsers_never_panic_on_garbage(bytes: Vec<u8>) {
        // Arbitrary prefixes must yield Some, None, or Err — never panic,
        // and never consume more than the buffer holds.
        if let Ok(Some((_, used))) = split_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
        if let Ok(Some((_, used))) = split_hello(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }
}
