//! The `Transport` abstraction: the collectives the engine runs on.
//!
//! The KnightKing engine only ever talks to its cluster through three
//! collectives — all-to-all exchange, allreduce-SUM, and barrier — plus a
//! result gather at the end of a run. This trait captures exactly that
//! surface, so the same engine code drives both the in-process simulated
//! cluster ([`NodeCtx`]) and the multi-process TCP backend
//! ([`TcpTransport`](crate::TcpTransport)).
//!
//! The SPMD contract carries over unchanged from MPI: every node must
//! call the same collectives in the same order. The in-process backend
//! deadlocks (or panics via barrier poisoning) on violations; the TCP
//! backend detects sequence-number mismatches and aborts with a protocol
//! error.

use knightking_cluster::metrics::MetricCounts;
use knightking_cluster::{ExchangeStats, NodeCtx};

/// A cluster communication backend carrying messages of type `M`.
///
/// Methods take `&mut self` because real transports (sockets, sequence
/// counters) are stateful; the in-process backend simply ignores the
/// exclusivity. One `Transport` value belongs to one node of the cluster.
pub trait Transport<M> {
    /// This node's id in `[0, n_nodes)`.
    fn node(&self) -> usize;

    /// Number of nodes in the cluster.
    fn n_nodes(&self) -> usize;

    /// Waits until every node reaches this point (`MPI_Barrier`).
    fn barrier(&mut self);

    /// Sums `value` across all nodes and returns the total to each
    /// (`MPI_Allreduce` with `MPI_SUM`).
    fn allreduce_sum(&mut self, value: u64) -> u64;

    /// All-to-all message exchange (`MPI_Alltoallv`) with caller-supplied
    /// wire sizing.
    ///
    /// `outbox[i]` is delivered to node `i`; the returned inbox contains
    /// everything addressed to this node concatenated in sender-id order,
    /// self-addressed messages included. `wire_bytes` prices one message
    /// for the byte statistics; the TCP backend additionally uses it to
    /// pre-size encode buffers.
    ///
    /// # Panics
    ///
    /// Panics if `outbox.len() != n_nodes()`.
    fn exchange_with_stats(
        &mut self,
        outbox: Vec<Vec<M>>,
        wire_bytes: &dyn Fn(&M) -> usize,
    ) -> (Vec<M>, ExchangeStats);

    /// [`exchange_with_stats`](Transport::exchange_with_stats) with the
    /// default `size_of::<M>()` sizing — an upper bound that overstates
    /// enum messages. Prefer supplying real sizes.
    ///
    /// # Panics
    ///
    /// Panics if `outbox.len() != n_nodes()`.
    fn exchange(&mut self, outbox: Vec<Vec<M>>) -> Vec<M> {
        self.exchange_with_stats(outbox, &|_| std::mem::size_of::<M>())
            .0
    }

    /// Gathers one opaque byte payload per node at the leader
    /// (`MPI_Gatherv` to rank 0).
    ///
    /// Returns `Some(payloads)` on the leader with `payloads[i]` being
    /// node `i`'s contribution, `None` everywhere else. Used to collect
    /// per-node run results (path fragments, metrics) without forcing
    /// them through the typed message channel.
    fn gather_bytes(&mut self, payload: Vec<u8>) -> Option<Vec<Vec<u8>>>;

    /// Broadcasts one opaque byte payload from the leader to every node
    /// (`MPI_Bcast` from rank 0).
    ///
    /// The leader's `payload` is returned on every node (the leader gets
    /// its own bytes back); non-leader payloads are ignored and should be
    /// empty. Used by the serve loop to fan admission directives out from
    /// the node that owns the request queue.
    fn broadcast_bytes(&mut self, payload: Vec<u8>) -> Vec<u8>;

    /// Snapshot of the cluster-wide communication counters, as a
    /// collective (all nodes must call it together; all receive the same
    /// totals).
    ///
    /// The in-process backend reads the shared counters directly; the TCP
    /// backend allreduces each process's local socket-level counts.
    fn cluster_counts(&mut self) -> MetricCounts;

    /// Returns `true` on exactly one node (node 0).
    fn is_leader(&self) -> bool {
        self.node() == 0
    }
}

/// The in-process simulated cluster is a `Transport`: the trait methods
/// delegate to the existing collectives with zero behavior change.
impl<M: Send> Transport<M> for NodeCtx<'_, M> {
    fn node(&self) -> usize {
        self.node
    }

    fn n_nodes(&self) -> usize {
        NodeCtx::n_nodes(self)
    }

    fn barrier(&mut self) {
        NodeCtx::barrier(self);
    }

    fn allreduce_sum(&mut self, value: u64) -> u64 {
        NodeCtx::allreduce_sum(self, value)
    }

    fn exchange_with_stats(
        &mut self,
        outbox: Vec<Vec<M>>,
        wire_bytes: &dyn Fn(&M) -> usize,
    ) -> (Vec<M>, ExchangeStats) {
        NodeCtx::exchange_with_stats(self, outbox, wire_bytes)
    }

    fn gather_bytes(&mut self, payload: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        NodeCtx::gather_bytes(self, payload)
    }

    fn broadcast_bytes(&mut self, payload: Vec<u8>) -> Vec<u8> {
        NodeCtx::broadcast_bytes(self, payload)
    }

    fn cluster_counts(&mut self) -> MetricCounts {
        // The counters are shared by every node; the barriers make the
        // snapshot a proper collective (all prior sends are recorded, and
        // no node races ahead into the next exchange while others read).
        NodeCtx::barrier(self);
        let counts = self.metrics().clone_counts();
        NodeCtx::barrier(self);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_cluster::run_cluster;

    /// Drives the collectives through the trait object surface, proving
    /// the in-process backend behaves identically via `Transport`.
    #[test]
    fn node_ctx_implements_transport() {
        let results = run_cluster::<u64, _, _>(3, |ctx| {
            let mut t: Box<dyn Transport<u64> + '_> = Box::new(ctx);
            assert_eq!(t.n_nodes(), 3);
            let me = t.node();
            t.barrier();
            let total = t.allreduce_sum(me as u64 + 1);
            assert_eq!(total, 6);
            let outbox: Vec<Vec<u64>> = (0..3).map(|to| vec![(me * 10 + to) as u64]).collect();
            let (inbox, stats) = t.exchange_with_stats(outbox, &|_| 5);
            assert_eq!(stats.received, 3);
            assert_eq!(stats.sent_messages, 2);
            assert_eq!(stats.sent_bytes, 10);
            let gathered = t.gather_bytes(vec![me as u8; me + 1]);
            assert_eq!(gathered.is_some(), me == 0);
            if let Some(parts) = &gathered {
                assert_eq!(parts.len(), 3);
                for (i, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![i as u8; i + 1]);
                }
            }
            let bcast = t.broadcast_bytes(if me == 0 { vec![9, 9, 9] } else { Vec::new() });
            assert_eq!(bcast, vec![9, 9, 9]);
            let counts = t.cluster_counts();
            assert_eq!(counts.messages, 6);
            inbox
        });
        for (me, inbox) in results.iter().enumerate() {
            let expected: Vec<u64> = (0..3).map(|from| (from * 10 + me) as u64).collect();
            assert_eq!(inbox, &expected);
        }
    }
}
