#![warn(missing_docs)]

//! Pluggable transport layer for the KnightKing engine.
//!
//! The paper runs KnightKing on an 8-node cluster over OpenMPI (§6.2,
//! §7.1). This crate abstracts the engine's communication surface — the
//! three MPI-style collectives it actually uses plus a result gather —
//! behind the [`Transport`] trait, with two interchangeable backends:
//!
//! * the **in-process simulated cluster** of `knightking-cluster`
//!   ([`NodeCtx`](knightking_cluster::NodeCtx) implements [`Transport`]
//!   with zero behavior change), and
//! * a real **TCP backend** ([`TcpTransport`]) that runs each node as a
//!   separate OS process over a full mesh of framed, handshake-validated
//!   socket connections.
//!
//! Messages cross process boundaries through the dependency-free
//! [`Wire`] codec; its exact `wire_size` doubles as the byte-accounting
//! function for both backends, so communication-volume histograms agree
//! whether the cluster is simulated or real.

pub mod frame;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use tcp::{reserve_loopback_addrs, TcpConfig, TcpTransport};
pub use transport::Transport;
pub use wire::{from_bytes, to_bytes, Wire, WireError};
