//! TCP wire protocol: handshake and length-prefixed frames.
//!
//! # Handshake (exchanged once per connection, both directions)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"KKNT"
//! 4       2     protocol version (little-endian u16, currently 1)
//! 6       8     run epoch (u64): all members of one launch share it
//! 14      4     cluster size n_nodes (u32)
//! 18      4     sender rank (u32)
//! ```
//!
//! The connecting side sends its handshake first, then reads the peer's.
//! Magic and version mismatches mean "not a knightking-net peer" /
//! incompatible build; an epoch mismatch means a stale process from a
//! previous launch is still bound to the port; size/rank mismatches mean
//! a misconfigured hostfile. Each case fails with a distinct error.
//!
//! # Frames (everything after the handshake)
//!
//! ```text
//! offset  size  field
//! 0       1     tag (DATA / BARRIER / REDUCE / GATHER / BCAST / REQ / RESP)
//! 1       8     collective sequence number (u64)
//! 9       4     payload length (u32)
//! 13      len   payload
//! ```
//!
//! Every collective increments the sequence number on all ranks; a
//! receiver that observes a frame with an unexpected sequence number has
//! caught an SPMD-contract violation (or crossed wires) and aborts
//! rather than mis-delivering.

use std::io::{self, Read, Write};

/// Connection magic: identifies a knightking-net peer.
pub const MAGIC: [u8; 4] = *b"KKNT";

/// Protocol version. Bump on any incompatible frame or handshake change.
pub const VERSION: u16 = 1;

/// Hard ceiling on one frame's payload (1 GiB): corrupt lengths fail
/// fast instead of attempting absurd allocations.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Frame tags.
pub mod tag {
    /// One exchange's messages for the receiving rank.
    pub const DATA: u8 = 1;
    /// Barrier announcement (empty payload).
    pub const BARRIER: u8 = 2;
    /// Allreduce contribution (8-byte payload).
    pub const REDUCE: u8 = 3;
    /// Result gather payload (rank ≠ 0 → rank 0).
    pub const GATHER: u8 = 4;
    /// Broadcast payload (rank 0 → every other rank).
    pub const BCAST: u8 = 5;
    /// Serve-protocol request (client → `kk serve` listener). The
    /// sequence number is the client-chosen request id, echoed in the
    /// matching RESP frame.
    pub const REQ: u8 = 6;
    /// Serve-protocol response (listener → client).
    pub const RESP: u8 = 7;
}

/// Size of an encoded frame header.
pub const HEADER_LEN: usize = 1 + 8 + 4;

/// Size of an encoded handshake.
pub const HANDSHAKE_LEN: usize = 4 + 2 + 8 + 4 + 4;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind (see [`tag`]).
    pub tag: u8,
    /// Collective sequence number at the sender.
    pub seq: u64,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Identity a peer announces during the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Launch epoch shared by every member of the run.
    pub epoch: u64,
    /// Cluster size the peer believes in.
    pub n_nodes: u32,
    /// The peer's rank.
    pub rank: u32,
}

impl Handshake {
    /// Encodes the handshake into its fixed wire layout.
    pub fn to_bytes(self) -> [u8; HANDSHAKE_LEN] {
        let mut out = [0u8; HANDSHAKE_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&VERSION.to_le_bytes());
        out[6..14].copy_from_slice(&self.epoch.to_le_bytes());
        out[14..18].copy_from_slice(&self.n_nodes.to_le_bytes());
        out[18..22].copy_from_slice(&self.rank.to_le_bytes());
        out
    }

    /// Writes the handshake to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Reads and validates a peer handshake against our own view of the
    /// run. `expect_rank` pins the rank when the caller knows who must be
    /// on the other end (outbound connections); accepting sides pass
    /// `None` and learn the rank from the handshake.
    ///
    /// # Errors
    ///
    /// Fails with `InvalidData` describing exactly which field
    /// mismatched, or with the underlying I/O error.
    pub fn read_validated<R: Read>(
        r: &mut R,
        ours: Handshake,
        expect_rank: Option<u32>,
    ) -> io::Result<Handshake> {
        let mut buf = [0u8; HANDSHAKE_LEN];
        r.read_exact(&mut buf)?;
        let bad = |msg: String| Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        if buf[0..4] != MAGIC {
            return bad(format!(
                "handshake magic mismatch: got {:02x?}, want {:02x?} — peer is not a knightking-net process",
                &buf[0..4],
                MAGIC
            ));
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().expect("sized"));
        if version != VERSION {
            return bad(format!(
                "protocol version mismatch: peer speaks v{version}, this build speaks v{VERSION}"
            ));
        }
        let theirs = Handshake {
            epoch: u64::from_le_bytes(buf[6..14].try_into().expect("sized")),
            n_nodes: u32::from_le_bytes(buf[14..18].try_into().expect("sized")),
            rank: u32::from_le_bytes(buf[18..22].try_into().expect("sized")),
        };
        if theirs.epoch != ours.epoch {
            return bad(format!(
                "epoch mismatch: peer is from launch {:#x}, this launch is {:#x} — \
                 a stale process from a previous run is likely still alive",
                theirs.epoch, ours.epoch
            ));
        }
        if theirs.n_nodes != ours.n_nodes {
            return bad(format!(
                "cluster size mismatch: peer expects {} nodes, this process expects {}",
                theirs.n_nodes, ours.n_nodes
            ));
        }
        if theirs.rank >= ours.n_nodes {
            return bad(format!(
                "peer rank {} out of range for a {}-node cluster",
                theirs.rank, ours.n_nodes
            ));
        }
        if let Some(want) = expect_rank {
            if theirs.rank != want {
                return bad(format!(
                    "connected to the wrong peer: expected rank {want}, got rank {}",
                    theirs.rank
                ));
            }
        }
        Ok(theirs)
    }
}

/// Writes one frame (header + payload) to `w`. Returns the number of
/// bytes put on the wire, for socket-level byte accounting.
///
/// # Errors
///
/// Fails with `InvalidInput` (nothing written) when the payload exceeds
/// [`MAX_FRAME_LEN`], or propagates the underlying I/O failure.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, seq: u64, payload: &[u8]) -> io::Result<u64> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte ceiling",
                    payload.len()
                ),
            )
        })?;
    let mut header = [0u8; HEADER_LEN];
    header[0] = tag;
    header[1..9].copy_from_slice(&seq.to_le_bytes());
    header[9..13].copy_from_slice(&len.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok((HEADER_LEN + payload.len()) as u64)
}

/// Reads one frame from `r`, validating the tag and length.
///
/// # Errors
///
/// Fails with `UnexpectedEof` when the peer closed the connection, or
/// `InvalidData` on an unknown tag / oversized length.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let tag = header[0];
    if !(tag::DATA..=tag::RESP).contains(&tag) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame tag {tag}"),
        ));
    }
    let seq = u64::from_le_bytes(header[1..9].try_into().expect("sized"));
    let len = u32::from_le_bytes(header[9..13].try_into().expect("sized"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte ceiling"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { tag, seq, payload })
}

/// Tries to split one frame off the front of `buf` — the non-blocking
/// counterpart of [`read_frame`] for event-loop readers that accumulate
/// whatever bytes the socket had. Returns the frame plus how many bytes
/// it consumed (the caller drains that prefix), or `None` when `buf`
/// does not yet hold a complete frame.
///
/// # Errors
///
/// Fails with `InvalidData` on an unknown tag or oversized length — as
/// soon as the header alone reveals it, without waiting for the payload.
pub fn split_frame(buf: &[u8]) -> io::Result<Option<(Frame, usize)>> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let t = buf[0];
    if !(tag::DATA..=tag::RESP).contains(&t) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame tag {t}"),
        ));
    }
    let seq = u64::from_le_bytes(buf[1..9].try_into().expect("sized"));
    let len = u32::from_le_bytes(buf[9..13].try_into().expect("sized"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte ceiling"),
        ));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Frame {
            tag: t,
            seq,
            payload: buf[HEADER_LEN..total].to_vec(),
        },
        total,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    const OURS: Handshake = Handshake {
        epoch: 0xDEAD_BEEF,
        n_nodes: 4,
        rank: 0,
    };

    #[test]
    fn handshake_round_trip() {
        let theirs = Handshake { rank: 2, ..OURS };
        let bytes = theirs.to_bytes();
        let got = Handshake::read_validated(&mut &bytes[..], OURS, Some(2)).unwrap();
        assert_eq!(got, theirs);
    }

    #[test]
    fn handshake_rejects_bad_magic() {
        let mut bytes = Handshake { rank: 1, ..OURS }.to_bytes();
        bytes[0] = b'X';
        let err = Handshake::read_validated(&mut &bytes[..], OURS, None).unwrap_err();
        assert!(err.to_string().contains("magic mismatch"), "{err}");
    }

    #[test]
    fn handshake_rejects_future_version() {
        let mut bytes = Handshake { rank: 1, ..OURS }.to_bytes();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        let err = Handshake::read_validated(&mut &bytes[..], OURS, None).unwrap_err();
        assert!(err.to_string().contains("version mismatch"), "{err}");
    }

    #[test]
    fn handshake_rejects_stale_epoch() {
        let stale = Handshake { epoch: 123, ..OURS };
        let bytes = stale.to_bytes();
        let err = Handshake::read_validated(&mut &bytes[..], OURS, None).unwrap_err();
        assert!(err.to_string().contains("epoch mismatch"), "{err}");
    }

    #[test]
    fn handshake_rejects_wrong_cluster_size() {
        let other = Handshake { n_nodes: 8, ..OURS };
        let bytes = other.to_bytes();
        let err = Handshake::read_validated(&mut &bytes[..], OURS, None).unwrap_err();
        assert!(err.to_string().contains("size mismatch"), "{err}");
    }

    #[test]
    fn handshake_rejects_unexpected_rank() {
        let bytes = Handshake { rank: 3, ..OURS }.to_bytes();
        let err = Handshake::read_validated(&mut &bytes[..], OURS, Some(1)).unwrap_err();
        assert!(err.to_string().contains("wrong peer"), "{err}");
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, tag::DATA, 42, b"hello").unwrap();
        assert_eq!(n as usize, HEADER_LEN + 5);
        let frame = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(
            frame,
            Frame {
                tag: tag::DATA,
                seq: 42,
                payload: b"hello".to_vec()
            }
        );
    }

    #[test]
    fn empty_payload_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::BARRIER, 7, &[]).unwrap();
        let frame = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(frame.tag, tag::BARRIER);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::DATA, 0, &[]).unwrap();
        buf[0] = 200;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::DATA, 0, &[]).unwrap();
        buf[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::DATA, 0, b"abcdef").unwrap();
        let err = read_frame(&mut &buf[..HEADER_LEN + 2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn split_frame_agrees_with_read_frame_on_every_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::REQ, 99, b"payload bytes").unwrap();
        let whole = read_frame(&mut &buf[..]).unwrap();
        for cut in 0..buf.len() {
            assert_eq!(split_frame(&buf[..cut]).unwrap(), None, "prefix {cut}");
        }
        let (frame, used) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(frame, whole);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn split_frame_leaves_trailing_bytes_alone() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::RESP, 1, b"first").unwrap();
        let first_len = buf.len();
        write_frame(&mut buf, tag::RESP, 2, b"second").unwrap();
        let (frame, used) = split_frame(&buf).unwrap().unwrap();
        assert_eq!(frame.seq, 1);
        assert_eq!(used, first_len);
        let (frame2, used2) = split_frame(&buf[used..]).unwrap().unwrap();
        assert_eq!(frame2.seq, 2);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn split_frame_rejects_bad_header_before_payload_arrives() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::DATA, 0, b"abcdef").unwrap();
        buf[0] = 200;
        // Header alone (payload still in flight) already fails.
        let err = split_frame(&buf[..HEADER_LEN]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut buf = Vec::new();
        write_frame(&mut buf, tag::DATA, 0, &[]).unwrap();
        buf[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = split_frame(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
