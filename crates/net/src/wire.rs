//! `Wire`: the hand-rolled, dependency-free serialization used on the
//! TCP transport.
//!
//! Every value encodes to a fixed, platform-independent little-endian
//! layout; `wire_size` reports the *exact* number of bytes `encode`
//! appends. That exactness is load-bearing twice over: the framing layer
//! pre-sizes buffers from it, and the engine feeds it to
//! `exchange_with_stats` so the byte histograms of the in-process and TCP
//! backends agree (the in-process backend never serializes at all, it
//! just *prices* messages with the same function).
//!
//! Encoding is fallible: lengths on the wire are `u32`, so a collection
//! longer than `u32::MAX` cannot be represented. That limit surfaces as a
//! typed [`WireError`] instead of a panic, letting servers reject an
//! oversized value without dying.
//!
//! No `serde`: the workspace is dependency-free by design, and the
//! message set is small enough that explicit impls are clearer than a
//! derive anyway.

use std::io;

/// Failure to encode a value into the wire format.
///
/// The wire format itself imposes the only limit: collection lengths are
/// carried as `u32`, so anything longer is unrepresentable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A collection exceeded the `u32` length field of the wire format.
    TooLong {
        /// What was being encoded (e.g. `"vec"`).
        what: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooLong { what, len } => {
                write!(f, "wire: {what} of length {len} exceeds u32::MAX")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A value with an exact, self-describing binary encoding.
///
/// Contract: a successful `encode` appends exactly `wire_size()` bytes,
/// and `decode` consumes exactly the bytes `encode` produced, yielding an
/// equal value. The proptest suite in this module checks the round trip
/// for every built-in impl.
pub trait Wire: Sized {
    /// Exact number of bytes `encode` will append for this value.
    fn wire_size(&self) -> usize;
    /// Appends the encoding of `self` to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TooLong`] when a contained collection exceeds
    /// the `u32` length field of the wire format. On error, `out` may
    /// hold a partial encoding and should be discarded.
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError>;
    /// Decodes one value from the front of `input`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] on truncated input and
    /// [`io::ErrorKind::InvalidData`] on malformed bytes (e.g. a bool
    /// that is neither 0 nor 1).
    fn decode(input: &mut &[u8]) -> io::Result<Self>;
}

/// Takes `n` bytes off the front of `input` or fails with a labelled EOF.
fn take<'a>(input: &mut &'a [u8], n: usize, what: &str) -> io::Result<&'a [u8]> {
    if input.len() < n {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "wire: truncated {what} (need {n} bytes, have {})",
                input.len()
            ),
        ));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! wire_prim {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
                out.extend_from_slice(&self.to_le_bytes());
                Ok(())
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> io::Result<Self> {
                let bytes = take(input, std::mem::size_of::<$t>(), stringify!($t))?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

wire_prim!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for () {
    #[inline]
    fn wire_size(&self) -> usize {
        0
    }
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) -> Result<(), WireError> {
        Ok(())
    }
    #[inline]
    fn decode(_input: &mut &[u8]) -> io::Result<Self> {
        Ok(())
    }
}

impl Wire for bool {
    #[inline]
    fn wire_size(&self) -> usize {
        1
    }
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        out.push(u8::from(*self));
        Ok(())
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        match take(input, 1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire: invalid bool byte {b}"),
            )),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out)?;
            }
        }
        Ok(())
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        match take(input, 1, "option tag")?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            b => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire: invalid option tag {b}"),
            )),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let n = u32::try_from(self.len()).map_err(|_| WireError::TooLong {
            what: "vec",
            len: self.len(),
        })?;
        n.encode(out)?;
        for v in self {
            v.encode(out)?;
        }
        Ok(())
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        let n = u32::decode(input)? as usize;
        // Bound the pre-allocation by what the input could possibly hold,
        // so a corrupt length cannot OOM before the EOF error surfaces.
        let mut out = Vec::with_capacity(n.min(input.len()));
        for _ in 0..n {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<const N: usize> Wire for [u64; N] {
    #[inline]
    fn wire_size(&self) -> usize {
        8 * N
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        for v in self {
            v.encode(out)?;
        }
        Ok(())
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        let mut out = [0u64; N];
        for v in &mut out {
            *v = u64::decode(input)?;
        }
        Ok(out)
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            #[inline]
            fn wire_size(&self) -> usize {
                0 $(+ self.$idx.wire_size())+
            }
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
                $(self.$idx.encode(out)?;)+
                Ok(())
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> io::Result<Self> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    };
}

wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Encodes a value into a fresh buffer (sized exactly).
///
/// # Errors
///
/// Returns [`WireError::TooLong`] when a contained collection exceeds the
/// `u32` length field of the wire format.
pub fn to_bytes<T: Wire>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(value.wire_size());
    value.encode(&mut out)?;
    debug_assert_eq!(out.len(), value.wire_size(), "wire_size lied");
    Ok(out)
}

/// Decodes a value from a buffer, requiring the buffer be fully consumed.
///
/// # Errors
///
/// Fails on truncated or malformed input, or on trailing garbage.
pub fn from_bytes<T: Wire>(mut input: &[u8]) -> io::Result<T> {
    let v = T::decode(&mut input)?;
    if !input.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire: {} trailing bytes after value", input.len()),
        ));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(bytes.len(), v.wire_size());
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0xABu8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-5i32);
        round_trip(1.5f32);
        round_trip(-0.25f64);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip((1u32, true));
        round_trip((1u8, 2u16, 3u32));
        round_trip([1u64, 2, 3, 4]);
        round_trip((Some(3u32), Option::<u32>::None));
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = to_bytes(&0xAABBCCDDu32).unwrap();
        let err = from_bytes::<u32>(&bytes[..2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(99);
        let err = from_bytes::<u8>(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn invalid_bool_rejected() {
        let err = from_bytes::<bool>(&[2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_vec_length_does_not_alloc_unbounded() {
        // Length claims u32::MAX elements; must error, not OOM.
        let bytes = to_bytes(&u32::MAX).unwrap();
        let err = from_bytes::<Vec<u64>>(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// An oversized collection surfaces as a typed error, not a panic.
    /// `Vec<()>` makes a >u32::MAX-element vector cheap to build: each
    /// element is zero bytes on the wire, so only the length field
    /// overflows.
    #[test]
    fn oversized_vec_is_a_typed_error() {
        let v = vec![(); u32::MAX as usize + 1];
        let err = to_bytes(&v).unwrap_err();
        assert_eq!(
            err,
            WireError::TooLong {
                what: "vec",
                len: u32::MAX as usize + 1,
            }
        );
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }
}
