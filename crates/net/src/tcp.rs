//! The TCP backend: one OS process per node, full-mesh sockets.
//!
//! # Connection establishment
//!
//! Every rank binds its listener first, then connects to all *lower*
//! ranks (with bounded exponential-backoff retry, since peers may still
//! be starting) and accepts from all *higher* ranks. Rank 0 only
//! accepts; rank n−1 only connects. Because each rank's outbound
//! connections target ranks that accept unconditionally after their own
//! (inductively terminating) connect phase, the mesh always completes or
//! fails by the deadline — never deadlocks.
//!
//! Both sides of every connection exchange a [`Handshake`] validating
//! magic, protocol version, launch epoch, cluster size, and peer rank
//! before any frame flows.
//!
//! # Data flow
//!
//! Each peer connection gets a dedicated reader thread draining frames
//! into a channel. This is what makes naive blocking writes safe: a
//! collective writes to all peers then reads from all peers, and even if
//! every rank writes more than the kernel buffers hold, the peers'
//! reader threads keep consuming, so no write can block forever.
//!
//! # Failure propagation
//!
//! A peer process that panics (or is killed) closes its sockets; the
//! reader thread surfaces the EOF/reset, and the next collective call
//! panics with a message naming the lost rank — the multi-process
//! analogue of the in-process cluster's poisoned barrier. The panic
//! unwinds this process's `TcpTransport`, whose `Drop` shuts down its
//! own sockets, cascading the failure through the whole cluster.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use knightking_cluster::metrics::MetricCounts;
use knightking_cluster::{ClusterMetrics, ExchangeStats};

use crate::frame::{read_frame, tag, write_frame, Frame, Handshake};
use crate::transport::Transport;
use crate::wire::Wire;

/// Configuration for one rank of a TCP cluster.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's rank in `[0, peers.len())`.
    pub rank: usize,
    /// `peers[r]` is the address rank `r` listens on. The length is the
    /// cluster size.
    pub peers: Vec<SocketAddr>,
    /// Launch epoch: any unique value shared by all ranks of one run.
    /// Connections from processes with a different epoch (stale runs)
    /// are rejected during the handshake.
    pub epoch: u64,
    /// Total deadline for establishing the full mesh.
    pub connect_deadline: Duration,
}

impl TcpConfig {
    /// Standard configuration with a 30-second establishment deadline.
    pub fn new(rank: usize, peers: Vec<SocketAddr>, epoch: u64) -> Self {
        TcpConfig {
            rank,
            peers,
            epoch,
            connect_deadline: Duration::from_secs(30),
        }
    }
}

/// One fully-handshaken peer connection.
struct Peer {
    /// Buffered writer over the socket (flushed once per collective).
    writer: BufWriter<TcpStream>,
    /// Frames drained off the socket by the reader thread.
    rx: mpsc::Receiver<io::Result<Frame>>,
    /// The raw socket, kept for shutdown on drop.
    stream: TcpStream,
    /// Reader thread handle, joined on drop.
    reader: Option<std::thread::JoinHandle<()>>,
}

/// A [`Transport`] over real sockets: this process is one node of an
/// `n`-process cluster.
pub struct TcpTransport {
    rank: usize,
    n_nodes: usize,
    /// `peers[r]` is the connection to rank `r`; `None` at our own rank.
    peers: Vec<Option<Peer>>,
    /// Collective sequence number; every collective increments it on all
    /// ranks, and every frame carries it for SPMD-violation detection.
    seq: u64,
    /// Local socket-level communication counters (allreduced into
    /// cluster-wide totals by `cluster_counts`).
    metrics: ClusterMetrics,
    /// Scratch encode buffer reused across collectives.
    scratch: Vec<u8>,
}

impl TcpTransport {
    /// Binds this rank's listener and establishes the full mesh.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind, a peer cannot be reached
    /// before the deadline, or any handshake is invalid (wrong magic,
    /// version, epoch, cluster size, or rank).
    pub fn establish(cfg: TcpConfig) -> io::Result<TcpTransport> {
        let n = cfg.peers.len();
        if n == 0 || cfg.rank >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("rank {} out of range for {} peers", cfg.rank, n),
            ));
        }
        let ours = Handshake {
            epoch: cfg.epoch,
            n_nodes: n as u32,
            rank: cfg.rank as u32,
        };
        let mut peers: Vec<Option<Peer>> = (0..n).map(|_| None).collect();

        if n > 1 {
            // Bind before connecting to anyone, so peers that start
            // earlier can reach us while we are still dialing out.
            let listener = TcpListener::bind(cfg.peers[cfg.rank]).map_err(|e| {
                io::Error::new(
                    e.kind(),
                    format!("rank {} cannot bind {}: {e}", cfg.rank, cfg.peers[cfg.rank]),
                )
            })?;
            let deadline = Instant::now() + cfg.connect_deadline;

            // Dial all lower ranks (they accept us below, symmetrically).
            for (r, slot) in peers.iter_mut().enumerate().take(cfg.rank) {
                let stream = connect_with_backoff(cfg.peers[r], deadline)?;
                prepare_stream(&stream, deadline)?;
                let mut stream = stream;
                ours.write_to(&mut stream)?;
                Handshake::read_validated(&mut stream, ours, Some(r as u32)).map_err(|e| {
                    io::Error::new(e.kind(), format!("handshake with rank {r} failed: {e}"))
                })?;
                stream.set_read_timeout(None)?;
                *slot = Some(Peer::spawn(stream, r)?);
            }

            // Accept all higher ranks.
            listener.set_nonblocking(true)?;
            for _ in 0..(n - cfg.rank - 1) {
                let stream = accept_with_deadline(&listener, deadline)?;
                prepare_stream(&stream, deadline)?;
                let mut stream = stream;
                let theirs = Handshake::read_validated(&mut stream, ours, None).map_err(|e| {
                    io::Error::new(e.kind(), format!("inbound handshake failed: {e}"))
                })?;
                let r = theirs.rank as usize;
                if r <= cfg.rank || peers[r].is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "unexpected inbound connection from rank {r} (to rank {})",
                            cfg.rank
                        ),
                    ));
                }
                ours.write_to(&mut stream)?;
                stream.set_read_timeout(None)?;
                peers[r] = Some(Peer::spawn(stream, r)?);
            }
        }

        Ok(TcpTransport {
            rank: cfg.rank,
            n_nodes: n,
            peers,
            seq: 0,
            metrics: ClusterMetrics::new(n),
            scratch: Vec::new(),
        })
    }

    /// Local socket-level counters of *this process* (remote messages,
    /// frame bytes on the wire, exchanges observed by rank 0).
    pub fn local_counts(&self) -> MetricCounts {
        self.metrics.clone_counts()
    }

    /// This process's rank in the cluster.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the cluster.
    pub fn world_size(&self) -> usize {
        self.n_nodes
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Writes one frame to `to`, returning its socket footprint in bytes.
    fn send(&mut self, to: usize, tag: u8, seq: u64, payload: &[u8]) -> u64 {
        let peer = self.peers[to].as_mut().expect("send to self");
        match write_frame(&mut peer.writer, tag, seq, payload) {
            Ok(bytes) => bytes,
            Err(e) => die(to, &e),
        }
    }

    fn flush(&mut self, to: usize) {
        let peer = self.peers[to].as_mut().expect("flush to self");
        if let Err(e) = peer.writer.flush() {
            die(to, &e);
        }
    }

    fn flush_all(&mut self) {
        for to in 0..self.n_nodes {
            if to != self.rank {
                self.flush(to);
            }
        }
    }

    /// Receives the next frame from `from`, enforcing tag and sequence.
    fn recv(&self, from: usize, want_tag: u8, want_seq: u64) -> Frame {
        let peer = self.peers[from].as_ref().expect("recv from self");
        let frame = match peer.rx.recv() {
            Ok(Ok(f)) => f,
            Ok(Err(e)) => die(from, &e),
            Err(mpsc::RecvError) => die(
                from,
                &io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"),
            ),
        };
        if frame.tag != want_tag || frame.seq != want_seq {
            panic!(
                "knightking-net: protocol violation from rank {from}: expected tag {want_tag} \
                 seq {want_seq}, got tag {} seq {} — the ranks' collective call order diverged \
                 (SPMD contract broken)",
                frame.tag, frame.seq
            );
        }
        frame
    }
}

/// Aborts the collective with a clear message naming the lost peer.
/// The surviving process must fail loudly here: the alternative is
/// hanging forever on a rank that will never answer.
fn die(peer: usize, err: &io::Error) -> ! {
    panic!(
        "knightking-net: lost connection to rank {peer}: {err} — a peer process crashed or \
         closed its sockets; aborting this rank instead of hanging"
    );
}

impl Peer {
    /// Wraps a handshaken stream: spawns its reader thread and sets up
    /// buffered writing.
    fn spawn(stream: TcpStream, peer_rank: usize) -> io::Result<Peer> {
        let read_half = stream.try_clone()?;
        let write_half = stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name(format!("kk-net-rx-{peer_rank}"))
            .spawn(move || {
                let mut input = BufReader::new(read_half);
                loop {
                    match read_frame(&mut input) {
                        Ok(f) => {
                            if tx.send(Ok(f)).is_err() {
                                return; // transport dropped; stop quietly
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })?;
        Ok(Peer {
            writer: BufWriter::new(write_half),
            rx,
            stream,
            reader: Some(reader),
        })
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Shut down every socket first (unblocks all reader threads and
        // tells peers we are gone), then join the readers.
        for peer in self.peers.iter().flatten() {
            let _ = peer.stream.shutdown(Shutdown::Both);
        }
        for peer in self.peers.iter_mut().flatten() {
            if let Some(handle) = peer.reader.take() {
                let _ = handle.join();
            }
        }
    }
}

impl<M: Wire> Transport<M> for TcpTransport {
    fn node(&self) -> usize {
        self.rank
    }

    fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    fn barrier(&mut self) {
        if self.n_nodes == 1 {
            return;
        }
        let seq = self.next_seq();
        let mut socket_bytes = 0u64;
        for to in 0..self.n_nodes {
            if to != self.rank {
                socket_bytes += self.send(to, tag::BARRIER, seq, &[]);
            }
        }
        self.flush_all();
        for from in 0..self.n_nodes {
            if from != self.rank {
                self.recv(from, tag::BARRIER, seq);
            }
        }
        self.metrics.record_send_sized(0, socket_bytes);
    }

    fn allreduce_sum(&mut self, value: u64) -> u64 {
        if self.n_nodes == 1 {
            return value;
        }
        let seq = self.next_seq();
        let payload = value.to_le_bytes();
        let mut socket_bytes = 0u64;
        for to in 0..self.n_nodes {
            if to != self.rank {
                socket_bytes += self.send(to, tag::REDUCE, seq, &payload);
            }
        }
        self.flush_all();
        let mut total = value;
        for from in 0..self.n_nodes {
            if from == self.rank {
                continue;
            }
            let frame = self.recv(from, tag::REDUCE, seq);
            let bytes: [u8; 8] = frame.payload.as_slice().try_into().unwrap_or_else(|_| {
                panic!(
                    "knightking-net: malformed allreduce payload from rank {from} \
                     ({} bytes, want 8)",
                    frame.payload.len()
                )
            });
            total = total.wrapping_add(u64::from_le_bytes(bytes));
        }
        self.metrics.record_send_sized(0, socket_bytes);
        total
    }

    fn exchange_with_stats(
        &mut self,
        outbox: Vec<Vec<M>>,
        wire_bytes: &dyn Fn(&M) -> usize,
    ) -> (Vec<M>, ExchangeStats) {
        let n = self.n_nodes;
        assert_eq!(outbox.len(), n, "outbox must address every node");
        let seq = self.next_seq();

        let mut own: Vec<M> = Vec::new();
        let mut sent_messages = 0u64;
        let mut sent_bytes = 0u64;
        let mut socket_bytes = 0u64;
        let mut scratch = std::mem::take(&mut self.scratch);
        for (to, msgs) in outbox.into_iter().enumerate() {
            if to == self.rank {
                own = msgs;
                continue;
            }
            sent_messages += msgs.len() as u64;
            scratch.clear();
            (msgs.len() as u32)
                .encode(&mut scratch)
                .expect("u32 encode is infallible");
            for m in &msgs {
                sent_bytes += wire_bytes(m) as u64;
                m.encode(&mut scratch)
                    .expect("message exceeds wire encoding limits");
            }
            socket_bytes += self.send(to, tag::DATA, seq, &scratch);
        }
        self.scratch = scratch;
        self.flush_all();

        // Inbox in sender-rank order, self included at index `rank` —
        // the delivery order the engine's determinism contract needs,
        // identical to the in-process backend.
        let mut inbox = Vec::new();
        for from in 0..n {
            if from == self.rank {
                inbox.append(&mut own);
                continue;
            }
            let frame = self.recv(from, tag::DATA, seq);
            let mut input = frame.payload.as_slice();
            let count = decode_or_die::<u32>(&mut input, from);
            inbox.reserve(count as usize);
            for _ in 0..count {
                inbox.push(decode_or_die::<M>(&mut input, from));
            }
            if !input.is_empty() {
                panic!(
                    "knightking-net: {} trailing bytes in exchange payload from rank {from}",
                    input.len()
                );
            }
        }
        self.metrics.record_send_sized(sent_messages, socket_bytes);
        self.metrics.record_exchange(self.rank);
        let received = inbox.len();
        (
            inbox,
            ExchangeStats {
                sent_messages,
                sent_bytes,
                received,
            },
        )
    }

    fn gather_bytes(&mut self, payload: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        if self.n_nodes == 1 {
            return Some(vec![payload]);
        }
        let seq = self.next_seq();
        if self.rank == 0 {
            let mut parts = Vec::with_capacity(self.n_nodes);
            parts.push(payload);
            for from in 1..self.n_nodes {
                parts.push(self.recv(from, tag::GATHER, seq).payload);
            }
            Some(parts)
        } else {
            let payload_len = payload.len() as u64;
            let socket_bytes = self.send(0, tag::GATHER, seq, &payload);
            self.flush(0);
            // One remote "message" whose payload is the gathered blob.
            let _ = payload_len;
            self.metrics.record_send_sized(1, socket_bytes);
            None
        }
    }

    fn broadcast_bytes(&mut self, payload: Vec<u8>) -> Vec<u8> {
        if self.n_nodes == 1 {
            return payload;
        }
        let seq = self.next_seq();
        if self.rank == 0 {
            let mut socket_bytes = 0u64;
            for to in 1..self.n_nodes {
                socket_bytes += self.send(to, tag::BCAST, seq, &payload);
            }
            self.flush_all();
            self.metrics
                .record_send_sized((self.n_nodes - 1) as u64, socket_bytes);
            payload
        } else {
            self.recv(0, tag::BCAST, seq).payload
        }
    }

    fn cluster_counts(&mut self) -> MetricCounts {
        // Snapshot *before* the allreduces below so their own traffic
        // does not skew the totals mid-flight.
        let local = self.metrics.clone_counts();
        MetricCounts {
            messages: Transport::<M>::allreduce_sum(self, local.messages),
            bytes: Transport::<M>::allreduce_sum(self, local.bytes),
            // Only rank 0 counts exchanges (same convention as the
            // in-process backend), so the sum is the collective count.
            exchanges: Transport::<M>::allreduce_sum(self, local.exchanges),
        }
    }
}

fn decode_or_die<T: Wire>(input: &mut &[u8], from: usize) -> T {
    T::decode(input).unwrap_or_else(|e| {
        panic!("knightking-net: corrupt exchange payload from rank {from}: {e}")
    })
}

/// Dials `addr`, retrying with exponential backoff (10 ms doubling,
/// capped at 1 s) until `deadline`.
fn connect_with_backoff(addr: SocketAddr, deadline: Instant) -> io::Result<TcpStream> {
    let mut delay = Duration::from_millis(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + delay >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("could not connect to peer {addr} before the deadline: {e}"),
                    ));
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Accepts one connection from a non-blocking listener, polling until
/// `deadline`.
fn accept_with_deadline(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out waiting for inbound peer connections",
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Per-connection socket options: no Nagle batching (collectives are
/// latency-bound), and a handshake read timeout so a silent peer cannot
/// stall establishment past the deadline.
fn prepare_stream(stream: &TcpStream, deadline: Instant) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let remaining = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    stream.set_read_timeout(Some(remaining))?;
    Ok(())
}

/// Reserves `n` distinct loopback addresses by briefly binding port 0.
///
/// The sockets are closed before returning, so a small race window
/// exists in which another process could claim a port; on a loopback
/// smoke-test machine this is vanishingly unlikely, and the TCP
/// handshake's epoch check catches any actual collision.
///
/// # Errors
///
/// Propagates bind failures.
pub fn reserve_loopback_addrs(n: usize) -> io::Result<Vec<SocketAddr>> {
    let holds: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    holds.iter().map(|l| l.local_addr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::RecvTimeoutError;

    /// Runs `f` on every rank of a freshly-established loopback mesh,
    /// with a watchdog so a hang fails the test instead of wedging it.
    fn mesh<R: Send + 'static>(
        n: usize,
        f: impl Fn(TcpTransport) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let peers = reserve_loopback_addrs(n).unwrap();
        let f = std::sync::Arc::new(f);
        let (tx, rx) = mpsc::channel();
        for rank in 0..n {
            let peers = peers.clone();
            let f = f.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut cfg = TcpConfig::new(rank, peers, 0x5EED);
                cfg.connect_deadline = Duration::from_secs(10);
                let t = TcpTransport::establish(cfg).expect("establish");
                let _ = tx.send((rank, f(t)));
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match rx.recv_timeout(Duration::from_secs(30)) {
                Ok((rank, r)) => out[rank] = Some(r),
                Err(RecvTimeoutError::Timeout) => panic!("mesh test hung"),
                Err(RecvTimeoutError::Disconnected) => panic!("a rank died"),
            }
        }
        out.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn exchange_delivers_in_sender_order_including_self() {
        let results = mesh(4, |mut t| {
            let me = Transport::<(u64, u64)>::node(&t);
            let outbox: Vec<Vec<(u64, u64)>> = (0..4)
                .map(|to| vec![(me as u64, to as u64), (me as u64, to as u64)])
                .collect();
            let (inbox, stats) = t.exchange_with_stats(outbox, &|m: &(u64, u64)| m.wire_size());
            assert_eq!(stats.received, 8);
            assert_eq!(stats.sent_messages, 6);
            assert_eq!(stats.sent_bytes, 6 * 16);
            inbox
        });
        for (me, inbox) in results.iter().enumerate() {
            let senders: Vec<u64> = inbox.iter().map(|&(s, _)| s).collect();
            assert_eq!(senders, vec![0, 0, 1, 1, 2, 2, 3, 3], "rank {me}");
            assert!(inbox.iter().all(|&(_, to)| to as usize == me));
        }
    }

    #[test]
    fn allreduce_and_barrier() {
        let results = mesh(3, |mut t| {
            let me = Transport::<u64>::node(&t) as u64;
            Transport::<u64>::barrier(&mut t);
            let mut sums = Vec::new();
            for round in 0..3 {
                sums.push(Transport::<u64>::allreduce_sum(&mut t, me + round));
            }
            Transport::<u64>::barrier(&mut t);
            sums
        });
        for sums in results {
            assert_eq!(sums, vec![3, 6, 9]);
        }
    }

    #[test]
    fn gather_collects_rank_ordered_payloads_at_leader() {
        let results = mesh(3, |mut t| {
            let me = Transport::<u64>::node(&t);
            Transport::<u64>::gather_bytes(&mut t, vec![me as u8; me + 1])
        });
        assert!(results[1].is_none() && results[2].is_none());
        let parts = results[0].as_ref().unwrap();
        assert_eq!(parts.len(), 3);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p, &vec![i as u8; i + 1]);
        }
    }

    #[test]
    fn broadcast_delivers_leader_payload_everywhere() {
        let results = mesh(3, |mut t| {
            let me = Transport::<u64>::node(&t);
            let mut got = Vec::new();
            for round in 0..3u8 {
                let payload = if me == 0 {
                    vec![round; round as usize + 1]
                } else {
                    Vec::new()
                };
                got.push(Transport::<u64>::broadcast_bytes(&mut t, payload));
            }
            got
        });
        for (rank, rounds) in results.iter().enumerate() {
            for (round, bytes) in rounds.iter().enumerate() {
                assert_eq!(
                    bytes,
                    &vec![round as u8; round + 1],
                    "rank {rank} round {round}"
                );
            }
        }
    }

    #[test]
    fn cluster_counts_are_collective_and_nonzero() {
        let results = mesh(2, |mut t| {
            let outbox: Vec<Vec<u64>> = vec![vec![1], vec![2, 3]];
            let outbox = if Transport::<u64>::node(&t) == 0 {
                outbox
            } else {
                vec![vec![4], vec![5]]
            };
            let _ = t.exchange_with_stats(outbox, &|m: &u64| m.wire_size());
            Transport::<u64>::cluster_counts(&mut t)
        });
        // Both ranks must agree on the totals.
        assert_eq!(results[0], results[1]);
        // rank0 sent 2 remote messages, rank1 sent 1.
        assert_eq!(results[0].messages, 3);
        assert!(results[0].bytes > 0, "socket bytes must be accounted");
        assert_eq!(results[0].exchanges, 1);
    }

    #[test]
    fn single_rank_runs_without_sockets() {
        let mut t =
            TcpTransport::establish(TcpConfig::new(0, vec!["127.0.0.1:1".parse().unwrap()], 7))
                .unwrap();
        Transport::<u32>::barrier(&mut t);
        assert_eq!(Transport::<u32>::allreduce_sum(&mut t, 5), 5);
        let (inbox, _) = t.exchange_with_stats(vec![vec![9u32]], &|_| 4);
        assert_eq!(inbox, vec![9]);
        assert_eq!(
            Transport::<u32>::gather_bytes(&mut t, vec![1, 2]),
            Some(vec![vec![1, 2]])
        );
        assert_eq!(
            Transport::<u32>::broadcast_bytes(&mut t, vec![3, 4]),
            vec![3, 4]
        );
    }

    #[test]
    fn stale_epoch_is_rejected_at_handshake() {
        let peers = reserve_loopback_addrs(2).unwrap();
        let peers2 = peers.clone();
        let h0 = std::thread::spawn(move || {
            let mut cfg = TcpConfig::new(0, peers2, 111);
            cfg.connect_deadline = Duration::from_secs(5);
            TcpTransport::establish(cfg)
        });
        let mut cfg = TcpConfig::new(1, peers, 222); // different launch epoch
        cfg.connect_deadline = Duration::from_secs(5);
        let r1 = TcpTransport::establish(cfg);
        let r0 = h0.join().unwrap();
        // Rank 0 (the acceptor) sees the mismatched epoch; rank 1 fails
        // too (its handshake read dies when rank 0 hangs up).
        let err = match r0 {
            Ok(_) => panic!("stale epoch must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("epoch mismatch"), "{err}");
        assert!(r1.is_err());
    }

    #[test]
    fn dead_peer_fails_collectives_instead_of_hanging() {
        let results = mesh(2, |mut t| {
            if Transport::<u64>::node(&t) == 1 {
                // Rank 1 "crashes": drops its transport, closing sockets.
                drop(t);
                return String::new();
            }
            // Rank 0 must observe the loss, not hang.
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Transport::<u64>::barrier(&mut t);
            }))
            .expect_err("barrier against a dead peer must fail");
            *panic.downcast::<String>().expect("panic message")
        });
        assert!(
            results[0].contains("lost connection to rank 1"),
            "got: {}",
            results[0]
        );
    }

    #[test]
    fn spmd_violation_is_detected() {
        // Rank 0 calls barrier while rank 1 calls allreduce: mismatched
        // tags on the same sequence number → both abort with a protocol
        // error instead of mis-delivering.
        let results = mesh(2, |mut t| {
            let me = Transport::<u64>::node(&t);
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if me == 0 {
                    Transport::<u64>::barrier(&mut t);
                } else {
                    Transport::<u64>::allreduce_sum(&mut t, 1);
                }
            }))
            .expect_err("tag mismatch must be detected");
            panic.downcast::<String>().map(|s| *s).unwrap_or_default()
        });
        for msg in &results {
            assert!(
                msg.contains("protocol violation") || msg.contains("lost connection"),
                "got: {msg}"
            );
        }
    }

    #[test]
    fn large_exchange_does_not_deadlock_on_kernel_buffers() {
        // Each rank sends ~4 MiB to the other simultaneously — far more
        // than default socket buffers hold. The per-peer reader threads
        // must keep the pipes draining.
        let results = mesh(2, |mut t| {
            let big: Vec<u64> = (0..500_000).collect();
            let outbox = vec![big.clone(), big];
            let (inbox, _) = t.exchange_with_stats(outbox, &|m: &u64| m.wire_size());
            inbox.len()
        });
        assert_eq!(results, vec![1_000_000, 1_000_000]);
    }
}
