//! Bounded, overwrite-oldest event trace rings.
//!
//! Rings are *thread-owned*: the engine gives each scheduler chunk
//! accumulator its own ring, so pushes are plain writes with no atomics or
//! locks (lock-freedom by ownership, the cheapest kind). Rings are drained
//! into the node-level profile at exchange barriers, in chunk order, which
//! keeps the trace deterministic under the scheduler's merge contract.

/// What happened, with event-specific context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A BSP superstep began on this node.
    Superstep {
        /// Active walkers at the start of the superstep.
        active: u64,
        /// Chunk tasks the scheduler will queue for them.
        chunks: u64,
        /// Whether the node processes this superstep in light mode.
        light: bool,
    },
    /// The node crossed the light-mode threshold (§6.2).
    LightModeSwitch {
        /// `true`: entered light mode; `false`: resumed parallel mode.
        light: bool,
        /// Active walkers at the switch.
        active: u64,
    },
    /// A walker exhausted its rejection trials and fell back to the exact
    /// full scan.
    FullScanFallback {
        /// The walker that fell back.
        walker: u64,
    },
}

impl EventKind {
    /// Stable snake-case name used in the JSON-lines schema.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Superstep { .. } => "superstep",
            EventKind::LightModeSwitch { .. } => "light_mode_switch",
            EventKind::FullScanFallback { .. } => "full_scan_fallback",
        }
    }
}

/// One traced event with its iteration/node context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// BSP iteration the event occurred in (0-based).
    pub iteration: u32,
    /// Node the event occurred on.
    pub node: u32,
    /// The event itself.
    pub kind: EventKind,
}

/// A bounded ring of [`Event`]s that overwrites the oldest entry when
/// full, counting what it dropped.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest entry.
    start: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` ≥ 1).
    ///
    /// Allocation is lazy: a ring that never sees an event never touches
    /// the heap, so per-chunk rings cost nothing on quiet chunks.
    pub fn new(cap: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            cap: cap.max(1),
            start: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Pushes an event, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
            self.len += 1;
        } else {
            // Full: the slot at `start` holds the oldest entry; replace it
            // and advance.
            self.buf[self.start] = event;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all events, oldest first. The drop counter is
    /// preserved so callers can account for lost history.
    pub fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.start + i) % self.cap.max(1)]);
        }
        self.buf.clear();
        self.start = 0;
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> Event {
        Event {
            iteration: i,
            node: 0,
            kind: EventKind::FullScanFallback { walker: i as u64 },
        }
    }

    #[test]
    fn fifo_below_capacity() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let drained = r.drain();
        assert_eq!(
            drained.iter().map(|e| e.iteration).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut r = EventRing::new(3);
        for i in 0..7 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        let drained = r.drain();
        assert_eq!(
            drained.iter().map(|e| e.iteration).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
    }

    #[test]
    fn reusable_after_drain() {
        let mut r = EventRing::new(2);
        r.push(ev(0));
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.drain().len(), 2);
        assert_eq!(r.dropped(), 1, "drop counter survives the drain");
        r.push(ev(9));
        assert_eq!(r.drain()[0].iteration, 9);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.drain()[0].iteration, 2);
    }
}
