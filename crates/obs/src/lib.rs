#![warn(missing_docs)]

//! Observability primitives for the KnightKing engine.
//!
//! The paper's evaluation (§7) reasons entirely about *where time goes* —
//! sampling vs. communication vs. synchronization, light-mode tail
//! behaviour (§6.2/§7.5), per-node load imbalance. This crate provides the
//! instrumentation those arguments need, with three hard constraints the
//! engine imposes:
//!
//! * **zero external dependencies** — everything here is `std` only,
//!   including the JSON-lines serialization (no serde);
//! * **no atomics, no locks, no floats on the hot path** — recording a
//!   value is an integer bucket increment into thread-owned state; data is
//!   merged in deterministic chunk order at exchange barriers, mirroring
//!   the scheduler's determinism contract;
//! * **compile-out-able** — the engine wires these types behind its `obs`
//!   cargo feature; this crate itself carries no conditional code.
//!
//! Four building blocks:
//!
//! * [`Phase`] / [`PhaseTimers`] — monotonic wall-time accumulation over a
//!   fixed phase taxonomy, per node per BSP iteration.
//! * [`EventRing`] — a bounded, overwrite-oldest trace buffer for
//!   [`Event`]s (superstep transitions, light-mode switches, full-scan
//!   fallbacks). Rings are thread-owned (hence lock-free) and drained at
//!   exchange barriers.
//! * [`Pow2Histogram`] — power-of-two-bucket histograms: `record` is two
//!   integer ops and an array increment, no floats.
//! * [`BoundedRing`] — a bounded, overwrite-oldest time-series ring for
//!   per-superstep gauge snapshots in resident services, where history
//!   must stay bounded over days of uptime.
//! * [`RunProfile`] / [`NodeProfile`] — the aggregated per-run report,
//!   rendering both a human-readable table and machine-readable JSON
//!   lines (see [`report`] for the schema).

pub mod hist;
pub mod phase;
pub mod report;
pub mod ring;
pub mod series;

pub use hist::Pow2Histogram;
pub use phase::{Phase, PhaseTimers, N_PHASES};
pub use report::{write_hist_jsonl, NodeProfile, RunProfile};
pub use ring::{Event, EventKind, EventRing};
pub use series::BoundedRing;
