//! The fixed engine phase taxonomy and per-iteration phase timers.

use std::time::Instant;

/// Number of phases in the fixed taxonomy.
pub const N_PHASES: usize = 10;

/// One engine execution phase.
///
/// The taxonomy is fixed so every profile row has the same shape and
/// cross-run comparisons need no schema negotiation:
///
/// * `Init` — walker instantiation (start-vertex placement).
/// * `AliasBuild` — alias-table construction for owned vertices (§3).
/// * `LocalCompute` — chunked walker processing on the thread pool.
/// * `Exchange` — all-to-all walker-move exchanges and allreduces.
/// * `QueryRound` — second-order exchange 1 plus query execution (§5.1
///   steps 2–3).
/// * `AnswerRound` — second-order exchange 2 plus answer application
///   (§5.1 step 4).
/// * `LightMode` — walker processing while the node is in light mode
///   (§6.2); disjoint from `LocalCompute` so the tail is visible.
/// * `Finalize` — result merging and path reassembly after the walk.
/// * `Gather` — the interleaved engine's per-chunk stage-pool build
///   (SoA materialization plus optional cache-block sort). Accumulated
///   as thread-summed CPU time inside `LocalCompute`/`LightMode` wall
///   time, so it can exceed any single wall-clock phase on many threads.
/// * `Commit` — second-order phase B: applying answers and committing
///   moves. Previously folded into `LocalCompute`/`LightMode`.
///
/// `Gather` and `Commit` are appended *after* `Finalize` so the indices
/// of the original eight phases stay stable across profile schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Walker instantiation.
    Init,
    /// Alias-table construction.
    AliasBuild,
    /// Chunked walker processing (parallel).
    LocalCompute,
    /// Move exchanges and allreduces.
    Exchange,
    /// Query exchange plus query execution.
    QueryRound,
    /// Answer exchange plus answer application.
    AnswerRound,
    /// Walker processing while in light mode.
    LightMode,
    /// Result merging and path reassembly.
    Finalize,
    /// Per-chunk stage-pool build in the interleaved engine
    /// (thread-summed CPU time).
    Gather,
    /// Second-order answer application and move commits.
    Commit,
}

impl Phase {
    /// Every phase, in taxonomy order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::Init,
        Phase::AliasBuild,
        Phase::LocalCompute,
        Phase::Exchange,
        Phase::QueryRound,
        Phase::AnswerRound,
        Phase::LightMode,
        Phase::Finalize,
        Phase::Gather,
        Phase::Commit,
    ];

    /// Stable snake-case name used in the JSON-lines schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::AliasBuild => "alias_build",
            Phase::LocalCompute => "local_compute",
            Phase::Exchange => "exchange",
            Phase::QueryRound => "query_round",
            Phase::AnswerRound => "answer_round",
            Phase::LightMode => "light_mode",
            Phase::Finalize => "finalize",
            Phase::Gather => "gather",
            Phase::Commit => "commit",
        }
    }

    /// This phase's index into timer arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Monotonic phase timers for one node, accumulated per BSP iteration.
///
/// Timing is two-level: `current` collects nanoseconds for the iteration
/// in flight; [`end_iteration`](PhaseTimers::end_iteration) snapshots it
/// into [`rows`](PhaseTimers::rows) (one row per iteration) and folds it
/// into [`totals`](PhaseTimers::totals). Setup work that precedes the
/// iteration loop (`Init`, `AliasBuild`) is folded into the totals without
/// a row via [`flush_setup`](PhaseTimers::flush_setup).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimers {
    current: [u64; N_PHASES],
    /// Accumulated nanoseconds per phase over the whole run.
    pub totals: [u64; N_PHASES],
    /// Number of timed intervals per phase over the whole run.
    pub counts: [u64; N_PHASES],
    /// Per-iteration nanoseconds per phase, one row per BSP iteration.
    pub rows: Vec<[u64; N_PHASES]>,
}

impl PhaseTimers {
    /// Fresh, zeroed timers.
    pub fn new() -> Self {
        PhaseTimers::default()
    }

    /// Adds `nanos` to `phase` in the current iteration.
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.current[phase.index()] += nanos;
        self.counts[phase.index()] += 1;
    }

    /// Times `f` under `phase`.
    #[inline]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let begin = Instant::now();
        let out = f();
        self.add(phase, begin.elapsed().as_nanos() as u64);
        out
    }

    /// Folds pre-loop setup time into the totals without emitting an
    /// iteration row.
    pub fn flush_setup(&mut self) {
        for (total, cur) in self.totals.iter_mut().zip(&mut self.current) {
            *total += *cur;
            *cur = 0;
        }
    }

    /// Ends the current BSP iteration: snapshots the in-flight times as a
    /// new row and folds them into the totals.
    pub fn end_iteration(&mut self) {
        self.rows.push(self.current);
        self.flush_setup();
    }

    /// Total accumulated nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Merges another timer set into this one (totals, counts, and rows
    /// appended index-wise; rows are extended with zero-padding as
    /// needed).
    pub fn merge(&mut self, other: &PhaseTimers) {
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += *b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        if self.rows.len() < other.rows.len() {
            self.rows.resize(other.rows.len(), [0; N_PHASES]);
        }
        for (row, orow) in self.rows.iter_mut().zip(&other.rows) {
            for (a, b) in row.iter_mut().zip(orow) {
                *a += *b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_PHASES);
        assert_eq!(Phase::Exchange.name(), "exchange");
        assert_eq!(Phase::ALL[Phase::LightMode.index()], Phase::LightMode);
    }

    #[test]
    fn rows_and_totals_track_iterations() {
        let mut t = PhaseTimers::new();
        t.add(Phase::Init, 100);
        t.flush_setup();
        assert!(t.rows.is_empty());
        assert_eq!(t.totals[Phase::Init.index()], 100);

        t.add(Phase::LocalCompute, 10);
        t.add(Phase::Exchange, 5);
        t.end_iteration();
        t.add(Phase::LocalCompute, 20);
        t.end_iteration();

        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][Phase::LocalCompute.index()], 10);
        assert_eq!(t.rows[1][Phase::LocalCompute.index()], 20);
        assert_eq!(t.totals[Phase::LocalCompute.index()], 30);
        assert_eq!(t.total(), 135);
        assert_eq!(t.counts[Phase::LocalCompute.index()], 2);
    }

    #[test]
    fn timing_closure_returns_value_and_accumulates() {
        let mut t = PhaseTimers::new();
        let x = t.time(Phase::Finalize, || 41 + 1);
        assert_eq!(x, 42);
        assert_eq!(t.counts[Phase::Finalize.index()], 1);
    }

    #[test]
    fn merge_sums_rows_with_padding() {
        let mut a = PhaseTimers::new();
        a.add(Phase::Exchange, 1);
        a.end_iteration();
        let mut b = PhaseTimers::new();
        b.add(Phase::Exchange, 2);
        b.end_iteration();
        b.add(Phase::Exchange, 3);
        b.end_iteration();
        a.merge(&b);
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.rows[0][Phase::Exchange.index()], 3);
        assert_eq!(a.rows[1][Phase::Exchange.index()], 3);
        assert_eq!(a.totals[Phase::Exchange.index()], 6);
    }
}
