//! Bounded time-series rings for live metrics sampling.
//!
//! A resident service samples its gauges once per superstep; over days of
//! uptime that history must stay bounded. [`BoundedRing`] is the same
//! overwrite-oldest discipline as [`EventRing`](crate::EventRing),
//! generalized over the sample type so subsystems can ring whatever
//! per-tick record they need (the walk service rings a
//! superstep-indexed gauge snapshot) without this crate knowing its
//! shape.

/// A bounded ring of samples that overwrites the oldest entry when full,
/// counting what it dropped.
#[derive(Debug, Clone)]
pub struct BoundedRing<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest entry.
    start: usize,
    len: usize,
    dropped: u64,
}

impl<T: Clone> BoundedRing<T> {
    /// A ring holding at most `cap` samples (`cap` ≥ 1).
    ///
    /// Allocation is lazy: a ring that never sees a sample never touches
    /// the heap.
    pub fn new(cap: usize) -> Self {
        BoundedRing {
            buf: Vec::new(),
            cap: cap.max(1),
            start: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Pushes a sample, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, sample: T) {
        if self.buf.len() < self.cap {
            self.buf.push(sample);
            self.len += 1;
        } else {
            self.buf[self.start] = sample;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Samples overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| &self.buf[(self.start + i) % self.cap])
    }

    /// The most recently pushed sample, if any.
    pub fn latest(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[(self.start + self.len - 1) % self.cap])
        }
    }

    /// Clones out the held samples, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_below_capacity() {
        let mut r: BoundedRing<u64> = BoundedRing::new(4);
        assert!(r.is_empty());
        assert!(r.latest().is_none());
        for v in 0..3 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec(), vec![0, 1, 2]);
        assert_eq!(r.latest(), Some(&2));
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let mut r: BoundedRing<u64> = BoundedRing::new(3);
        for v in 0..8 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 5);
        assert_eq!(r.to_vec(), vec![5, 6, 7]);
        assert_eq!(r.latest(), Some(&7));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r: BoundedRing<&str> = BoundedRing::new(0);
        r.push("a");
        r.push("b");
        assert_eq!(r.len(), 1);
        assert_eq!(r.to_vec(), vec!["b"]);
    }
}
