//! The aggregated per-run profile and its report sinks.
//!
//! Two renderings, both hand-rolled (no serde):
//!
//! * [`RunProfile::render_table`] — a human-readable per-run table (phase
//!   breakdown per node plus histogram summaries);
//! * [`RunProfile::write_jsonl`] — machine-readable JSON lines for a
//!   `--profile <path>` target.
//!
//! # JSON-lines schema
//!
//! One JSON object per line; every object carries a `"type"` tag:
//!
//! ```text
//! {"type":"run","nodes":4,"iterations":81,"wall_ns":12345678}
//! {"type":"phase","node":0,"iter":3,"phase":"exchange","ns":512}
//! {"type":"phase_total","node":0,"phase":"exchange","ns":99999,"count":81}
//! {"type":"event","node":0,"iter":2,"kind":"superstep","active":4096,"chunks":32,"light":false}
//! {"type":"event","node":0,"iter":5,"kind":"light_mode_switch","light":true,"active":1311}
//! {"type":"event","node":0,"iter":7,"kind":"full_scan_fallback","walker":42}
//! {"type":"events_dropped","node":0,"count":0}
//! {"type":"hist","node":0,"name":"walk_length","count":100,"sum":8000,"min":80,"max":80,
//!  "buckets":[[64,127,100]]}
//! ```
//!
//! Per-iteration `phase` lines are emitted only for non-zero cells. The
//! four histograms are `walk_length`, `trials_per_step`, `active_walkers`,
//! and `exchange_bytes`; `buckets` entries are `[lo, hi, count]` with
//! inclusive bounds. A file may contain several runs back to back; each
//! starts with a `run` line.

use std::io::{self, Write};

use crate::hist::Pow2Histogram;
use crate::phase::{Phase, PhaseTimers};
use crate::ring::{Event, EventKind};

/// Writes one `{"type":"hist",...}` JSON line for `h`, exactly as
/// [`RunProfile::write_jsonl`] renders the engine's built-in histograms.
/// Exposed so other subsystems (e.g. a walk service's latency and
/// queue-depth histograms) can share the schema and its consumers.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_hist_jsonl<W: Write>(
    w: &mut W,
    node: u32,
    name: &str,
    h: &Pow2Histogram,
) -> io::Result<()> {
    write!(
        w,
        "{{\"type\":\"hist\",\"node\":{},\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        node,
        name,
        h.count(),
        h.sum(),
        h.min(),
        h.max()
    )?;
    let mut first = true;
    for (lo, hi, c) in h.nonzero_buckets() {
        if !first {
            write!(w, ",")?;
        }
        write!(w, "[{lo},{hi},{c}]")?;
        first = false;
    }
    writeln!(w, "]}}")
}

/// Everything observed on one node during one run.
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// Node id.
    pub node: u32,
    /// Phase timers (per-iteration rows plus run totals).
    pub timers: PhaseTimers,
    /// Drained trace events, in deterministic merge order.
    pub events: Vec<Event>,
    /// Events lost to ring overwrites.
    pub dropped_events: u64,
    /// Steps per finished walk.
    pub walk_length: Pow2Histogram,
    /// Rejection trials per sampling step.
    pub trials_per_step: Pow2Histogram,
    /// Active walkers on this node, sampled once per iteration.
    pub active_walkers: Pow2Histogram,
    /// Remote bytes sent per all-to-all exchange.
    pub exchange_bytes: Pow2Histogram,
}

impl NodeProfile {
    /// An empty profile for `node`.
    pub fn new(node: u32) -> Self {
        NodeProfile {
            node,
            timers: PhaseTimers::new(),
            events: Vec::new(),
            dropped_events: 0,
            walk_length: Pow2Histogram::new(),
            trials_per_step: Pow2Histogram::new(),
            active_walkers: Pow2Histogram::new(),
            exchange_bytes: Pow2Histogram::new(),
        }
    }

    /// The four histograms with their schema names.
    pub fn histograms(&self) -> [(&'static str, &Pow2Histogram); 4] {
        [
            ("walk_length", &self.walk_length),
            ("trials_per_step", &self.trials_per_step),
            ("active_walkers", &self.active_walkers),
            ("exchange_bytes", &self.exchange_bytes),
        ]
    }
}

/// The profile of one engine run across all nodes.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// One profile per node, in node order.
    pub nodes: Vec<NodeProfile>,
    /// Wall-clock nanoseconds of the run (including finalization).
    pub wall_nanos: u64,
}

impl RunProfile {
    /// BSP iterations executed (the longest per-node row count).
    pub fn iterations(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.timers.rows.len())
            .max()
            .unwrap_or(0)
    }

    /// Total events lost to ring overwrites across every node. Nonzero
    /// means the trace is truncated and conclusions drawn from event
    /// counts undercount reality.
    pub fn dropped_events(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped_events).sum()
    }

    /// Writes the machine-readable JSON-lines rendering.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"type\":\"run\",\"nodes\":{},\"iterations\":{},\"wall_ns\":{}}}",
            self.nodes.len(),
            self.iterations(),
            self.wall_nanos
        )?;
        for np in &self.nodes {
            for (iter, row) in np.timers.rows.iter().enumerate() {
                for phase in Phase::ALL {
                    let ns = row[phase.index()];
                    if ns > 0 {
                        writeln!(
                            w,
                            "{{\"type\":\"phase\",\"node\":{},\"iter\":{},\"phase\":\"{}\",\"ns\":{}}}",
                            np.node,
                            iter,
                            phase.name(),
                            ns
                        )?;
                    }
                }
            }
            for phase in Phase::ALL {
                writeln!(
                    w,
                    "{{\"type\":\"phase_total\",\"node\":{},\"phase\":\"{}\",\"ns\":{},\"count\":{}}}",
                    np.node,
                    phase.name(),
                    np.timers.totals[phase.index()],
                    np.timers.counts[phase.index()]
                )?;
            }
            for e in &np.events {
                write!(
                    w,
                    "{{\"type\":\"event\",\"node\":{},\"iter\":{},\"kind\":\"{}\"",
                    e.node,
                    e.iteration,
                    e.kind.name()
                )?;
                match e.kind {
                    EventKind::Superstep {
                        active,
                        chunks,
                        light,
                    } => write!(
                        w,
                        ",\"active\":{active},\"chunks\":{chunks},\"light\":{light}"
                    )?,
                    EventKind::LightModeSwitch { light, active } => {
                        write!(w, ",\"light\":{light},\"active\":{active}")?
                    }
                    EventKind::FullScanFallback { walker } => write!(w, ",\"walker\":{walker}")?,
                }
                writeln!(w, "}}")?;
            }
            writeln!(
                w,
                "{{\"type\":\"events_dropped\",\"node\":{},\"count\":{}}}",
                np.node, np.dropped_events
            )?;
            for (name, h) in np.histograms() {
                write_hist_jsonl(w, np.node, name, h)?;
            }
        }
        Ok(())
    }

    /// Renders the human-readable per-run table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let wall_ms = self.wall_nanos as f64 / 1e6;
        let _ = writeln!(
            out,
            "profile: {} node(s), {} iteration(s), wall {:.2} ms",
            self.nodes.len(),
            self.iterations(),
            wall_ms
        );
        let _ = writeln!(
            out,
            "  {:<4} {:<14} {:>12} {:>8} {:>7}",
            "node", "phase", "time (ms)", "count", "share"
        );
        for np in &self.nodes {
            for phase in Phase::ALL {
                let ns = np.timers.totals[phase.index()];
                if ns == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<4} {:<14} {:>12.3} {:>8} {:>6.1}%",
                    np.node,
                    phase.name(),
                    ns as f64 / 1e6,
                    np.timers.counts[phase.index()],
                    100.0 * ns as f64 / self.wall_nanos.max(1) as f64
                );
            }
        }
        let _ = writeln!(
            out,
            "  {:<4} {:<16} {:>10} {:>8} {:>8} {:>10} {:>10}",
            "node", "histogram", "count", "min", "p50", "max", "mean"
        );
        for np in &self.nodes {
            for (name, h) in np.histograms() {
                let _ = writeln!(
                    out,
                    "  {:<4} {:<16} {:>10} {:>8} {:>8} {:>10} {:>10.1}",
                    np.node,
                    name,
                    h.count(),
                    h.min(),
                    h.quantile(0.5),
                    h.max(),
                    h.mean()
                );
            }
            let events = np.events.len();
            if events > 0 || np.dropped_events > 0 {
                let _ = writeln!(
                    out,
                    "  node {} events: {} recorded, {} dropped",
                    np.node, events, np.dropped_events
                );
            }
        }
        // Truncation must never be silent: a reader skimming the table
        // has to learn the trace is partial without hunting per-node
        // lines.
        let dropped = self.dropped_events();
        if dropped > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {dropped} trace event(s) dropped to ring overwrites; \
                 the event trace is truncated"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> RunProfile {
        let mut np = NodeProfile::new(0);
        np.timers.add(Phase::Init, 1_000);
        np.timers.flush_setup();
        np.timers.add(Phase::LocalCompute, 5_000);
        np.timers.add(Phase::Exchange, 2_000);
        np.timers.end_iteration();
        np.events.push(Event {
            iteration: 0,
            node: 0,
            kind: EventKind::Superstep {
                active: 10,
                chunks: 1,
                light: true,
            },
        });
        np.events.push(Event {
            iteration: 0,
            node: 0,
            kind: EventKind::LightModeSwitch {
                light: true,
                active: 10,
            },
        });
        np.walk_length.record(80);
        np.trials_per_step.record(2);
        np.active_walkers.record(10);
        np.exchange_bytes.record(4096);
        RunProfile {
            nodes: vec![np],
            wall_nanos: 10_000,
        }
    }

    #[test]
    fn jsonl_lines_are_well_formed_objects() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"type\":\""), "line: {line}");
            // Balanced braces/brackets — a cheap well-formedness check
            // that catches truncated writes without a JSON parser.
            let open = line.matches(['{', '[']).count();
            let close = line.matches(['}', ']']).count();
            assert_eq!(open, close, "unbalanced: {line}");
        }
        assert!(text.contains("\"type\":\"run\""));
        assert!(text.contains("\"phase\":\"local_compute\""));
        assert!(text.contains("\"kind\":\"light_mode_switch\""));
        for name in [
            "walk_length",
            "trials_per_step",
            "active_walkers",
            "exchange_bytes",
        ] {
            assert!(text.contains(&format!("\"name\":\"{name}\"")), "{name}");
        }
    }

    #[test]
    fn per_iteration_phases_only_emit_nonzero_cells() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let phase_lines = text
            .lines()
            .filter(|l| l.contains("\"type\":\"phase\""))
            .count();
        assert_eq!(phase_lines, 2, "one per nonzero cell in the single row");
    }

    #[test]
    fn table_mentions_phases_and_histograms() {
        let p = sample_profile();
        let t = p.render_table();
        assert!(t.contains("local_compute"));
        assert!(t.contains("walk_length"));
        assert!(t.contains("1 node(s)"));
        assert!(t.contains("events: 2 recorded"));
    }

    #[test]
    fn dropped_events_are_never_silent() {
        let mut p = sample_profile();
        assert_eq!(p.dropped_events(), 0);
        assert!(!p.render_table().contains("WARNING"));

        p.nodes[0].dropped_events = 7;
        let mut n1 = NodeProfile::new(1);
        n1.dropped_events = 3;
        p.nodes.push(n1);
        assert_eq!(p.dropped_events(), 10);

        let table = p.render_table();
        assert!(table.contains("node 0 events: 2 recorded, 7 dropped"));
        assert!(
            table.contains("node 1 events: 0 recorded, 3 dropped"),
            "a node with only drops still gets its line: {table}"
        );
        assert!(table.contains("WARNING: 10 trace event(s) dropped"));

        let mut buf = Vec::new();
        p.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("{\"type\":\"events_dropped\",\"node\":0,\"count\":7}"));
        assert!(text.contains("{\"type\":\"events_dropped\",\"node\":1,\"count\":3}"));
    }

    #[test]
    fn iterations_is_max_over_nodes() {
        let mut p = sample_profile();
        let mut n1 = NodeProfile::new(1);
        n1.timers.end_iteration();
        n1.timers.end_iteration();
        p.nodes.push(n1);
        assert_eq!(p.iterations(), 2);
    }
}
