//! Power-of-two-bucket histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i)`. Recording a value is `leading_zeros` plus an array
//! increment — integer-only, branch-light, and allocation-free, so it is
//! safe inside the engine's per-step path (per-chunk instances, merged in
//! chunk order; never shared across threads).

/// Number of buckets: one for zero plus one per bit of a `u64`.
const N_BUCKETS: usize = 65;

/// A fixed-shape histogram over `u64` values with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Pow2Histogram {
    // Scalars first: the merge fast path (empty `other`) reads only this
    // header cache line, never the bucket array.
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// One past the highest touched bucket index. Bounds the scan in
    /// [`merge`](Self::merge): the engine merges short-lived per-chunk
    /// histograms at every exchange barrier, and their buckets are cold by
    /// then — reading only the live prefix keeps the merge off the memory
    /// bus (typical values span a handful of buckets out of 65).
    hi: u32,
    buckets: [u64; N_BUCKETS],
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Pow2Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            hi: 0,
        }
    }
}

impl Pow2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Pow2Histogram::default()
    }

    /// Index of the bucket holding `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// `[lo, hi]` value range of bucket `i`. The top bucket's upper bound
    /// saturates at `u64::MAX` (the doubling wraps to 0, so subtract
    /// wrapping too).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (i - 1);
            (lo, lo.wrapping_mul(2).wrapping_sub(1))
        }
    }

    /// Records one observation. Integer-only: no floats, no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        self.buckets[b] += 1;
        self.hi = self.hi.max(b as u32 + 1);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 if empty. (Report-time
    /// only; the hot path never calls this.)
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), or 0 if empty. Exact to bucket resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one. Empty histograms merge for
    /// free, and only `other`'s touched bucket prefix is read.
    pub fn merge(&mut self, other: &Pow2Histogram) {
        if other.count == 0 {
            return;
        }
        let hi = other.hi as usize;
        for (a, b) in self.buckets[..hi].iter_mut().zip(&other.buckets[..hi]) {
            *a += *b;
        }
        self.hi = self.hi.max(other.hi);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Pow2Histogram::bucket_of(0), 0);
        assert_eq!(Pow2Histogram::bucket_of(1), 1);
        assert_eq!(Pow2Histogram::bucket_of(2), 2);
        assert_eq!(Pow2Histogram::bucket_of(3), 2);
        assert_eq!(Pow2Histogram::bucket_of(4), 3);
        assert_eq!(Pow2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Pow2Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Pow2Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Pow2Histogram::bucket_bounds(3), (4, 7));
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Pow2Histogram::new();
        for v in [0u64, 1, 5, 5, 80] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 91);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 80);
        assert!((h.mean() - 18.2).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 0, 1), (1, 1, 1), (4, 7, 2), (64, 127, 1)]);
    }

    #[test]
    fn quantiles_are_bucket_resolution_upper_bounds() {
        let mut h = Pow2Histogram::new();
        for _ in 0..99 {
            h.record(4); // bucket [4, 7]
        }
        h.record(1000); // bucket [512, 1023]
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.99), 7);
        assert_eq!(h.quantile(1.0), 1000, "clamped to observed max");
        let empty = Pow2Histogram::new();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Pow2Histogram::new();
        a.record(2);
        let mut b = Pow2Histogram::new();
        b.record(100);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 100);
        let merged_empty = {
            let mut x = Pow2Histogram::new();
            x.merge(&Pow2Histogram::new());
            x
        };
        assert_eq!(merged_empty.count(), 0);
        assert_eq!(merged_empty.min(), 0);
    }

    #[test]
    fn quantile_edge_cases_on_empty_and_single_bucket() {
        let empty = Pow2Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty histogram at q={q}");
        }
        // Out-of-range q is clamped, not a panic.
        assert_eq!(empty.quantile(-1.0), 0);
        assert_eq!(empty.quantile(2.0), 0);

        // Every observation in one bucket: every quantile is that
        // bucket's bound clamped to the observed max.
        let mut single = Pow2Histogram::new();
        for _ in 0..10 {
            single.record(5); // bucket [4, 7]
        }
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 5, "single-bucket at q={q}");
        }
        assert_eq!(single.quantile(-3.0), 5, "clamped q hits the same bucket");

        // A lone zero observation lives in the zero bucket.
        let mut zero = Pow2Histogram::new();
        zero.record(0);
        assert_eq!(zero.quantile(0.5), 0);
        assert_eq!(zero.quantile(1.0), 0);
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges_keeps_both() {
        // `merge` scans only `other`'s touched prefix (`hi`); merging a
        // low-bucket histogram into a high-bucket one must not lose the
        // high buckets, and vice versa.
        let mut low = Pow2Histogram::new();
        low.record(1);
        low.record(3);
        let mut high = Pow2Histogram::new();
        high.record(1 << 40);
        high.record((1 << 40) + 5);

        let mut a = low.clone();
        a.merge(&high);
        let mut b = high.clone();
        b.merge(&low);
        for m in [&a, &b] {
            assert_eq!(m.count(), 4);
            assert_eq!(m.min(), 1);
            assert_eq!(m.max(), (1 << 40) + 5);
            let buckets: Vec<_> = m.nonzero_buckets().collect();
            assert_eq!(buckets.len(), 3, "both ranges survive: {buckets:?}");
            assert_eq!(buckets.iter().map(|&(_, _, c)| c).sum::<u64>(), 4);
        }
        assert_eq!(a.quantile(0.5), 3);
        assert_eq!(a.quantile(1.0), (1 << 40) + 5);
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        // Values at and near u64::MAX land in the last bucket, whose
        // upper bound computation must not overflow.
        let mut h = Pow2Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 3);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 1, "all three in the top bucket");
        let (lo, hi, c) = buckets[0];
        assert_eq!(lo, 1u64 << 63);
        assert_eq!(hi, u64::MAX);
        assert_eq!(c, 3);
        // Quantiles clamp to the observed max, not the bucket bound.
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        // Merging two saturated histograms keeps the top bucket intact.
        let mut other = Pow2Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.nonzero_buckets().next().unwrap().2, 4);
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Pow2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
