//! Property-based equivalence for the dynamic layer: any sequence of
//! update batches, under any compaction threshold, reads identically to
//! a naive rebuilt-from-scratch edge list at every epoch — neighbor
//! iteration, degrees, weight lookups, and materialization.

mod common;

use common::{assert_matches, RefGraph};
use knightking_dyn::{DynConfig, DynGraph, EdgeAdd, EdgeRef, EdgeReweight, UpdateBatch};
use knightking_graph::{GraphBuilder, VertexId};
use proptest::prelude::*;

/// Weights on the 0.25 grid: exact in f32 and through every f64 round
/// trip, so equality checks stay strict.
fn weight_strategy() -> impl Strategy<Value = f32> {
    (1u32..40).prop_map(|k| k as f32 * 0.25)
}

fn batch_strategy(n: u32) -> impl Strategy<Value = UpdateBatch> {
    let add = (0..n, 0..n, weight_strategy())
        .prop_map(|(src, dst, weight)| EdgeAdd {
            src,
            dst,
            weight,
            edge_type: 0,
        });
    let del = (0..n, 0..n).prop_map(|(src, dst)| EdgeRef { src, dst });
    let rew = (0..n, 0..n, weight_strategy())
        .prop_map(|(src, dst, weight)| EdgeReweight { src, dst, weight });
    (
        prop::collection::vec(add, 0..6),
        prop::collection::vec(del, 0..4),
        prop::collection::vec(rew, 0..4),
    )
        .prop_map(|(adds, dels, reweights)| UpdateBatch {
            adds,
            dels,
            reweights,
        })
}

/// A weighted directed base graph plus a sequence of in-range batches.
fn scenario_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f32)>, Vec<UpdateBatch>)> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, weight_strategy());
        (
            Just(n),
            prop::collection::vec(edge, 0..64),
            prop::collection::vec(batch_strategy(n as u32), 1..8),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every epoch of a dynamic graph reads exactly like the naive
    /// reference rebuilt at that epoch — and history stays intact as
    /// later updates land.
    #[test]
    fn update_sequences_match_rebuilt_reference(
        (n, edges, batches) in scenario_strategy(),
        compact_ratio in prop_oneof![Just(0.0), Just(0.3), Just(0.5), Just(2.0), Just(1000.0)],
    ) {
        let mut b = GraphBuilder::directed(n).with_weights();
        for &(s, d, w) in &edges {
            b.add_weighted_edge(s, d, w);
        }
        let base = b.build();

        let dyn_graph = DynGraph::new(base.clone(), DynConfig { compact_ratio });
        let mut reference = RefGraph::of(&base);
        let mut snapshots = vec![(0u64, reference.clone())];
        for batch in &batches {
            let applied = dyn_graph.apply(batch).expect("in-range batch");
            reference.apply(batch);
            snapshots.push((applied.epoch, reference.clone()));
        }
        for (epoch, snap) in &snapshots {
            assert_matches(&dyn_graph, *epoch, snap);
        }
    }

    /// Compaction is invisible: eager (every touch) and lazy (never)
    /// thresholds materialize identical bytes at every epoch.
    #[test]
    fn compaction_threshold_is_unobservable(
        (n, edges, batches) in scenario_strategy(),
    ) {
        let build = |ratio: f64| {
            let mut b = GraphBuilder::directed(n).with_weights();
            for &(s, d, w) in &edges {
                b.add_weighted_edge(s, d, w);
            }
            let g = DynGraph::new(b.build(), DynConfig { compact_ratio: ratio });
            for batch in &batches {
                g.apply(batch).expect("in-range batch");
            }
            g
        };
        let eager = build(0.0);
        let lazy = build(1000.0);
        for epoch in 0..=eager.epoch() {
            let a = eager.materialize_at(epoch);
            let b = lazy.materialize_at(epoch);
            for v in 0..a.vertex_count() as VertexId {
                let ea: Vec<_> = a.edges(v).map(|e| (e.dst, e.weight)).collect();
                let eb: Vec<_> = b.edges(v).map(|e| (e.dst, e.weight)).collect();
                prop_assert_eq!(ea, eb, "vertex {} at epoch {}", v, epoch);
            }
        }
    }
}
