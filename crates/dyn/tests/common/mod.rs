//! Shared reference model for dynamic-graph equivalence tests: a naive
//! per-vertex edge list, rebuilt from scratch on every batch, compared
//! row-by-row against `DynGraph` views and materializations.

use knightking_dyn::{DynGraph, UpdateBatch};
use knightking_graph::{CsrGraph, VertexId, Weight};

/// The naive dynamic graph: destination-sorted per-vertex edge lists
/// with full rebuild per batch — O(degree) per op, no versioning, no
/// overlays. Obviously correct; everything else is measured against it.
#[derive(Clone)]
pub struct RefGraph {
    pub rows: Vec<Vec<(VertexId, Weight)>>,
}

impl RefGraph {
    pub fn of(base: &CsrGraph) -> RefGraph {
        let rows = (0..base.vertex_count() as VertexId)
            .map(|v| base.edges(v).map(|e| (e.dst, e.weight)).collect())
            .collect();
        RefGraph { rows }
    }

    /// Mirrors `DynGraph::apply` semantics: deletions drop every
    /// instance of the pair, additions insert destination-sorted after
    /// existing instances, reweights hit every live instance (including
    /// ones this batch added).
    pub fn apply(&mut self, batch: &UpdateBatch) {
        for d in &batch.dels {
            self.rows[d.src as usize].retain(|&(dst, _)| dst != d.dst);
        }
        for a in &batch.adds {
            let row = &mut self.rows[a.src as usize];
            let pos = row.partition_point(|&(dst, _)| dst <= a.dst);
            row.insert(pos, (a.dst, a.weight));
        }
        for r in &batch.reweights {
            for e in self.rows[r.src as usize]
                .iter_mut()
                .filter(|e| e.0 == r.dst)
            {
                e.1 = r.weight;
            }
        }
    }
}

/// Asserts that the pinned view of `dyn_graph` at `epoch` is equivalent
/// to `reference`, edge by edge: degrees, iteration order, weights,
/// lookup functions, weight sums, and the materialized CSR.
pub fn assert_matches(dyn_graph: &DynGraph, epoch: u64, reference: &RefGraph) {
    let n = reference.rows.len();
    let materialized = dyn_graph.materialize_at(epoch);
    for v in 0..n as VertexId {
        let row = &reference.rows[v as usize];
        assert_eq!(
            dyn_graph.degree_at(v, epoch),
            row.len(),
            "degree of {v} at epoch {epoch}"
        );
        for (i, &(dst, w)) in row.iter().enumerate() {
            let e = dyn_graph.edge_at(v, i, epoch);
            assert_eq!(e.dst, dst, "edge {i} of {v} at epoch {epoch}");
            assert_eq!(e.weight, w, "weight of edge {i} of {v} at epoch {epoch}");
        }
        for x in 0..n as VertexId {
            let count = row.iter().filter(|&&(dst, _)| dst == x).count();
            assert_eq!(
                dyn_graph.edge_range_at(v, x, epoch).len(),
                count,
                "edge_range {v}->{x} at epoch {epoch}"
            );
            assert_eq!(dyn_graph.has_edge_at(v, x, epoch), count > 0);
            match dyn_graph.find_edge_at(v, x, epoch) {
                Some(i) => assert_eq!(dyn_graph.edge_at(v, i, epoch).dst, x),
                None => assert_eq!(count, 0),
            }
        }
        let sum: f64 = row.iter().map(|&(_, w)| f64::from(w)).sum();
        assert!(
            (dyn_graph.weight_sum_at(v, epoch) - sum).abs() < 1e-6,
            "weight sum of {v} at epoch {epoch}"
        );
        let got: Vec<(VertexId, Weight)> =
            materialized.edges(v).map(|e| (e.dst, e.weight)).collect();
        assert_eq!(&got, row, "materialized row of {v} at epoch {epoch}");
    }
}
