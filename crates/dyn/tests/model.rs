//! Randomized equivalence against the naive reference model, across
//! compaction thresholds. A dependency-free mirror of the proptest
//! suite (`proptests.rs`), runnable in offline builds: a seeded LCG
//! generates update sequences instead of proptest strategies.

mod common;

use common::{assert_matches, RefGraph};
use knightking_dyn::{DynConfig, DynGraph, EdgeAdd, EdgeRef, EdgeReweight, UpdateBatch};
use knightking_graph::{GraphBuilder, VertexId};

/// A minimal LCG (Numerical Recipes constants) — test-input generation
/// only.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    /// Positive weights on the 0.25 grid: exact in f32 and through every
    /// f64 round trip, so equality checks stay strict.
    fn weight(&mut self) -> f32 {
        (self.below(40) + 1) as f32 * 0.25
    }
}

fn random_batch(rng: &mut Lcg, n: u64) -> UpdateBatch {
    let mut batch = UpdateBatch::default();
    for _ in 0..rng.below(6) {
        batch.adds.push(EdgeAdd {
            src: rng.below(n) as VertexId,
            dst: rng.below(n) as VertexId,
            weight: rng.weight(),
            edge_type: 0,
        });
    }
    for _ in 0..rng.below(4) {
        batch.dels.push(EdgeRef {
            src: rng.below(n) as VertexId,
            dst: rng.below(n) as VertexId,
        });
    }
    for _ in 0..rng.below(4) {
        batch.reweights.push(EdgeReweight {
            src: rng.below(n) as VertexId,
            dst: rng.below(n) as VertexId,
            weight: rng.weight(),
        });
    }
    batch
}

fn run_case(seed: u64, compact_ratio: f64) {
    let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let n = 2 + rng.below(20);
    let mut b = GraphBuilder::directed(n as usize).with_weights();
    for _ in 0..rng.below(4 * n) {
        b.add_weighted_edge(
            rng.below(n) as VertexId,
            rng.below(n) as VertexId,
            rng.weight(),
        );
    }
    let base = b.build();

    let dyn_graph = DynGraph::new(base.clone(), DynConfig { compact_ratio });
    let mut reference = RefGraph::of(&base);
    // Epoch-stamped snapshots: epoch 0 is the base.
    let mut snapshots = vec![(0u64, reference.clone())];

    for _ in 0..rng.below(7) + 1 {
        let batch = random_batch(&mut rng, n);
        let applied = dyn_graph.apply(&batch).expect("in-range batch");
        reference.apply(&batch);
        snapshots.push((applied.epoch, reference.clone()));
    }

    // Every pinned epoch still reads its own snapshot — updates never
    // disturb history.
    for (epoch, snap) in &snapshots {
        assert_matches(&dyn_graph, *epoch, snap);
    }
}

#[test]
fn randomized_sequences_match_reference_across_thresholds() {
    for seed in 0..24 {
        // 0.0 compacts on every touch; 1000.0 effectively never — both
        // extremes and the interesting middle must read identically.
        for ratio in [0.0, 0.3, 0.5, 2.0, 1000.0] {
            run_case(seed, ratio);
        }
    }
}

#[test]
fn compaction_threshold_does_not_change_any_view() {
    // The same sequence under different thresholds materializes the
    // same bytes at every epoch.
    for seed in 0..8 {
        let build = |ratio: f64| {
            let mut rng = Lcg(seed | 1);
            let n = 4 + rng.below(12);
            let mut b = GraphBuilder::directed(n as usize).with_weights();
            for _ in 0..rng.below(3 * n) {
                b.add_weighted_edge(
                    rng.below(n) as VertexId,
                    rng.below(n) as VertexId,
                    rng.weight(),
                );
            }
            let g = DynGraph::new(
                b.build(),
                DynConfig {
                    compact_ratio: ratio,
                },
            );
            for _ in 0..5 {
                let batch = random_batch(&mut rng, n);
                g.apply(&batch).expect("in-range batch");
            }
            g
        };
        let eager = build(0.0);
        let lazy = build(1000.0);
        assert!(eager.stats().compactions > lazy.stats().compactions);
        for epoch in 0..=eager.epoch() {
            let a = eager.materialize_at(epoch);
            let b = lazy.materialize_at(epoch);
            for v in 0..a.vertex_count() as VertexId {
                let ea: Vec<_> = a.edges(v).map(|e| (e.dst, e.weight)).collect();
                let eb: Vec<_> = b.edges(v).map(|e| (e.dst, e.weight)).collect();
                assert_eq!(ea, eb, "vertex {v} at epoch {epoch}");
            }
        }
    }
}
