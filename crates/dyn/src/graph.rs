//! [`DynGraph`]: the epoch-versioned dynamic graph.

use std::collections::BTreeMap;
use std::sync::RwLock;

use knightking_graph::{CsrGraph, EdgeView, GraphBuilder, VertexId, Weight};

use crate::row::{AddEdge, RowKind, RowVersion, RowView, UndRow};
use crate::{DynError, UpdateBatch};

/// Tuning knobs for the dynamic layer.
#[derive(Debug, Clone, Copy)]
pub struct DynConfig {
    /// Compaction trigger: when a vertex's delta entry count exceeds
    /// `compact_ratio × underlying degree` after an apply, its overlay is
    /// compacted into a fresh full row. `0.0` compacts on every touch;
    /// `f64::INFINITY` never compacts.
    pub compact_ratio: f64,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig { compact_ratio: 0.5 }
    }
}

/// Result of applying one update batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedUpdate {
    /// The epoch the batch was stamped with.
    pub epoch: u64,
    /// Source vertices whose rows were rebuilt by *this* call, sorted.
    /// Restricted to the kept (owned) vertices of a distributed apply —
    /// exactly the set whose sampling structures need rebuilding here.
    pub touched: Vec<VertexId>,
}

/// Counters and sizes describing the dynamic layer's state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynStats {
    /// Current (latest applied) graph epoch.
    pub epoch: u64,
    /// Per-vertex row rebuilds performed by applies, cumulative. An
    /// update batch touching `k` owned vertices adds exactly `k`.
    pub rows_rebuilt: u64,
    /// Overlay → full-row compactions performed, cumulative.
    pub compactions: u64,
    /// Row versions currently held across all vertices.
    pub versions: u64,
}

struct Inner {
    epoch: u64,
    /// Row versions per vertex, epoch-sorted; empty = base row only.
    rows: Vec<Vec<RowVersion>>,
    rows_rebuilt: u64,
    compactions: u64,
}

/// An epoch-versioned dynamic graph: an immutable CSR base plus
/// per-vertex delta rows (see the crate docs for the layout).
///
/// Reads are made *at* an epoch and are internally synchronized (a
/// reader lock per accessor); writes ([`DynGraph::apply_at`],
/// [`DynGraph::retire`]) take the writer side. The engine separates the
/// two in time anyway — updates land at superstep boundaries while no
/// walker is mid-step — so the lock is uncontended; it exists to make
/// the separation safe rather than to arbitrate real contention.
pub struct DynGraph {
    base: CsrGraph,
    cfg: DynConfig,
    inner: RwLock<Inner>,
}

impl DynGraph {
    /// Wraps an immutable base graph. The base is epoch 0; the first
    /// applied batch is epoch 1 (unless stamped higher).
    pub fn new(base: CsrGraph, cfg: DynConfig) -> Self {
        let rows = (0..base.vertex_count()).map(|_| Vec::new()).collect();
        DynGraph {
            base,
            cfg,
            inner: RwLock::new(Inner {
                epoch: 0,
                rows,
                rows_rebuilt: 0,
                compactions: 0,
            }),
        }
    }

    /// The immutable base CSR (epoch 0). Partitioning is computed from
    /// base degrees and stays fixed across epochs.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of vertices (fixed: updates add/remove edges, not
    /// vertices).
    pub fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    /// Whether edges carry weights (inherited from the base).
    pub fn is_weighted(&self) -> bool {
        self.base.is_weighted()
    }

    /// Whether edges carry types (inherited from the base).
    pub fn is_typed(&self) -> bool {
        self.base.is_typed()
    }

    /// The current (latest applied) graph epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("dyn lock poisoned").epoch
    }

    /// Snapshot of the layer's counters.
    pub fn stats(&self) -> DynStats {
        let inner = self.inner.read().expect("dyn lock poisoned");
        DynStats {
            epoch: inner.epoch,
            rows_rebuilt: inner.rows_rebuilt,
            compactions: inner.compactions,
            versions: inner.rows.iter().map(|r| r.len() as u64).sum(),
        }
    }

    fn base_und(&self, v: VertexId) -> UndRow<'_> {
        UndRow {
            targets: self.base.neighbors(v),
            weights: self.base.edge_weights(v),
            types: self.base.edge_types_of(v),
        }
    }

    /// Resolves the row view for `v` at `epoch` given a locked `rows`
    /// slice for that vertex.
    fn view<'a>(&'a self, rows: &'a [RowVersion], v: VertexId, epoch: u64) -> RowView<'a> {
        let n = rows.partition_point(|rv| rv.epoch <= epoch);
        if n == 0 {
            return RowView {
                und: self.base_und(v),
                ov: None,
            };
        }
        match &rows[n - 1].kind {
            RowKind::Full(fr) => RowView {
                und: fr.as_und(),
                ov: None,
            },
            RowKind::Overlay(ov) => {
                let und = rows[..n - 1]
                    .iter()
                    .rev()
                    .find_map(|rv| match &rv.kind {
                        RowKind::Full(fr) => Some(fr.as_und()),
                        RowKind::Overlay(_) => None,
                    })
                    .unwrap_or_else(|| self.base_und(v));
                RowView { und, ov: Some(ov) }
            }
        }
    }

    /// Runs `f` against the resolved row view of `v` at `epoch`.
    fn with_row<R>(&self, v: VertexId, epoch: u64, f: impl FnOnce(RowView<'_>) -> R) -> R {
        let inner = self.inner.read().expect("dyn lock poisoned");
        f(self.view(&inner.rows[v as usize], v, epoch))
    }

    /// Out-degree of `v` at `epoch`.
    pub fn degree_at(&self, v: VertexId, epoch: u64) -> usize {
        self.with_row(v, epoch, |row| row.degree())
    }

    /// The `i`-th out-edge of `v` at `epoch`, in merged-row order — the
    /// same index the materialized CSR at that epoch would use.
    pub fn edge_at(&self, v: VertexId, i: usize, epoch: u64) -> EdgeView {
        self.with_row(v, epoch, |row| {
            let e = row.get(i);
            EdgeView {
                src: v,
                dst: e.dst,
                weight: e.weight,
                edge_type: e.edge_type,
                index: i,
            }
        })
    }

    /// Index range of the out-edges of `v` targeting `x` at `epoch`.
    pub fn edge_range_at(&self, v: VertexId, x: VertexId, epoch: u64) -> std::ops::Range<usize> {
        self.with_row(v, epoch, |row| row.range_of(x))
    }

    /// Index of the first out-edge of `v` targeting `x` at `epoch`.
    pub fn find_edge_at(&self, v: VertexId, x: VertexId, epoch: u64) -> Option<usize> {
        let r = self.edge_range_at(v, x, epoch);
        if r.is_empty() {
            None
        } else {
            Some(r.start)
        }
    }

    /// Whether `v -> x` exists at `epoch`.
    pub fn has_edge_at(&self, v: VertexId, x: VertexId, epoch: u64) -> bool {
        !self.edge_range_at(v, x, epoch).is_empty()
    }

    /// Sum of the out-edge weights of `v` at `epoch` (1.0 per edge when
    /// unweighted).
    pub fn weight_sum_at(&self, v: VertexId, epoch: u64) -> f64 {
        self.with_row(v, epoch, |row| {
            let mut total = 0.0f64;
            row.for_each(|e| total += f64::from(e.weight));
            total
        })
    }

    /// Walks the out-edges of `v` at `epoch` in merged-row order.
    pub fn for_each_edge_at(&self, v: VertexId, epoch: u64, mut f: impl FnMut(EdgeView)) {
        self.with_row(v, epoch, |row| {
            let mut i = 0usize;
            row.for_each(|e| {
                f(EdgeView {
                    src: v,
                    dst: e.dst,
                    weight: e.weight,
                    edge_type: e.edge_type,
                    index: i,
                });
                i += 1;
            });
        });
    }

    /// Hints that `v`'s merged row at `epoch` is about to be read.
    ///
    /// Purely a performance hint for the stage-interleaved engine. The
    /// base CSR is lock-free, so its row bounds and payload are always
    /// warmed; the per-vertex version vector is only touched when the
    /// read lock is free right now (`try_read`) — blocking, even
    /// briefly, would defeat the point of a prefetch.
    pub fn prefetch_row_at(&self, v: VertexId, epoch: u64) {
        self.base.prefetch_row_bounds(v);
        self.base.prefetch_row_payload(v);
        if let Ok(inner) = self.inner.try_read() {
            let rows = &inner.rows[v as usize];
            knightking_graph::prefetch::slice(rows);
            let n = rows.partition_point(|rv| rv.epoch <= epoch);
            if n > 0 {
                rows[n - 1].kind.prefetch();
            }
        }
    }

    /// Total edge count at `epoch` (an O(V) scan over row versions).
    pub fn edge_count_at(&self, epoch: u64) -> u64 {
        let inner = self.inner.read().expect("dyn lock poisoned");
        (0..self.vertex_count() as VertexId)
            .map(|v| self.view(&inner.rows[v as usize], v, epoch).degree() as u64)
            .sum()
    }

    /// Validates a batch against the base's shape and flags, without
    /// applying anything. Independent of vertex ownership: every rank of
    /// a distributed apply accepts or rejects a batch identically.
    ///
    /// # Errors
    ///
    /// See [`DynError`].
    pub fn validate(&self, batch: &UpdateBatch) -> Result<(), DynError> {
        let n = self.vertex_count();
        let check_v = |vertex: VertexId| {
            if (vertex as usize) < n {
                Ok(())
            } else {
                Err(DynError::VertexOutOfRange {
                    vertex,
                    vertex_count: n,
                })
            }
        };
        for a in &batch.adds {
            check_v(a.src)?;
            check_v(a.dst)?;
            if !a.weight.is_finite() || a.weight < 0.0 {
                return Err(DynError::InvalidWeight {
                    src: a.src,
                    dst: a.dst,
                    weight: a.weight,
                });
            }
            if !self.is_weighted() && a.weight != 1.0 {
                return Err(DynError::WeightOnUnweighted {
                    src: a.src,
                    dst: a.dst,
                });
            }
            if !self.is_typed() && a.edge_type != 0 {
                return Err(DynError::TypeOnUntyped {
                    src: a.src,
                    dst: a.dst,
                });
            }
        }
        for d in &batch.dels {
            check_v(d.src)?;
            check_v(d.dst)?;
        }
        for r in &batch.reweights {
            check_v(r.src)?;
            check_v(r.dst)?;
            if !self.is_weighted() {
                return Err(DynError::ReweightUnweighted {
                    src: r.src,
                    dst: r.dst,
                });
            }
            if !r.weight.is_finite() || r.weight < 0.0 {
                return Err(DynError::InvalidWeight {
                    src: r.src,
                    dst: r.dst,
                    weight: r.weight,
                });
            }
        }
        Ok(())
    }

    /// Applies a batch under the next epoch, touching every source
    /// vertex. The single-owner (non-distributed) entry point.
    ///
    /// # Errors
    ///
    /// Fails with [`DynError`] (graph untouched) on an invalid batch.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<AppliedUpdate, DynError> {
        let epoch = self.epoch() + 1;
        self.apply_at(epoch, batch, &|_| true)
    }

    /// Applies a batch stamped with `epoch`, rebuilding only the rows of
    /// source vertices selected by `keep` — each rank of a distributed
    /// apply passes its ownership predicate, so every rank applies the
    /// same batch under the same epoch in lockstep while rebuilding only
    /// its own partition.
    ///
    /// `epoch` must be at least the current epoch + 1 on the first call;
    /// re-applying at the current epoch is idempotent (vertices already
    /// stamped are skipped), which lets in-process ranks share one
    /// instance.
    ///
    /// # Errors
    ///
    /// Fails with [`DynError`] (graph untouched) on an invalid batch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is older than the current epoch — updates apply
    /// in order.
    pub fn apply_at(
        &self,
        epoch: u64,
        batch: &UpdateBatch,
        keep: &dyn Fn(VertexId) -> bool,
    ) -> Result<AppliedUpdate, DynError> {
        self.validate(batch)?;

        // Fold the batch into per-vertex op lists, preserving batch
        // order within each kind. BTreeMap: vertices process in sorted
        // order, so `touched` comes out sorted.
        #[derive(Default)]
        struct VertexOps {
            dels: Vec<VertexId>,
            adds: Vec<AddEdge>,
            rews: Vec<(VertexId, Weight)>,
        }
        let mut ops: BTreeMap<VertexId, VertexOps> = BTreeMap::new();
        for d in &batch.dels {
            if keep(d.src) {
                ops.entry(d.src).or_default().dels.push(d.dst);
            }
        }
        for a in &batch.adds {
            if keep(a.src) {
                ops.entry(a.src).or_default().adds.push(AddEdge {
                    dst: a.dst,
                    weight: a.weight,
                    edge_type: a.edge_type,
                });
            }
        }
        for r in &batch.reweights {
            if keep(r.src) {
                ops.entry(r.src).or_default().rews.push((r.dst, r.weight));
            }
        }

        let mut inner = self.inner.write().expect("dyn lock poisoned");
        assert!(
            epoch >= inner.epoch,
            "update epoch {epoch} is older than the graph's epoch {} — \
             updates must apply in order",
            inner.epoch
        );

        let mut touched = Vec::with_capacity(ops.len());
        for (v, vops) in &ops {
            let v = *v;
            let rows = &inner.rows[v as usize];
            if rows.last().is_some_and(|rv| rv.epoch >= epoch) {
                // Already stamped at (or past) this epoch: a shared
                // in-process instance saw another rank apply it.
                continue;
            }

            // Current head view (underlying + cumulative overlay).
            let head = self.view(rows, v, u64::MAX);
            let und = head.und;
            let mut ov = head.ov.cloned().unwrap_or_default();

            // Deletions: tombstone all live underlying instances, drop
            // appended instances, forget overrides of killed edges.
            for &dst in &vops.dels {
                let lo = und.targets.partition_point(|&t| t < dst);
                let hi = und.targets.partition_point(|&t| t <= dst);
                for k in lo..hi {
                    let k = k as u32;
                    if let Err(pos) = ov.dead.binary_search(&k) {
                        ov.dead.insert(pos, k);
                    }
                }
                ov.adds.retain(|e| e.dst != dst);
                ov.rew.retain(|&(k, _)| ov.dead.binary_search(&k).is_err());
            }

            // Additions: destination-sorted insert, stable after
            // existing instances of the same destination.
            for &a in &vops.adds {
                let pos = ov.adds.partition_point(|e| e.dst <= a.dst);
                ov.adds.insert(pos, a);
            }

            // Reweights: override every live underlying instance, set
            // appended instances (including ones added by this batch)
            // directly.
            for &(dst, w) in &vops.rews {
                let lo = und.targets.partition_point(|&t| t < dst);
                let hi = und.targets.partition_point(|&t| t <= dst);
                for k in lo..hi {
                    let k = k as u32;
                    if ov.dead.binary_search(&k).is_ok() {
                        continue;
                    }
                    match ov.rew.binary_search_by_key(&k, |&(i, _)| i) {
                        Ok(p) => ov.rew[p].1 = w,
                        Err(p) => ov.rew.insert(p, (k, w)),
                    }
                }
                for e in ov.adds.iter_mut().filter(|e| e.dst == dst) {
                    e.weight = w;
                }
            }

            // Compaction: fold the overlay into a fresh full row when
            // the deltas outgrow the configured fraction of the
            // underlying row.
            let und_deg = und.targets.len().max(1);
            let kind = if ov.delta_len() as f64 > self.cfg.compact_ratio * und_deg as f64 {
                let full =
                    RowView { und, ov: Some(&ov) }.compact(self.is_weighted(), self.is_typed());
                inner.compactions += 1;
                RowKind::Full(full)
            } else {
                RowKind::Overlay(ov)
            };
            inner.rows[v as usize].push(RowVersion { epoch, kind });
            inner.rows_rebuilt += 1;
            touched.push(v);
        }

        inner.epoch = inner.epoch.max(epoch);
        Ok(AppliedUpdate { epoch, touched })
    }

    /// Materializes the graph at `epoch` into a standalone CSR. The
    /// result is **byte-identical** to what a pinned reader at that
    /// epoch observes edge-by-edge — the anchor of the determinism
    /// invariant, and the offline path `kk graph apply` uses.
    pub fn materialize_at(&self, epoch: u64) -> CsrGraph {
        let n = self.vertex_count();
        let mut b = GraphBuilder::directed(n);
        if self.is_weighted() {
            b = b.with_weights();
        }
        if self.is_typed() {
            b = b.with_edge_types();
        }
        let inner = self.inner.read().expect("dyn lock poisoned");
        for v in 0..n as VertexId {
            self.view(&inner.rows[v as usize], v, epoch)
                .for_each(|e| b.add_full_edge(v, e.dst, e.weight, e.edge_type));
        }
        drop(inner);
        b.build()
    }

    /// Materializes the current epoch.
    pub fn materialize(&self) -> CsrGraph {
        self.materialize_at(self.epoch())
    }

    /// Drops row versions no live reader can observe: given the minimum
    /// epoch still pinned by any in-flight walker (and below any future
    /// admission), keeps — per vertex — the version such a reader
    /// resolves to, the full row it references, and everything newer.
    /// Idempotent; safe to call from several in-process ranks sharing
    /// one instance.
    pub fn retire(&self, watermark: u64) {
        let mut inner = self.inner.write().expect("dyn lock poisoned");
        for rows in &mut inner.rows {
            if rows.is_empty() {
                continue;
            }
            let n = rows.partition_point(|rv| rv.epoch <= watermark);
            if n == 0 {
                continue;
            }
            let idx = n - 1;
            let keep_full = match &rows[idx].kind {
                RowKind::Overlay(_) => rows[..idx]
                    .iter()
                    .rposition(|rv| matches!(rv.kind, RowKind::Full(_))),
                RowKind::Full(_) => None,
            };
            let mut i = 0;
            rows.retain(|_| {
                let keep = i >= idx || Some(i) == keep_full;
                i += 1;
                keep
            });
        }
    }
}

impl std::fmt::Debug for DynGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("DynGraph")
            .field("vertices", &self.vertex_count())
            .field("base_edges", &self.base.edge_count())
            .field("epoch", &stats.epoch)
            .field("versions", &stats.versions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeAdd, EdgeRef, EdgeReweight};

    /// base: 0->{1,2}, 1->{2}, 2->{0} (weighted)
    fn weighted_base() -> CsrGraph {
        let mut b = GraphBuilder::directed(3).with_weights();
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 2.0);
        b.add_weighted_edge(1, 2, 3.0);
        b.add_weighted_edge(2, 0, 4.0);
        b.build()
    }

    fn add(src: VertexId, dst: VertexId, weight: Weight) -> EdgeAdd {
        EdgeAdd {
            src,
            dst,
            weight,
            edge_type: 0,
        }
    }

    /// Asserts the dynamic view at `epoch` equals `expect` edge-by-edge
    /// — and that the materialized CSR at that epoch agrees exactly.
    fn assert_row(g: &DynGraph, v: VertexId, epoch: u64, expect: &[(VertexId, Weight)]) {
        assert_eq!(g.degree_at(v, epoch), expect.len(), "degree of {v}");
        for (i, &(dst, w)) in expect.iter().enumerate() {
            let e = g.edge_at(v, i, epoch);
            assert_eq!((e.dst, e.weight), (dst, w), "edge {i} of {v}");
        }
        let m = g.materialize_at(epoch);
        assert_eq!(m.degree(v), expect.len(), "materialized degree of {v}");
        for (i, &(dst, w)) in expect.iter().enumerate() {
            let e = m.edge(v, i);
            assert_eq!((e.dst, e.weight), (dst, w), "materialized edge {i} of {v}");
        }
    }

    #[test]
    fn epoch_pinned_readers_see_consistent_snapshots() {
        let g = DynGraph::new(weighted_base(), DynConfig::default());
        assert_eq!(g.epoch(), 0);
        let applied = g
            .apply(&UpdateBatch {
                adds: vec![add(0, 0, 5.0)],
                dels: vec![EdgeRef { src: 0, dst: 2 }],
                reweights: vec![EdgeReweight {
                    src: 1,
                    dst: 2,
                    weight: 9.0,
                }],
            })
            .unwrap();
        assert_eq!(applied.epoch, 1);
        assert_eq!(applied.touched, vec![0, 1]);

        // Epoch 0 still reads the base graph.
        assert_row(&g, 0, 0, &[(1, 1.0), (2, 2.0)]);
        assert_row(&g, 1, 0, &[(2, 3.0)]);
        // Epoch 1 sees the update.
        assert_row(&g, 0, 1, &[(0, 5.0), (1, 1.0)]);
        assert_row(&g, 1, 1, &[(2, 9.0)]);
        assert_row(&g, 2, 1, &[(0, 4.0)]);
    }

    #[test]
    fn delete_then_add_same_pair_replaces() {
        let g = DynGraph::new(weighted_base(), DynConfig::default());
        g.apply(&UpdateBatch {
            adds: vec![add(0, 2, 7.0)],
            dels: vec![EdgeRef { src: 0, dst: 2 }],
            reweights: vec![],
        })
        .unwrap();
        assert_row(&g, 0, 1, &[(1, 1.0), (2, 7.0)]);
    }

    #[test]
    fn parallel_edges_preserve_order() {
        let g = DynGraph::new(
            weighted_base(),
            DynConfig {
                compact_ratio: f64::INFINITY,
            },
        );
        g.apply(&UpdateBatch {
            adds: vec![add(0, 1, 10.0), add(0, 1, 11.0)],
            dels: vec![],
            reweights: vec![],
        })
        .unwrap();
        // Underlying first, then appended in insertion order.
        assert_row(&g, 0, 1, &[(1, 1.0), (1, 10.0), (1, 11.0), (2, 2.0)]);
        assert_eq!(g.edge_range_at(0, 1, 1), 0..3);
        assert_eq!(g.find_edge_at(0, 1, 1), Some(0));
        assert!(g.has_edge_at(0, 1, 1));
        assert_eq!(g.weight_sum_at(0, 1), 24.0);
    }

    #[test]
    fn compaction_threshold_zero_compacts_every_touch() {
        let g = DynGraph::new(weighted_base(), DynConfig { compact_ratio: 0.0 });
        g.apply(&UpdateBatch {
            adds: vec![add(2, 1, 1.5)],
            dels: vec![],
            reweights: vec![],
        })
        .unwrap();
        let stats = g.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.rows_rebuilt, 1);
        assert_eq!(stats.versions, 1);
        assert_row(&g, 2, 1, &[(0, 4.0), (1, 1.5)]);
    }

    #[test]
    fn rebuilds_count_touched_vertices_only() {
        let g = DynGraph::new(weighted_base(), DynConfig::default());
        g.apply(&UpdateBatch {
            adds: vec![add(0, 0, 1.0), add(0, 1, 2.0), add(2, 2, 3.0)],
            dels: vec![],
            reweights: vec![],
        })
        .unwrap();
        // Two distinct sources touched → exactly two rows rebuilt.
        assert_eq!(g.stats().rows_rebuilt, 2);
    }

    #[test]
    fn shared_instance_partitioned_apply_is_idempotent() {
        // Two in-process "ranks" share the instance and each apply the
        // same batch at the same epoch with their own keep predicate.
        let g = DynGraph::new(weighted_base(), DynConfig::default());
        let batch = UpdateBatch {
            adds: vec![add(0, 0, 1.0), add(2, 1, 2.0)],
            dels: vec![],
            reweights: vec![],
        };
        let a0 = g.apply_at(1, &batch, &|v| v < 2).unwrap();
        let a1 = g.apply_at(1, &batch, &|v| v >= 2).unwrap();
        // And a straggler re-applying changes nothing.
        let again = g.apply_at(1, &batch, &|_| true).unwrap();
        assert_eq!(a0.touched, vec![0]);
        assert_eq!(a1.touched, vec![2]);
        assert!(again.touched.is_empty());
        assert_eq!(g.stats().rows_rebuilt, 2);
        assert_row(&g, 0, 1, &[(0, 1.0), (1, 1.0), (2, 2.0)]);
        assert_row(&g, 2, 1, &[(0, 4.0), (1, 2.0)]);
    }

    #[test]
    fn retire_drops_unreachable_versions() {
        let g = DynGraph::new(
            weighted_base(),
            DynConfig {
                compact_ratio: f64::INFINITY,
            },
        );
        for e in 1..=4u64 {
            g.apply(&UpdateBatch {
                adds: vec![add(0, 2, e as f32)],
                dels: vec![],
                reweights: vec![],
            })
            .unwrap();
            assert_eq!(g.epoch(), e);
        }
        assert_eq!(g.stats().versions, 4);
        let before = g.materialize_at(3);
        g.retire(3);
        // Epoch-3 and epoch-4 readers are unaffected.
        let after = g.materialize_at(3);
        assert_eq!(before.edge_count(), after.edge_count());
        assert_eq!(g.degree_at(0, 3), 5);
        assert_eq!(g.degree_at(0, 4), 6);
        assert_eq!(g.stats().versions, 2);
    }

    #[test]
    fn validation_rejects_bad_batches_atomically() {
        let g = DynGraph::new(weighted_base(), DynConfig::default());
        let err = g
            .apply(&UpdateBatch {
                adds: vec![add(0, 1, 1.0), add(0, 99, 1.0)],
                dels: vec![],
                reweights: vec![],
            })
            .unwrap_err();
        assert_eq!(
            err,
            DynError::VertexOutOfRange {
                vertex: 99,
                vertex_count: 3
            }
        );
        // Nothing applied, epoch unchanged.
        assert_eq!(g.epoch(), 0);
        assert_eq!(g.stats().rows_rebuilt, 0);

        let err = g
            .apply(&UpdateBatch {
                adds: vec![add(0, 1, f32::NAN)],
                dels: vec![],
                reweights: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, DynError::InvalidWeight { .. }));
    }

    #[test]
    fn unweighted_base_rejects_weights_and_reweights() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        let g = DynGraph::new(b.build(), DynConfig::default());
        assert!(matches!(
            g.apply(&UpdateBatch {
                adds: vec![add(0, 1, 2.0)],
                dels: vec![],
                reweights: vec![],
            }),
            Err(DynError::WeightOnUnweighted { .. })
        ));
        assert!(matches!(
            g.apply(&UpdateBatch {
                adds: vec![],
                dels: vec![],
                reweights: vec![EdgeReweight {
                    src: 0,
                    dst: 1,
                    weight: 2.0
                }],
            }),
            Err(DynError::ReweightUnweighted { .. })
        ));
        // Unit-weight adds are fine, and the merged row stays
        // unweighted (weight defaults to 1.0).
        g.apply(&UpdateBatch {
            adds: vec![add(0, 0, 1.0)],
            dels: vec![],
            reweights: vec![],
        })
        .unwrap();
        assert!(!g.materialize().is_weighted());
        assert_eq!(g.edge_at(0, 0, 1).weight, 1.0);
    }

    #[test]
    fn deleting_missing_edges_is_a_noop() {
        let g = DynGraph::new(weighted_base(), DynConfig::default());
        g.apply(&UpdateBatch {
            adds: vec![],
            dels: vec![EdgeRef { src: 1, dst: 0 }],
            reweights: vec![],
        })
        .unwrap();
        assert_eq!(g.epoch(), 1);
        assert_row(&g, 1, 1, &[(2, 3.0)]);
    }
}
