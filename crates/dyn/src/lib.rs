#![warn(missing_docs)]

//! Epoch-versioned dynamic graph layer over the immutable CSR base.
//!
//! KnightKing (§6.1) builds its graph once at load time; a resident walk
//! service needs a graph that mutates while walks are in flight. This
//! crate overlays per-vertex **delta adjacency** — appended edges,
//! tombstoned deletions, and weight overrides — on an immutable
//! [`CsrGraph`] base. Every applied [`UpdateBatch`] stamps a
//! monotonically increasing **graph epoch**, and every read is made *at*
//! an epoch: a walker that pins the epoch current at its admission
//! samples one consistent snapshot for its whole trajectory, no matter
//! how many updates land while it is in flight. The snapshot a pinned
//! reader sees is defined to be byte-identical to the CSR
//! [`DynGraph::materialize`] would produce at that epoch — the repo's
//! standing determinism invariant extends to dynamic graphs through this
//! definition.
//!
//! # Delta layout
//!
//! Each vertex carries a (usually empty) list of row versions. A version
//! is either an [`Overlay`](row) — cumulative adds/tombstones/reweights
//! relative to the nearest *full* row at or below it (the CSR base row if
//! none) — or a compacted full row. A configurable delta-ratio threshold
//! ([`DynConfig::compact_ratio`]) triggers per-vertex compaction of the
//! overlay back into a fresh CSR-shaped row, so read cost stays bounded
//! under sustained churn.
//!
//! The merged row a reader sees is the live underlying edges (base row
//! minus tombstones, reweights applied) merged with the appended edges in
//! destination order, underlying-before-appended on ties — exactly the
//! row order [`knightking_graph::GraphBuilder`] produces, which is what
//! makes [`DynGraph::materialize`] an identity for readers.

mod graph;
mod row;
mod update;

pub use graph::{AppliedUpdate, DynConfig, DynGraph, DynStats};
pub use update::{EdgeAdd, EdgeRef, EdgeReweight, UpdateBatch};

use knightking_graph::VertexId;

/// Errors produced when validating or applying an update batch.
///
/// Validation happens up front and atomically: a batch that fails leaves
/// the graph untouched. Every rank of a distributed apply validates the
/// same full batch (independent of vertex ownership), so an invalid
/// batch fails identically everywhere.
#[derive(Debug, Clone, PartialEq)]
pub enum DynError {
    /// An endpoint of an operation is outside the vertex range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        vertex_count: usize,
    },
    /// An added or overridden weight is not finite and non-negative.
    InvalidWeight {
        /// Source of the offending edge.
        src: VertexId,
        /// Destination of the offending edge.
        dst: VertexId,
        /// The offending weight.
        weight: f32,
    },
    /// A weight other than 1.0 was supplied for an unweighted graph.
    WeightOnUnweighted {
        /// Source of the offending edge.
        src: VertexId,
        /// Destination of the offending edge.
        dst: VertexId,
    },
    /// A reweight was submitted against an unweighted graph.
    ReweightUnweighted {
        /// Source of the offending edge.
        src: VertexId,
        /// Destination of the offending edge.
        dst: VertexId,
    },
    /// A non-zero edge type was supplied for an untyped graph.
    TypeOnUntyped {
        /// Source of the offending edge.
        src: VertexId,
        /// Destination of the offending edge.
        dst: VertexId,
    },
}

impl std::fmt::Display for DynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "update references vertex {vertex} but the graph has {vertex_count} vertices"
            ),
            DynError::InvalidWeight { src, dst, weight } => write!(
                f,
                "update gives edge {src}->{dst} invalid weight {weight} \
                 (must be finite and non-negative)"
            ),
            DynError::WeightOnUnweighted { src, dst } => write!(
                f,
                "update adds edge {src}->{dst} with a non-unit weight, \
                 but the base graph is unweighted"
            ),
            DynError::ReweightUnweighted { src, dst } => write!(
                f,
                "update reweights edge {src}->{dst}, but the base graph is unweighted"
            ),
            DynError::TypeOnUntyped { src, dst } => write!(
                f,
                "update adds edge {src}->{dst} with a non-zero edge type, \
                 but the base graph is untyped"
            ),
        }
    }
}

impl std::error::Error for DynError {}
