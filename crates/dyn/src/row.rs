//! Per-vertex row versions and the merged-row read path.
//!
//! A vertex's adjacency at an epoch is the **merged row**: the live
//! underlying edges (the CSR base row — or the most recent compacted
//! full row — minus tombstones, with weight overrides applied) merged
//! with the appended edges, ordered by destination with
//! underlying-before-appended on ties, appended edges in insertion
//! order within a destination. This is exactly the order
//! `GraphBuilder::build` leaves a row in when fed the same edges, which
//! is what makes a pinned reader byte-identical to the materialized CSR.

use knightking_graph::{EdgeTypeId, VertexId, Weight};

/// One appended edge (destination-sorted inside [`Overlay::adds`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct AddEdge {
    pub dst: VertexId,
    pub weight: Weight,
    pub edge_type: EdgeTypeId,
}

/// Cumulative deltas relative to the nearest full row at or below this
/// version (the CSR base row if none).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Overlay {
    /// Appended edges, sorted by destination, insertion-stable.
    pub adds: Vec<AddEdge>,
    /// Tombstoned underlying edge indices, sorted ascending.
    pub dead: Vec<u32>,
    /// Weight overrides `(underlying index, weight)` for live underlying
    /// edges, sorted by index.
    pub rew: Vec<(u32, Weight)>,
}

impl Overlay {
    /// Number of delta entries — the numerator of the compaction ratio.
    pub fn delta_len(&self) -> usize {
        self.adds.len() + self.dead.len() + self.rew.len()
    }
}

/// A compacted, self-contained CSR-shaped row.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FullRow {
    pub targets: Vec<VertexId>,
    pub weights: Option<Vec<Weight>>,
    pub types: Option<Vec<EdgeTypeId>>,
}

impl FullRow {
    pub fn as_und(&self) -> UndRow<'_> {
        UndRow {
            targets: &self.targets,
            weights: self.weights.as_deref(),
            types: self.types.as_deref(),
        }
    }
}

/// The row's state as of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RowKind {
    Overlay(Overlay),
    Full(FullRow),
}

impl RowKind {
    /// Hints that this row version's payload is about to be merged-read.
    /// Purely a performance hint (see `knightking_graph::prefetch`).
    pub fn prefetch(&self) {
        match self {
            RowKind::Overlay(ov) => {
                knightking_graph::prefetch::slice(&ov.adds);
                knightking_graph::prefetch::slice(&ov.dead);
                knightking_graph::prefetch::slice(&ov.rew);
            }
            RowKind::Full(fr) => {
                knightking_graph::prefetch::slice(&fr.targets);
                if let Some(w) = &fr.weights {
                    knightking_graph::prefetch::slice(w);
                }
            }
        }
    }
}

/// One epoch-stamped row version. Versions within a vertex are sorted by
/// epoch; a reader pinned at epoch `e` uses the latest version with
/// `epoch <= e` (or the base row when none exists).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RowVersion {
    pub epoch: u64,
    pub kind: RowKind,
}

/// Borrowed slices of an underlying row (base CSR row or full row).
#[derive(Debug, Clone, Copy)]
pub(crate) struct UndRow<'a> {
    pub targets: &'a [VertexId],
    pub weights: Option<&'a [Weight]>,
    pub types: Option<&'a [EdgeTypeId]>,
}

/// One edge of a merged row, fully resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MergedEdge {
    pub dst: VertexId,
    pub weight: Weight,
    pub edge_type: EdgeTypeId,
}

/// A resolved read view: underlying row plus (optionally) an overlay.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RowView<'a> {
    pub und: UndRow<'a>,
    pub ov: Option<&'a Overlay>,
}

impl<'a> RowView<'a> {
    /// Number of live underlying edges.
    fn live_len(&self) -> usize {
        self.und.targets.len() - self.ov.map_or(0, |o| o.dead.len())
    }

    /// Merged-row degree.
    pub fn degree(&self) -> usize {
        self.live_len() + self.ov.map_or(0, |o| o.adds.len())
    }

    /// Maps the `j`-th *live* underlying edge to its underlying index,
    /// skipping tombstones. Iterative fixed point: each round accounts
    /// for the tombstones at or below the current candidate index.
    fn live_to_und(&self, j: usize) -> usize {
        let Some(ov) = self.ov else { return j };
        if ov.dead.is_empty() {
            return j;
        }
        let mut k = j;
        loop {
            let d = ov.dead.partition_point(|&x| (x as usize) <= k);
            let next = j + d;
            if next == k {
                return k;
            }
            k = next;
        }
    }

    /// Weight of the underlying edge at underlying index `k`, override
    /// applied.
    fn und_weight(&self, k: usize) -> Weight {
        if let Some(ov) = self.ov {
            if let Ok(p) = ov.rew.binary_search_by_key(&(k as u32), |&(i, _)| i) {
                return ov.rew[p].1;
            }
        }
        self.und.weights.map_or(1.0, |w| w[k])
    }

    fn und_edge(&self, k: usize) -> MergedEdge {
        MergedEdge {
            dst: self.und.targets[k],
            weight: self.und_weight(k),
            edge_type: self.und.types.map_or(0, |t| t[k]),
        }
    }

    /// Random access into the merged row: the `i`-th edge in destination
    /// order (underlying before appended on ties). Selection over the
    /// two sorted sequences — O(log² degree), no materialization.
    pub fn get(&self, i: usize) -> MergedEdge {
        debug_assert!(i < self.degree(), "merged row index out of range");
        let adds: &[AddEdge] = self.ov.map_or(&[], |o| &o.adds);
        let la = self.live_len();
        let lb = adds.len();
        if lb == 0 {
            return self.und_edge(self.live_to_und(i));
        }
        let key_a = |j: usize| self.und.targets[self.live_to_und(j)];
        // Find the split (a, b), a + b = i, of the first i merged
        // elements: the smallest a such that no taken appended edge has
        // a destination >= the next untaken underlying one (underlying
        // wins ties, so `>=` is the violation).
        let mut lo = i.saturating_sub(lb);
        let mut hi = i.min(la);
        while lo < hi {
            let a = (lo + hi) / 2;
            let b = i - a;
            if b > 0 && a < la && adds[b - 1].dst >= key_a(a) {
                lo = a + 1;
            } else {
                hi = a;
            }
        }
        let a = lo;
        let b = i - a;
        if a < la && (b == lb || key_a(a) <= adds[b].dst) {
            self.und_edge(self.live_to_und(a))
        } else {
            let e = adds[b];
            MergedEdge {
                dst: e.dst,
                weight: e.weight,
                edge_type: e.edge_type,
            }
        }
    }

    /// Index range of the merged-row edges targeting `dst` — the merged
    /// counterpart of `CsrGraph::edge_range`.
    pub fn range_of(&self, dst: VertexId) -> std::ops::Range<usize> {
        let bp_lo = self.und.targets.partition_point(|&t| t < dst);
        let bp_hi = self.und.targets.partition_point(|&t| t <= dst);
        let (dead_lo, dead_hi, add_lo, add_hi) = match self.ov {
            None => (0, 0, 0, 0),
            Some(o) => (
                o.dead.partition_point(|&x| (x as usize) < bp_lo),
                o.dead.partition_point(|&x| (x as usize) < bp_hi),
                o.adds.partition_point(|e| e.dst < dst),
                o.adds.partition_point(|e| e.dst <= dst),
            ),
        };
        (bp_lo - dead_lo + add_lo)..(bp_hi - dead_hi + add_hi)
    }

    /// Walks the merged row in order — the sequential path alias
    /// building, compaction, and materialization use.
    pub fn for_each(&self, mut f: impl FnMut(MergedEdge)) {
        let (adds, dead): (&[AddEdge], &[u32]) = self.ov.map_or((&[], &[]), |o| (&o.adds, &o.dead));
        let n = self.und.targets.len();
        let (mut ai, mut bi, mut di) = (0usize, 0usize, 0usize);
        while ai < n || bi < adds.len() {
            if ai < n && di < dead.len() && dead[di] as usize == ai {
                ai += 1;
                di += 1;
                continue;
            }
            let take_und = ai < n && (bi >= adds.len() || self.und.targets[ai] <= adds[bi].dst);
            if take_und {
                f(self.und_edge(ai));
                ai += 1;
            } else {
                let e = adds[bi];
                f(MergedEdge {
                    dst: e.dst,
                    weight: e.weight,
                    edge_type: e.edge_type,
                });
                bi += 1;
            }
        }
    }

    /// Compacts the view into a self-contained full row.
    pub fn compact(&self, weighted: bool, typed: bool) -> FullRow {
        let deg = self.degree();
        let mut row = FullRow {
            targets: Vec::with_capacity(deg),
            weights: weighted.then(|| Vec::with_capacity(deg)),
            types: typed.then(|| Vec::with_capacity(deg)),
        };
        self.for_each(|e| {
            row.targets.push(e.dst);
            if let Some(w) = &mut row.weights {
                w.push(e.weight);
            }
            if let Some(t) = &mut row.types {
                t.push(e.edge_type);
            }
        });
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn und(targets: &[VertexId]) -> UndRow<'_> {
        UndRow {
            targets,
            weights: None,
            types: None,
        }
    }

    fn add(dst: VertexId, weight: Weight) -> AddEdge {
        AddEdge {
            dst,
            weight,
            edge_type: 0,
        }
    }

    /// Reference implementation: materialize the merged row naively.
    fn naive(view: &RowView<'_>) -> Vec<MergedEdge> {
        let mut out = Vec::new();
        view.for_each(|e| out.push(e));
        out
    }

    #[test]
    fn plain_base_row_passes_through() {
        let targets = [1, 3, 3, 7];
        let view = RowView {
            und: und(&targets),
            ov: None,
        };
        assert_eq!(view.degree(), 4);
        assert_eq!(view.get(2).dst, 3);
        assert_eq!(view.get(2).weight, 1.0);
        assert_eq!(view.range_of(3), 1..3);
        assert_eq!(view.range_of(5), 3..3);
    }

    #[test]
    fn tombstones_skip_and_reindex() {
        let targets = [1, 3, 5, 7];
        let ov = Overlay {
            adds: vec![],
            dead: vec![0, 2],
            rew: vec![],
        };
        let view = RowView {
            und: und(&targets),
            ov: Some(&ov),
        };
        assert_eq!(view.degree(), 2);
        assert_eq!(view.get(0).dst, 3);
        assert_eq!(view.get(1).dst, 7);
        assert_eq!(view.range_of(5), 1..1);
        assert_eq!(view.range_of(7), 1..2);
    }

    #[test]
    fn adds_merge_in_dst_order_und_first_on_ties() {
        let targets = [2, 4, 4];
        let ov = Overlay {
            adds: vec![add(1, 0.5), add(4, 2.0), add(9, 3.0)],
            dead: vec![],
            rew: vec![],
        };
        let view = RowView {
            und: und(&targets),
            ov: Some(&ov),
        };
        let dsts: Vec<_> = naive(&view).iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 2, 4, 4, 4, 9]);
        // The appended 4 comes after both underlying 4s.
        assert_eq!(view.get(4).weight, 2.0);
        assert_eq!(view.get(2).weight, 1.0);
        // Random access agrees with the sequential walk everywhere.
        for (i, e) in naive(&view).into_iter().enumerate() {
            assert_eq!(view.get(i), e, "index {i}");
        }
        assert_eq!(view.range_of(4), 2..5);
        assert_eq!(view.range_of(1), 0..1);
        assert_eq!(view.range_of(9), 5..6);
    }

    #[test]
    fn reweight_overrides_underlying_weight() {
        let targets = [2, 4];
        let weights = [1.0f32, 5.0];
        let ov = Overlay {
            adds: vec![],
            dead: vec![],
            rew: vec![(1, 0.25)],
        };
        let view = RowView {
            und: UndRow {
                targets: &targets,
                weights: Some(&weights),
                types: None,
            },
            ov: Some(&ov),
        };
        assert_eq!(view.get(0).weight, 1.0);
        assert_eq!(view.get(1).weight, 0.25);
    }

    #[test]
    fn compact_then_read_matches_overlay_read() {
        let targets = [2, 4, 6];
        let ov = Overlay {
            adds: vec![add(3, 9.0), add(6, 1.5)],
            dead: vec![1],
            rew: vec![(2, 4.0)],
        };
        let view = RowView {
            und: UndRow {
                targets: &targets,
                weights: Some(&[1.0, 2.0, 3.0]),
                types: None,
            },
            ov: Some(&ov),
        };
        let full = view.compact(true, false);
        let flat = full.as_und();
        let compacted = RowView {
            und: flat,
            ov: None,
        };
        assert_eq!(naive(&view), naive(&compacted));
        assert_eq!(full.targets, vec![2, 3, 6, 6]);
        assert_eq!(full.weights.as_deref(), Some(&[1.0f32, 9.0, 4.0, 1.5][..]));
    }

    #[test]
    fn random_access_agrees_with_walk_under_mixed_deltas() {
        let targets = [1, 1, 4, 6, 6, 8];
        let ov = Overlay {
            adds: vec![add(0, 0.1), add(1, 0.2), add(6, 0.3), add(6, 0.4)],
            dead: vec![1, 4],
            rew: vec![(3, 7.0)],
        };
        let view = RowView {
            und: und(&targets),
            ov: Some(&ov),
        };
        let walked = naive(&view);
        assert_eq!(walked.len(), view.degree());
        for (i, e) in walked.iter().enumerate() {
            assert_eq!(view.get(i), *e, "index {i}");
        }
        for dst in 0..10u32 {
            let r = view.range_of(dst);
            let expected: Vec<usize> = walked
                .iter()
                .enumerate()
                .filter(|(_, e)| e.dst == dst)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                (r.start..r.end).collect::<Vec<_>>(),
                expected,
                "range_of({dst})"
            );
        }
    }
}
