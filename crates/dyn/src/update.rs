//! Update batches: the unit of graph mutation.
//!
//! A batch carries edge additions, deletions, and weight overrides, and
//! applies atomically under one new graph epoch. Within a batch the
//! application order is fixed — **deletions, then additions, then
//! reweights** — so a batch may replace an edge (delete + add) or add an
//! edge and immediately override its weight, and every rank of a
//! distributed apply agrees on the outcome.
//!
//! All operations address *directed* edge instances: on an undirected
//! graph (whose CSR carries both directions explicitly) a logical edge
//! update is two operations, one per direction.
//!
//! Batches travel on the wire — rank-to-rank inside the serve directive
//! broadcast, and client-to-server as `Request::Update` — via the
//! [`Wire`] codec.

use std::io;

use knightking_graph::{EdgeTypeId, VertexId, Weight};
use knightking_net::{Wire, WireError};

/// One edge to append.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeAdd {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight. Must be `1.0` when the base graph is unweighted.
    pub weight: Weight,
    /// Edge type. Must be `0` when the base graph is untyped.
    pub edge_type: EdgeTypeId,
}

impl Wire for EdgeAdd {
    fn wire_size(&self) -> usize {
        4 + 4 + 4 + 1
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.src.encode(out)?;
        self.dst.encode(out)?;
        self.weight.encode(out)?;
        self.edge_type.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(EdgeAdd {
            src: VertexId::decode(input)?,
            dst: VertexId::decode(input)?,
            weight: Weight::decode(input)?,
            edge_type: EdgeTypeId::decode(input)?,
        })
    }
}

/// A reference to the edges `src -> dst`; deletion removes **all** live
/// parallel instances of the pair. Deleting a pair with no live instances
/// is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Wire for EdgeRef {
    fn wire_size(&self) -> usize {
        4 + 4
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.src.encode(out)?;
        self.dst.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(EdgeRef {
            src: VertexId::decode(input)?,
            dst: VertexId::decode(input)?,
        })
    }
}

/// A weight override for the edges `src -> dst`; applies to **all** live
/// parallel instances of the pair. Reweighting a pair with no live
/// instances is a no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeReweight {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// The new weight.
    pub weight: Weight,
}

impl Wire for EdgeReweight {
    fn wire_size(&self) -> usize {
        4 + 4 + 4
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.src.encode(out)?;
        self.dst.encode(out)?;
        self.weight.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(EdgeReweight {
            src: VertexId::decode(input)?,
            dst: VertexId::decode(input)?,
            weight: Weight::decode(input)?,
        })
    }
}

/// One atomic graph mutation: applied under a single new epoch, in the
/// fixed order deletions → additions → reweights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateBatch {
    /// Edges to append.
    pub adds: Vec<EdgeAdd>,
    /// Edge pairs to delete (all live parallel instances).
    pub dels: Vec<EdgeRef>,
    /// Edge pairs to reweight (all live parallel instances).
    pub reweights: Vec<EdgeReweight>,
}

impl UpdateBatch {
    /// True when the batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.dels.is_empty() && self.reweights.is_empty()
    }

    /// Total operation count.
    pub fn len(&self) -> usize {
        self.adds.len() + self.dels.len() + self.reweights.len()
    }

    /// The sorted, deduplicated set of source vertices the batch touches
    /// — the vertices whose rows (and sampling structures) an apply will
    /// rebuild.
    pub fn touched_sources(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self
            .adds
            .iter()
            .map(|a| a.src)
            .chain(self.dels.iter().map(|d| d.src))
            .chain(self.reweights.iter().map(|r| r.src))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Splits the batch by a vertex → partition map, producing one batch
    /// per partition: `route(src)` names the partition whose rank owns
    /// the operation. Used to fan a client batch out to owning ranks.
    pub fn route_by(&self, n_parts: usize, route: impl Fn(VertexId) -> usize) -> Vec<UpdateBatch> {
        let mut out = vec![UpdateBatch::default(); n_parts];
        for a in &self.adds {
            out[route(a.src)].adds.push(*a);
        }
        for d in &self.dels {
            out[route(d.src)].dels.push(*d);
        }
        for r in &self.reweights {
            out[route(r.src)].reweights.push(*r);
        }
        out
    }
}

impl Wire for UpdateBatch {
    fn wire_size(&self) -> usize {
        self.adds.wire_size() + self.dels.wire_size() + self.reweights.wire_size()
    }
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        self.adds.encode(out)?;
        self.dels.encode(out)?;
        self.reweights.encode(out)
    }
    fn decode(input: &mut &[u8]) -> io::Result<Self> {
        Ok(UpdateBatch {
            adds: Vec::decode(input)?,
            dels: Vec::decode(input)?,
            reweights: Vec::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knightking_net::{from_bytes, to_bytes};

    fn sample_batch() -> UpdateBatch {
        UpdateBatch {
            adds: vec![EdgeAdd {
                src: 1,
                dst: 2,
                weight: 1.5,
                edge_type: 3,
            }],
            dels: vec![EdgeRef { src: 4, dst: 5 }, EdgeRef { src: 1, dst: 0 }],
            reweights: vec![EdgeReweight {
                src: 7,
                dst: 8,
                weight: 0.25,
            }],
        }
    }

    #[test]
    fn batch_round_trips() {
        let b = sample_batch();
        let bytes = to_bytes(&b).unwrap();
        assert_eq!(bytes.len(), b.wire_size());
        assert_eq!(from_bytes::<UpdateBatch>(&bytes).unwrap(), b);
    }

    #[test]
    fn touched_sources_dedups_and_sorts() {
        assert_eq!(sample_batch().touched_sources(), vec![1, 4, 7]);
    }

    #[test]
    fn routing_partitions_by_source() {
        let parts = sample_batch().route_by(2, |v| (v % 2) as usize);
        assert_eq!(parts[0].dels, vec![EdgeRef { src: 4, dst: 5 }]);
        assert_eq!(parts[1].adds.len(), 1);
        assert_eq!(parts[1].dels, vec![EdgeRef { src: 1, dst: 0 }]);
        assert_eq!(parts[1].reweights.len(), 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(UpdateBatch::default().is_empty());
        assert_eq!(UpdateBatch::default().len(), 0);
        assert!(!sample_batch().is_empty());
        assert_eq!(sample_batch().len(), 4);
    }
}
