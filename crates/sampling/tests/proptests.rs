//! Property-based tests for the sampling substrate.
//!
//! The central invariant: every sampler — alias, ITS, and rejection with
//! arbitrary bounds/outliers — reproduces the target distribution
//! *exactly* (up to chi-squared noise) for arbitrary weight vectors.

use knightking_sampling::{
    rejection::{sample_local, Envelope, LocalOutcome, OutlierSlot},
    stats::{chi_squared, chi_squared_critical},
    AliasTable, CdfTable, DeterministicRng, RadixTable,
};
use proptest::prelude::*;

/// A weight vector with at least one strictly positive entry.
fn weights_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 1..max_len).prop_filter_map(
        "needs positive total",
        |mut w| {
            // Force at least one positive weight.
            if w.iter().sum::<f64>() <= 0.0 {
                w[0] = 1.0;
            }
            Some(w)
        },
    )
}

fn check_sampler(
    weights: &[f64],
    draws: usize,
    seed: u64,
    mut sample: impl FnMut(&mut DeterministicRng) -> usize,
) {
    let mut rng = DeterministicRng::new(seed);
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..draws {
        counts[sample(&mut rng)] += 1;
    }
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let (stat, dof) = chi_squared(&counts, &probs);
    // Slightly relaxed bound: proptest runs many cases, so use ~1e-4
    // significance via an inflated critical value.
    let crit = chi_squared_critical(dof) * 1.5 + 5.0;
    assert!(
        stat <= crit,
        "sampler drifted: chi2 {stat:.1} > {crit:.1} for weights {weights:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alias_matches_arbitrary_distributions(w in weights_strategy(24), seed in 0u64..1000) {
        let table = AliasTable::new(&w).unwrap();
        check_sampler(&w, 30_000, seed, |rng| table.sample(rng));
    }

    #[test]
    fn its_matches_arbitrary_distributions(w in weights_strategy(24), seed in 0u64..1000) {
        let cdf = CdfTable::new(&w).unwrap();
        check_sampler(&w, 30_000, seed, |rng| cdf.sample(rng));
    }

    /// Rejection sampling with an arbitrary valid envelope must match the
    /// normalized Ps·Pd products.
    #[test]
    fn rejection_matches_ps_pd_products(
        ps in weights_strategy(12),
        pd_raw in prop::collection::vec(0.0f64..4.0, 12),
        slack in 1.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let n = ps.len();
        let pd: Vec<f64> = (0..n).map(|i| pd_raw[i % pd_raw.len()]).collect();
        let mass: f64 = ps.iter().zip(&pd).map(|(a, b)| a * b).sum();
        prop_assume!(mass > 1e-9);

        let q = pd.iter().fold(0.0f64, |a, &b| a.max(b)) * slack;
        let lower = pd.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let env = Envelope {
            q,
            lower,
            static_total: ps.iter().sum(),
            outliers: Vec::new(),
        };
        let cdf = CdfTable::new(&ps).unwrap();
        let products: Vec<f64> = ps.iter().zip(&pd).map(|(a, b)| a * b).collect();
        check_sampler(&products, 30_000, seed, |rng| {
            match sample_local(
                &env, rng, 100_000,
                |r| cdf.sample(r),
                |e| ps[e],
                |e| pd[e],
                |_| None,
            ) {
                LocalOutcome::Accepted { edge, .. } => edge,
                other => panic!("unexpected {other:?}"),
            }
        });
    }

    /// Folding the largest bar as an outlier (with possibly loose bounds)
    /// must leave the distribution unchanged.
    #[test]
    fn outlier_folding_preserves_arbitrary_distributions(
        ps in weights_strategy(10),
        pd_raw in prop::collection::vec(0.1f64..1.0, 10),
        outlier_height in 1.5f64..8.0,
        width_slack in 1.0f64..3.0,
        height_slack in 1.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let n = ps.len();
        let mut pd: Vec<f64> = (0..n).map(|i| pd_raw[i % pd_raw.len()]).collect();
        // Make edge 0 the towering outlier.
        pd[0] = outlier_height;
        prop_assume!(ps[0] > 0.0);

        let env = Envelope {
            q: 1.0, // bounds the non-outlier bars (pd_raw < 1)
            lower: 0.0,
            static_total: ps.iter().sum(),
            outliers: vec![OutlierSlot {
                target: 0,
                width_bound: ps[0] * width_slack,
                height_bound: outlier_height * height_slack,
            }],
        };
        let cdf = CdfTable::new(&ps).unwrap();
        let products: Vec<f64> = ps.iter().zip(&pd).map(|(a, b)| a * b).collect();
        check_sampler(&products, 30_000, seed, |rng| {
            match sample_local(
                &env, rng, 100_000,
                |r| cdf.sample(r),
                |e| ps[e],
                |e| pd[e],
                |slot| if slot.target == 0 { Some(0) } else { None },
            ) {
                LocalOutcome::Accepted { edge, .. } => edge,
                other => panic!("unexpected {other:?}"),
            }
        });
    }

    /// Lemire bounded sampling is uniform for arbitrary bounds.
    #[test]
    fn bounded_rng_uniform(bound in 1u64..64, seed in 0u64..10_000) {
        let mut rng = DeterministicRng::new(seed);
        let draws = 20_000usize;
        let mut counts = vec![0u64; bound as usize];
        for _ in 0..draws {
            counts[rng.next_bounded(bound) as usize] += 1;
        }
        let probs = vec![1.0 / bound as f64; bound as usize];
        let (stat, dof) = chi_squared(&counts, &probs);
        prop_assert!(stat <= chi_squared_critical(dof) * 1.5 + 5.0);
    }

    /// Alias and ITS never return an index with zero weight.
    #[test]
    fn zero_weight_never_sampled(
        mut w in weights_strategy(16),
        zero_at in 0usize..16,
        seed in 0u64..1000,
    ) {
        let idx = zero_at % w.len();
        w[idx] = 0.0;
        prop_assume!(w.iter().sum::<f64>() > 0.0);
        let alias = AliasTable::new(&w).unwrap();
        let cdf = CdfTable::new(&w).unwrap();
        let mut rng = DeterministicRng::new(seed);
        for _ in 0..2000 {
            prop_assert_ne!(alias.sample(&mut rng), idx);
            prop_assert_ne!(cdf.sample(&mut rng), idx);
        }
    }

    /// The radix table matches the naive weighted-choice reference
    /// distribution (normalized weights) for arbitrary weight vectors.
    #[test]
    fn radix_matches_arbitrary_distributions(w in weights_strategy(24), seed in 0u64..1000) {
        let table = RadixTable::new(&w).unwrap();
        check_sampler(&w, 30_000, seed, |rng| table.sample(rng));
    }

    /// The radix table never returns a zero-weight index — including a
    /// weight zeroed *after* build via `reweight`.
    #[test]
    fn radix_zero_weight_never_sampled(
        mut w in weights_strategy(16),
        zero_at in 0usize..16,
        seed in 0u64..1000,
    ) {
        let idx = zero_at % w.len();
        let mut table = RadixTable::new(&w).unwrap();
        table.reweight(idx, 0.0);
        w[idx] = 0.0;
        prop_assume!(w.iter().sum::<f64>() > 0.0);
        let mut rng = DeterministicRng::new(seed);
        for _ in 0..2000 {
            prop_assert_ne!(table.sample(&mut rng), idx);
        }
    }

    /// The maintenance canonical-form property that buys dyn's
    /// byte-identity: a table patched through an arbitrary reweight
    /// sequence (including zeros, including through zero-total
    /// intermediate states) produces the same fixed-seed draw sequence
    /// as a table rebuilt from the final weights — and identical
    /// envelope bookkeeping (`total_weight`, `max_slab`), bitwise.
    #[test]
    fn radix_patched_equals_rebuilt_draw_sequence(
        w in weights_strategy(20),
        edits in prop::collection::vec((0usize..20, 0.0f64..100.0), 1..32),
        seed in 0u64..1000,
    ) {
        let mut patched = RadixTable::new(&w).unwrap();
        let mut finals = w.clone();
        for &(i, new_w) in &edits {
            let idx = i % finals.len();
            patched.reweight(idx, new_w);
            finals[idx] = new_w;
        }
        // `new` refuses zero-total weights; a patched table can reach
        // zero mass (callers gate on `total_weight`), so only compare
        // when a rebuilt reference exists.
        prop_assume!(finals.iter().sum::<f64>() > 0.0);
        let rebuilt = RadixTable::new(&finals).unwrap();
        prop_assert_eq!(
            patched.total_weight().to_bits(),
            rebuilt.total_weight().to_bits()
        );
        prop_assert_eq!(patched.max_slab().to_bits(), rebuilt.max_slab().to_bits());
        let mut rng_a = DeterministicRng::new(seed);
        let mut rng_b = DeterministicRng::new(seed);
        for draw in 0..2000 {
            prop_assert_eq!(
                patched.sample(&mut rng_a),
                rebuilt.sample(&mut rng_b),
                "draw {} diverged", draw
            );
        }
    }

    /// Expected-trials accounting: empirical trials per accept must match
    /// Eq. 3 within noise.
    #[test]
    fn trial_count_matches_eq3(
        ps in weights_strategy(8),
        seed in 0u64..1000,
    ) {
        let n = ps.len();
        let pd: Vec<f64> = (0..n).map(|i| 0.25 + 0.75 * ((i % 3) as f64) / 2.0).collect();
        let mass: f64 = ps.iter().zip(&pd).map(|(a, b)| a * b).sum();
        prop_assume!(mass > 1e-9);
        let env = Envelope::simple(1.0, ps.iter().sum());
        let expect = env.expected_trials(mass);

        let cdf = CdfTable::new(&ps).unwrap();
        let mut rng = DeterministicRng::new(seed);
        let mut trials_total = 0u64;
        let accepts = 3000u64;
        for _ in 0..accepts {
            match sample_local(&env, &mut rng, 1_000_000,
                |r| cdf.sample(r), |e| ps[e], |e| pd[e], |_| None)
            {
                LocalOutcome::Accepted { trials, .. } => trials_total += trials as u64,
                other => panic!("unexpected {other:?}"),
            }
        }
        let measured = trials_total as f64 / accepts as f64;
        prop_assert!(
            (measured - expect).abs() / expect < 0.15,
            "measured {measured:.3} vs Eq.3 {expect:.3}"
        );
    }
}
