//! Statistical helpers shared by this repository's correctness tests.
//!
//! The headline property of KnightKing is that rejection sampling is
//! *exact*: the engine's empirical transition frequencies must match the
//! brute-force normalized `Ps·Pd` distribution. The integration tests
//! verify this with Pearson's chi-squared statistic, using the helpers
//! here.

/// Pearson's chi-squared statistic of observed counts against expected
/// probabilities.
///
/// Buckets with zero expected probability are asserted to have zero
/// observations (a single stray observation in an impossible bucket is an
/// exactness violation, not noise) and are excluded from the statistic.
///
/// Returns `(statistic, degrees_of_freedom)`.
///
/// # Panics
///
/// Panics if the slices differ in length, if an expected probability is
/// negative, or if an impossible bucket has observations.
pub fn chi_squared(observed: &[u64], expected_probs: &[f64]) -> (f64, usize) {
    assert_eq!(
        observed.len(),
        expected_probs.len(),
        "observed and expected must align"
    );
    let n: u64 = observed.iter().sum();
    let mut stat = 0.0f64;
    let mut dof = 0usize;
    for (i, (&o, &p)) in observed.iter().zip(expected_probs).enumerate() {
        assert!(p >= 0.0, "expected probability at {i} is negative");
        if p == 0.0 {
            assert_eq!(o, 0, "bucket {i} is impossible but was observed {o} times");
            continue;
        }
        let e = p * n as f64;
        stat += (o as f64 - e).powi(2) / e;
        dof += 1;
    }
    (stat, dof.saturating_sub(1))
}

/// Conservative chi-squared critical value at significance ≈ 0.001.
///
/// Uses the Wilson–Hilferty approximation
/// `χ²_crit ≈ k·(1 − 2/(9k) + z·√(2/(9k)))³` with `z = 3.09`
/// (the 99.9th percentile of the standard normal). Accurate to within a
/// few percent for `k ≥ 3`, which is ample for a pass/fail test bound.
pub fn chi_squared_critical(dof: usize) -> f64 {
    if dof == 0 {
        return 0.0;
    }
    let k = dof as f64;
    let z = 3.09;
    let term = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * term.powi(3)
}

/// Asserts that observed counts are consistent with expected probabilities
/// at significance ≈ 0.001.
///
/// # Panics
///
/// Panics with a diagnostic message when the chi-squared statistic exceeds
/// the critical value.
pub fn assert_distribution_matches(observed: &[u64], expected_probs: &[f64], context: &str) {
    let (stat, dof) = chi_squared(observed, expected_probs);
    let crit = chi_squared_critical(dof);
    assert!(
        stat <= crit,
        "{context}: chi-squared {stat:.2} exceeds critical {crit:.2} (dof {dof})"
    );
}

/// Two-sample chi-squared homogeneity statistic.
///
/// Tests whether two observed count vectors were drawn from the same
/// (unknown) distribution — the right tool for comparing two *empirical*
/// samplers, where treating one side as exact expectations would double
/// the variance. Buckets empty on both sides are skipped.
///
/// Returns `(statistic, degrees_of_freedom)`.
///
/// # Panics
///
/// Panics if the slices differ in length or either sums to zero.
pub fn chi_squared_two_sample(a: &[u64], b: &[u64]) -> (f64, usize) {
    assert_eq!(a.len(), b.len(), "samples must align");
    let na: u64 = a.iter().sum();
    let nb: u64 = b.iter().sum();
    assert!(na > 0 && nb > 0, "both samples must be non-empty");
    let (na, nb) = (na as f64, nb as f64);
    let mut stat = 0.0f64;
    let mut dof = 0usize;
    for (&oa, &ob) in a.iter().zip(b) {
        let row = (oa + ob) as f64;
        if row == 0.0 {
            continue;
        }
        let ea = row * na / (na + nb);
        let eb = row * nb / (na + nb);
        stat += (oa as f64 - ea).powi(2) / ea + (ob as f64 - eb).powi(2) / eb;
        dof += 1;
    }
    (stat, dof.saturating_sub(1))
}

/// Asserts two count vectors are consistent with a common distribution at
/// significance ≈ 0.001.
///
/// # Panics
///
/// Panics with a diagnostic message when the statistic exceeds the
/// critical value.
pub fn assert_same_distribution(a: &[u64], b: &[u64], context: &str) {
    let (stat, dof) = chi_squared_two_sample(a, b);
    let crit = chi_squared_critical(dof);
    assert!(
        stat <= crit,
        "{context}: two-sample chi-squared {stat:.2} exceeds critical {crit:.2} (dof {dof})"
    );
}

/// Mean and (population) variance of a sequence — used for reporting degree
/// distributions exactly as Table 2 of the paper does.
pub fn mean_variance(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut n = 0u64;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for x in values {
        n += 1;
        let delta = x - mean;
        mean += delta / n as f64;
        m2 += delta * (x - mean);
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (mean, m2 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    #[test]
    fn chi_squared_zero_for_perfect_fit() {
        let (stat, dof) = chi_squared(&[25, 25, 25, 25], &[0.25; 4]);
        assert_eq!(stat, 0.0);
        assert_eq!(dof, 3);
    }

    #[test]
    fn chi_squared_skips_impossible_buckets() {
        let (stat, dof) = chi_squared(&[50, 0, 50], &[0.5, 0.0, 0.5]);
        assert_eq!(stat, 0.0);
        assert_eq!(dof, 1);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn chi_squared_rejects_impossible_observation() {
        chi_squared(&[50, 1, 49], &[0.5, 0.0, 0.5]);
    }

    #[test]
    fn critical_values_reasonable() {
        // Known χ² 0.999 quantiles: dof 1 ≈ 10.83, dof 10 ≈ 29.59,
        // dof 100 ≈ 149.45. Wilson–Hilferty should be within ~10%.
        assert!((chi_squared_critical(10) - 29.59).abs() < 2.0);
        assert!((chi_squared_critical(100) - 149.45).abs() < 5.0);
        assert_eq!(chi_squared_critical(0), 0.0);
    }

    #[test]
    fn good_sampler_passes_bad_sampler_fails() {
        let probs = [0.1, 0.2, 0.3, 0.4];
        let cdf = crate::CdfTable::new(&probs).unwrap();
        let mut rng = DeterministicRng::new(77);
        let mut counts = [0u64; 4];
        for _ in 0..100_000 {
            counts[cdf.sample(&mut rng)] += 1;
        }
        assert_distribution_matches(&counts, &probs, "cdf sampler");

        // A deliberately wrong expectation must fail.
        let wrong = [0.4, 0.3, 0.2, 0.1];
        let (stat, dof) = chi_squared(&counts, &wrong);
        assert!(stat > chi_squared_critical(dof));
    }

    #[test]
    fn two_sample_zero_for_identical() {
        let (stat, dof) = chi_squared_two_sample(&[10, 20, 30], &[10, 20, 30]);
        assert_eq!(stat, 0.0);
        assert_eq!(dof, 2);
    }

    #[test]
    fn two_sample_skips_empty_rows() {
        let (_, dof) = chi_squared_two_sample(&[10, 0, 30], &[12, 0, 28]);
        assert_eq!(dof, 1);
    }

    #[test]
    fn two_sample_accepts_same_sampler_rejects_different() {
        let probs_a = [0.1, 0.2, 0.3, 0.4];
        let probs_b = [0.4, 0.3, 0.2, 0.1];
        let cdf_a = crate::CdfTable::new(&probs_a).unwrap();
        let cdf_b = crate::CdfTable::new(&probs_b).unwrap();
        let mut rng = DeterministicRng::new(91);
        let draw = |cdf: &crate::CdfTable, rng: &mut DeterministicRng| {
            let mut c = [0u64; 4];
            for _ in 0..50_000 {
                c[cdf.sample(rng)] += 1;
            }
            c
        };
        let a1 = draw(&cdf_a, &mut rng);
        let a2 = draw(&cdf_a, &mut rng);
        let b = draw(&cdf_b, &mut rng);
        assert_same_distribution(&a1, &a2, "same sampler");
        let (stat, dof) = chi_squared_two_sample(&a1, &b);
        assert!(stat > chi_squared_critical(dof) * 10.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn two_sample_rejects_empty_side() {
        chi_squared_two_sample(&[0, 0], &[1, 2]);
    }

    #[test]
    fn mean_variance_matches_closed_form() {
        let (m, v) = mean_variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter());
        assert!((m - 5.0).abs() < 1e-12);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_empty_and_single() {
        assert_eq!(mean_variance(std::iter::empty()), (0.0, 0.0));
        let (m, v) = mean_variance(std::iter::once(3.0));
        assert_eq!(m, 3.0);
        assert_eq!(v, 0.0);
    }
}
