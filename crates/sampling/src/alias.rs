//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! The alias table is KnightKing's static sampler of choice (§3 of the
//! paper): building takes O(n) time and space, and each sample costs O(1) —
//! one bounded integer draw plus one coin flip. The engine builds one table
//! per vertex whose static component `Ps` is non-uniform, and reuses it
//! across all sampling trials of all walkers.

use crate::{rng::DeterministicRng, validate_weights, SamplingError};

/// A pre-built alias table over `n` outcomes.
///
/// Each of the `n` buckets holds (a piece of) up to two outcomes: the bucket
/// index itself with probability `prob[i]`, and `alias[i]` with probability
/// `1 - prob[i]`. Sampling draws a uniform bucket, then flips the bucket's
/// coin — the classic Vose construction.
///
/// # Examples
///
/// ```
/// use knightking_sampling::{AliasTable, DeterministicRng};
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = DeterministicRng::new(1);
/// let mut counts = [0u32; 2];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// // Outcome 1 carries 3/4 of the mass.
/// assert!(counts[1] > counts[0] * 2);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of staying on the bucket's own index, scaled to `[0, 1]`.
    prob: Vec<f64>,
    /// The other outcome sharing the bucket.
    alias: Vec<u32>,
    /// Sum of the (unnormalized) input weights.
    total_weight: f64,
}

impl AliasTable {
    /// Builds an alias table from unnormalized, non-negative weights.
    ///
    /// Zero-weight outcomes are representable and will never be sampled.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError`] if `weights` is empty, contains a
    /// negative/NaN/infinite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        let total = validate_weights(weights)?;
        let n = weights.len();
        assert!(
            n <= u32::MAX as usize,
            "alias table limited to 2^32 outcomes"
        );

        // Vose's algorithm: scale weights so the average bucket is 1, then
        // pair each under-full bucket with an over-full donor.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers in either list are numerically-full buckets.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Ok(AliasTable {
            prob,
            alias,
            total_weight: total,
        })
    }

    /// Hints that this table is about to be sampled.
    ///
    /// Warms the head of both bucket arrays — `sample` draws a uniform
    /// bucket, so only the first lines can be predicted, but on skewed
    /// graphs most tables are small enough that the head *is* the table.
    /// Purely a performance hint; see [`crate::prefetch`].
    #[inline]
    pub fn prefetch(&self) {
        crate::prefetch::slice(&self.prob);
        crate::prefetch::slice(&self.alias);
    }

    /// Draws one outcome index in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut DeterministicRng) -> usize {
        let bucket = rng.next_index(self.prob.len());
        if rng.next_f64() < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no outcomes (never constructible).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the unnormalized weights the table was built from.
    ///
    /// The rejection sampler needs this to size the envelope rectangle
    /// (`Q(v) · ΣPs`) relative to outlier appendix areas.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Approximate heap footprint in bytes, for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.prob.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights).unwrap();
        let mut rng = DeterministicRng::new(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 80_000, 11);
        for &f in &freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let weights = [1.0, 2.0, 4.0, 8.0, 16.0];
        let total: f64 = weights.iter().sum();
        let freqs = empirical(&weights, 200_000, 12);
        for (f, w) in freqs.iter().zip(weights.iter()) {
            let expect = w / total;
            assert!((f - expect).abs() < 0.01, "freq {f} expected {expect}");
        }
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let freqs = empirical(&[1.0, 0.0, 1.0], 50_000, 13);
        assert_eq!(freqs[1], 0.0);
    }

    #[test]
    fn single_outcome_always_sampled() {
        let freqs = empirical(&[3.5], 1000, 14);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    fn extreme_skew_still_exact() {
        // One outcome with 10^9 times the weight of its sibling.
        let weights = [1e9, 1.0];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = DeterministicRng::new(15);
        let mut rare = 0usize;
        let draws = 1_000_000;
        for _ in 0..draws {
            if table.sample(&mut rng) == 1 {
                rare += 1;
            }
        }
        // Expected ~1e-9 * 1e6 = 0.001 hits; must be essentially never.
        assert!(rare <= 2, "rare outcome sampled {rare} times");
    }

    #[test]
    fn build_errors_propagate() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0]).is_err());
        assert!(AliasTable::new(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn total_weight_preserved() {
        let table = AliasTable::new(&[0.25, 0.5, 0.75]).unwrap();
        assert!((table.total_weight() - 1.5).abs() < 1e-12);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        assert!(table.heap_bytes() > 0);
    }
}
