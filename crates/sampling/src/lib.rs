#![warn(missing_docs)]

//! Sampling substrate for the KnightKing random walk engine.
//!
//! This crate implements the three sampling building blocks described in the
//! KnightKing paper (SOSP '19):
//!
//! * [`rng`] — deterministic, splittable pseudo-random number generation.
//!   Every walker owns its own stream derived from `(run_seed, walker_id)`,
//!   which makes whole-run results independent of thread scheduling and
//!   node counts.
//! * [`alias`] and [`its`] — the two classic static samplers (§3 of the
//!   paper): Walker's alias method with O(n) build / O(1) sample, and
//!   Inverse Transform Sampling with O(n) build / O(log n) sample.
//! * [`radix`] — the dynamic-graph sampler: BINGO-style radix (power-of-two
//!   slab) factorization over a canonical segment tree, O(log n) sample
//!   *and* O(log n) reweight, bitwise identical whether maintained
//!   incrementally or rebuilt from scratch.
//! * [`rejection`] — the rejection-sampling state machine at the heart of
//!   KnightKing (§4): envelope `Q(v)`, optional lower bound `L(v)`
//!   pre-acceptance, and outlier "appendix" folding.
//!
//! The [`stats`] module provides the chi-squared helpers used by this
//! repository's statistical tests, and [`prefetch`] the dependency-free
//! software-prefetch hints the stage-interleaved engine issues while one
//! walker samples and the next walker's tables are still in DRAM.

pub mod alias;
pub mod its;
pub mod prefetch;
pub mod radix;
pub mod rejection;
pub mod rng;
pub mod stats;

pub use alias::AliasTable;
pub use its::CdfTable;
pub use radix::RadixTable;
pub use rejection::{Envelope, OutlierSlot, Trial};
pub use rng::{DeterministicRng, SplitMix64};

/// Errors produced while constructing sampling structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// The weight list handed to a sampler builder was empty.
    EmptyWeights,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero, leaving nothing to sample.
    ZeroTotalWeight,
}

impl std::fmt::Display for SamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingError::EmptyWeights => write!(f, "cannot sample from an empty weight list"),
            SamplingError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative, NaN, or infinite")
            }
            SamplingError::ZeroTotalWeight => {
                write!(f, "all weights are zero; nothing to sample")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Validates a weight slice for sampler construction.
///
/// Returns the total weight on success.
pub(crate) fn validate_weights(weights: &[f64]) -> Result<f64, SamplingError> {
    if weights.is_empty() {
        return Err(SamplingError::EmptyWeights);
    }
    let mut total = 0.0f64;
    for (index, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(SamplingError::InvalidWeight { index });
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(SamplingError::ZeroTotalWeight);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(validate_weights(&[]), Err(SamplingError::EmptyWeights));
    }

    #[test]
    fn validate_rejects_negative() {
        assert_eq!(
            validate_weights(&[1.0, -0.5]),
            Err(SamplingError::InvalidWeight { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_nan_and_inf() {
        assert_eq!(
            validate_weights(&[f64::NAN]),
            Err(SamplingError::InvalidWeight { index: 0 })
        );
        assert_eq!(
            validate_weights(&[f64::INFINITY, 1.0]),
            Err(SamplingError::InvalidWeight { index: 0 })
        );
    }

    #[test]
    fn validate_rejects_all_zero() {
        assert_eq!(
            validate_weights(&[0.0, 0.0]),
            Err(SamplingError::ZeroTotalWeight)
        );
    }

    #[test]
    fn validate_accepts_and_totals() {
        assert_eq!(validate_weights(&[1.0, 2.0, 3.0]), Ok(6.0));
    }

    #[test]
    fn error_display_is_readable() {
        let s = SamplingError::InvalidWeight { index: 7 }.to_string();
        assert!(s.contains("index 7"));
    }
}
