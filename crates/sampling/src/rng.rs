//! Deterministic pseudo-random number generation for reproducible walks.
//!
//! KnightKing's correctness claims are about *exact* sampling, so this crate
//! avoids shortcuts that introduce sampling bias:
//!
//! * Bounded integers use Lemire's multiply-and-reject method, which is
//!   exactly uniform (not "uniform up to 2⁻⁶⁴").
//! * Floats in `[0, 1)` use the top 53 bits of a 64-bit output.
//!
//! The generator is `xoshiro256++`, seeded through `SplitMix64` as its
//! authors recommend. Each walker derives an independent stream from the
//! pair `(run_seed, walker_id)`, so a walk's trajectory depends only on its
//! seed — never on thread scheduling, partitioning, or node count. The
//! distributed-equivalence integration tests rely on this property.

/// A `SplitMix64` generator.
///
/// Used both as a stand-alone mixer for seeding and as a cheap way of
/// deriving independent sub-streams from `(seed, stream_id)` pairs.
///
/// # Examples
///
/// ```
/// use knightking_sampling::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The deterministic generator used by walkers: `xoshiro256++`.
///
/// The 256-bit state gives a period of 2²⁵⁶ − 1 and excellent statistical
/// quality; per-walker streams derived via [`DeterministicRng::for_stream`]
/// are independent for all practical purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicRng {
    s: [u64; 4],
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The 256-bit internal state is expanded from the seed with
    /// `SplitMix64`, per the xoshiro authors' recommendation.
    pub fn new(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = mixer.next_u64();
        }
        // An all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but keep the guard for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DeterministicRng { s }
    }

    /// Derives an independent stream for `(seed, stream_id)`.
    ///
    /// Walker `w` of a run seeded with `seed` uses
    /// `DeterministicRng::for_stream(seed, w)`. Mixing happens through two
    /// rounds of `SplitMix64`, so streams for consecutive ids are unrelated.
    ///
    /// # Examples
    ///
    /// ```
    /// use knightking_sampling::DeterministicRng;
    ///
    /// let mut w0 = DeterministicRng::for_stream(7, 0);
    /// let mut w1 = DeterministicRng::for_stream(7, 1);
    /// assert_ne!(w0.next_u64(), w1.next_u64());
    /// ```
    pub fn for_stream(seed: u64, stream_id: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        let base = mixer.next_u64();
        let mut stream_mixer =
            SplitMix64::new(base ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407));
        DeterministicRng::new(stream_mixer.next_u64())
    }

    /// Exposes the raw 256-bit state, for serializing an in-flight
    /// generator (e.g. a walker migrating between OS processes).
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`state`].
    ///
    /// Only meaningful for states obtained from `state()`: an all-zero
    /// state is a fixed point of xoshiro and is rejected in debug builds.
    ///
    /// [`state`]: DeterministicRng::state
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        debug_assert!(s != [0, 0, 0, 0], "all-zero xoshiro state");
        DeterministicRng { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the top 53 bits of the next output, so every representable
    /// multiple of 2⁻⁵³ in `[0, 1)` is equally likely.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in `[0, bound)`.
    ///
    /// `bound` must be positive and finite.
    #[inline]
    pub fn next_f64_below(&mut self, bound: f64) -> f64 {
        debug_assert!(bound.is_finite() && bound > 0.0);
        self.next_f64() * bound
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Implements Lemire's multiply-and-reject algorithm: exactly uniform
    /// for every `bound`, with an expected number of 64-bit draws barely
    /// above one.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            // Threshold = 2^64 mod bound, computed without 128-bit division.
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_bounded(len as u64) as usize
    }

    /// Flips a coin that comes up `true` with probability `p`.
    ///
    /// Values of `p` at or below 0 never fire; at or above 1 always fire.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = DeterministicRng::new(99);
        let mut b = DeterministicRng::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut streams: Vec<u64> = (0..64)
            .map(|i| DeterministicRng::for_stream(5, i).next_u64())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 64, "stream outputs must not collide");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_covers_all_values() {
        let mut rng = DeterministicRng::new(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.next_bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = DeterministicRng::new(21);
        let bound = 10u64;
        let n = 100_000usize;
        let mut counts = vec![0usize; bound as usize];
        for _ in 0..n {
            counts[rng.next_bounded(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        DeterministicRng::new(1).next_bounded(0);
    }

    #[test]
    fn bounded_one_is_zero() {
        let mut rng = DeterministicRng::new(2);
        for _ in 0..100 {
            assert_eq!(rng.next_bounded(1), 0);
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = DeterministicRng::new(123);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = DeterministicRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DeterministicRng::new(4);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn chance_rate_close_to_p() {
        let mut rng = DeterministicRng::new(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
