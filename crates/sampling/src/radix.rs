//! Radix-factorized sampler with O(log n) point reweights.
//!
//! The alias method samples in O(1) but any weight change invalidates the
//! whole table: one reweight on a degree-1M hub costs an O(degree) rebuild.
//! BINGO-style radix factorization groups each weight under its
//! power-of-two ceiling ("slab"): sampling draws proportionally to the
//! slabs, then accepts the drawn outcome with probability
//! `weight / slab ∈ (1/2, 1]`, so a draw needs fewer than 2 trials in
//! expectation and remains *exact* — outcome `i` is returned with
//! probability `slab_i/Σslab · w_i/slab_i = w_i/Σslab`, identical for all
//! outcomes up to the common normalization.
//!
//! The slab masses live in a complete binary segment tree, so a reweight
//! is an O(log n) root-path refresh instead of an O(n) rebuild. Crucially
//! the tree is *canonical*: every internal node is exactly
//! `left + right` of its children, recomputed identically by a fresh
//! bottom-up build and by a point update. An incrementally maintained
//! table is therefore bitwise identical to one rebuilt from scratch over
//! the same weights — the property the dynamic-graph layer's byte-identity
//! invariant rests on. (A bucket directory with swap-remove deletion, the
//! textbook radix layout, would make member order history-dependent and
//! break exactly that invariant.)

use crate::{rng::DeterministicRng, validate_weights, SamplingError};

/// Largest weight a [`RadixTable`] accepts: its slab, `2^1023`, must stay
/// finite. Graph weights are `f32`-sourced (≤ 2^128) in practice.
const MAX_WEIGHT: f64 = 8.98846567431158e307; // 2^1023

/// Smallest power-of-two upper bound of `w`, or `0.0` for `w == 0`.
///
/// Exact bit manipulation — `log2().ceil()` rounds unreliably near exact
/// powers of two. Subnormal weights get the smallest *normal* bound
/// (`2^-1022`), which is still a valid envelope; only the ≤2-trial bound
/// degrades there, and graph weights never reach the subnormal range.
fn slab_of(w: f64) -> f64 {
    debug_assert!(w.is_finite() && (0.0..=MAX_WEIGHT).contains(&w));
    if w == 0.0 {
        return 0.0;
    }
    let bits = w.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    let mantissa = bits & ((1u64 << 52) - 1);
    if exp == 0 {
        return f64::MIN_POSITIVE;
    }
    if mantissa == 0 {
        w // already an exact power of two
    } else {
        f64::from_bits((exp + 1) << 52)
    }
}

/// A radix-factorized sampler over `n` outcomes supporting O(log n)
/// reweights.
///
/// # Examples
///
/// ```
/// use knightking_sampling::{RadixTable, DeterministicRng};
///
/// let mut table = RadixTable::new(&[1.0, 3.0]).unwrap();
/// table.reweight(0, 9.0); // O(log n), no rebuild
/// let mut rng = DeterministicRng::new(1);
/// let mut counts = [0u32; 2];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// // Outcome 0 now carries 3/4 of the mass.
/// assert!(counts[0] > counts[1] * 2);
/// ```
#[derive(Debug, Clone)]
pub struct RadixTable {
    /// Segment tree of slab masses: `slab_sum[1]` is the root, leaves at
    /// `[cap, cap + n)`, padding leaves zero. Drives the sampling descent.
    slab_sum: Vec<f64>,
    /// Same shape, `max` combiner over slabs: `slab_max[1]` bounds every
    /// outcome's weight from above (the mixed-mode `max_ps` substitute).
    slab_max: Vec<f64>,
    /// Same shape, sum over the *true* weights: `w_sum[1]` is the
    /// canonical total, and leaf `w_sum[cap + i]` the true weight used in
    /// the acceptance test.
    w_sum: Vec<f64>,
    /// Leaf base: `n.next_power_of_two()`.
    cap: usize,
    /// Number of real outcomes.
    n: usize,
}

/// Rebuilds every internal node bottom-up as `combine(left, right)`.
///
/// Point updates recompute root paths with the same formula, so the two
/// construction orders agree bitwise on every node.
fn build_parents(tree: &mut [f64], cap: usize, combine: fn(f64, f64) -> f64) {
    for i in (1..cap).rev() {
        tree[i] = combine(tree[2 * i], tree[2 * i + 1]);
    }
}

fn refresh_path(tree: &mut [f64], mut node: usize, combine: fn(f64, f64) -> f64) {
    node /= 2;
    while node >= 1 {
        tree[node] = combine(tree[2 * node], tree[2 * node + 1]);
        node /= 2;
    }
}

impl RadixTable {
    /// Builds a radix table from unnormalized, non-negative weights.
    ///
    /// Zero-weight outcomes are representable and will never be sampled.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError`] if `weights` is empty, contains a
    /// negative/NaN/infinite value or one above 2^1023 (whose slab would
    /// overflow), or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        validate_weights(weights)?;
        if let Some(index) = weights.iter().position(|&w| w > MAX_WEIGHT) {
            return Err(SamplingError::InvalidWeight { index });
        }
        let n = weights.len();
        let cap = n.next_power_of_two();
        let mut slab_sum = vec![0.0f64; 2 * cap];
        let mut slab_max = vec![0.0f64; 2 * cap];
        let mut w_sum = vec![0.0f64; 2 * cap];
        for (i, &w) in weights.iter().enumerate() {
            let slab = slab_of(w);
            slab_sum[cap + i] = slab;
            slab_max[cap + i] = slab;
            w_sum[cap + i] = w;
        }
        build_parents(&mut slab_sum, cap, |a, b| a + b);
        build_parents(&mut slab_max, cap, f64::max);
        build_parents(&mut w_sum, cap, |a, b| a + b);
        Ok(RadixTable {
            slab_sum,
            slab_max,
            w_sum,
            cap,
            n,
        })
    }

    /// Replaces the weight of outcome `idx` in O(log n).
    ///
    /// The result is bitwise identical to `RadixTable::new` over the
    /// updated weight list. Reweighting to zero is allowed (the outcome is
    /// never sampled again); if *every* weight reaches zero the table has
    /// no mass left and [`sample`](Self::sample) panics — callers gate on
    /// [`total_weight`](Self::total_weight) first.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `w` is negative, NaN, infinite,
    /// or above 2^1023.
    pub fn reweight(&mut self, idx: usize, w: f64) {
        assert!(idx < self.n, "reweight index {idx} out of range {}", self.n);
        assert!(
            w.is_finite() && (0.0..=MAX_WEIGHT).contains(&w),
            "invalid reweight value {w}"
        );
        let leaf = self.cap + idx;
        let slab = slab_of(w);
        self.slab_sum[leaf] = slab;
        self.slab_max[leaf] = slab;
        self.w_sum[leaf] = w;
        refresh_path(&mut self.slab_sum, leaf, |a, b| a + b);
        refresh_path(&mut self.slab_max, leaf, f64::max);
        refresh_path(&mut self.w_sum, leaf, |a, b| a + b);
    }

    /// Draws one outcome index: a slab-tree descent plus one rejection
    /// test per trial, fewer than 2 trials expected.
    ///
    /// # Panics
    ///
    /// Panics if the table's remaining mass is zero (every weight has been
    /// reweighted to zero); gate on [`total_weight`](Self::total_weight).
    #[inline]
    pub fn sample(&self, rng: &mut DeterministicRng) -> usize {
        let root = self.slab_sum[1];
        assert!(root > 0.0, "sampling from a zero-mass radix table");
        loop {
            let mut u = rng.next_f64() * root;
            let mut node = 1usize;
            while node < self.cap {
                let left = self.slab_sum[2 * node];
                if u < left {
                    node *= 2;
                } else {
                    u -= left;
                    node = 2 * node + 1;
                }
            }
            // `slab` is a power of two, so the multiplication is exact and
            // the test accepts with probability exactly `w / slab`. A
            // floating-point boundary descent can land on a zero-slab
            // (or padding) leaf; that trial simply rejects.
            let slab = self.slab_sum[node];
            if node - self.cap < self.n && rng.next_f64() * slab < self.w_sum[node] {
                return node - self.cap;
            }
        }
    }

    /// Hints that this table is about to be sampled.
    ///
    /// Warms the top of the slab tree — the first levels every descent
    /// must traverse. Purely a performance hint; see [`crate::prefetch`].
    #[inline]
    pub fn prefetch(&self) {
        crate::prefetch::slice(&self.slab_sum);
    }

    /// Hints the leaf region (slabs + true weights), where a descent
    /// terminates and the acceptance test reads. The deep-stage companion
    /// of [`prefetch`](Self::prefetch) for the interleaved step engine.
    #[inline]
    pub fn prefetch_leaves(&self) {
        crate::prefetch::span(self.slab_sum[self.cap..].as_ptr(), self.n);
        crate::prefetch::span(self.w_sum[self.cap..].as_ptr(), self.n);
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the table has no outcomes (never constructible).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Canonical sum of the true weights (the segment-tree root, identical
    /// for incrementally maintained and freshly built tables).
    pub fn total_weight(&self) -> f64 {
        self.w_sum[1]
    }

    /// Largest slab: a power-of-two upper bound on every outcome's weight,
    /// within 2× of the true maximum. Canonical under reweights, unlike a
    /// running max — the mixed-mode envelope's `max_ps` substitute.
    pub fn max_slab(&self) -> f64 {
        self.slab_max[1]
    }

    /// Approximate heap footprint in bytes, for memory accounting.
    ///
    /// Three `2·cap` trees of `f64` — roughly 4× an alias table's 12 bytes
    /// per outcome; the price of O(log n) maintenance.
    pub fn heap_bytes(&self) -> usize {
        3 * self.slab_sum.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = RadixTable::new(weights).unwrap();
        let mut rng = DeterministicRng::new(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    fn assert_bitwise_eq(a: &RadixTable, b: &RadixTable) {
        assert_eq!(a.cap, b.cap);
        assert_eq!(a.n, b.n);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.slab_sum), bits(&b.slab_sum), "slab trees differ");
        assert_eq!(bits(&a.slab_max), bits(&b.slab_max), "max trees differ");
        assert_eq!(bits(&a.w_sum), bits(&b.w_sum), "weight trees differ");
    }

    #[test]
    fn slab_is_the_pow2_ceiling() {
        assert_eq!(slab_of(0.0), 0.0);
        assert_eq!(slab_of(1.0), 1.0);
        assert_eq!(slab_of(0.25), 0.25);
        assert_eq!(slab_of(1.5), 2.0);
        assert_eq!(slab_of(3.0), 4.0);
        assert_eq!(slab_of(4.0), 4.0);
        assert_eq!(slab_of(4.000001), 8.0);
        let tiny = slab_of(1e-300);
        assert!((1e-300..2e-300).contains(&tiny) && tiny.to_bits().trailing_zeros() >= 52);
        assert_eq!(slab_of(f64::MIN_POSITIVE / 4.0), f64::MIN_POSITIVE);
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 80_000, 11);
        for &f in &freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let weights = [1.0, 2.0, 4.0, 8.0, 16.0];
        let total: f64 = weights.iter().sum();
        let freqs = empirical(&weights, 200_000, 12);
        for (f, w) in freqs.iter().zip(weights.iter()) {
            let expect = w / total;
            assert!((f - expect).abs() < 0.01, "freq {f} expected {expect}");
        }
    }

    #[test]
    fn non_pow2_weights_match_distribution() {
        // Worst-case acceptance (just above a power of two) and a
        // non-power-of-two outcome count, so padding leaves exist.
        let weights = [1.01, 2.01, 0.7, 5.3, 4.1, 0.0, 2.2];
        let total: f64 = weights.iter().sum();
        let freqs = empirical(&weights, 300_000, 13);
        for (f, w) in freqs.iter().zip(weights.iter()) {
            let expect = w / total;
            assert!((f - expect).abs() < 0.01, "freq {f} expected {expect}");
        }
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let freqs = empirical(&[1.0, 0.0, 1.0], 50_000, 14);
        assert_eq!(freqs[1], 0.0);
    }

    #[test]
    fn single_outcome_always_sampled() {
        let freqs = empirical(&[3.5], 1000, 15);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    fn extreme_skew_still_exact() {
        let weights = [1e9, 1.0];
        let table = RadixTable::new(&weights).unwrap();
        let mut rng = DeterministicRng::new(16);
        let mut rare = 0usize;
        for _ in 0..1_000_000 {
            if table.sample(&mut rng) == 1 {
                rare += 1;
            }
        }
        assert!(rare <= 2, "rare outcome sampled {rare} times");
    }

    #[test]
    fn reweight_is_bitwise_identical_to_rebuild() {
        let mut weights = vec![1.0, 2.5, 3.0, 0.75, 8.0, 1.25, 0.5];
        let mut table = RadixTable::new(&weights).unwrap();
        let edits = [(2usize, 9.5f64), (0, 0.25), (6, 4.0), (2, 1.0), (4, 0.0)];
        for &(idx, w) in &edits {
            weights[idx] = w;
            table.reweight(idx, w);
            let fresh = RadixTable::new(&weights).unwrap();
            assert_bitwise_eq(&table, &fresh);
            // Bitwise-equal tables necessarily consume the RNG identically.
            let mut ra = DeterministicRng::new(777);
            let mut rb = DeterministicRng::new(777);
            for _ in 0..200 {
                assert_eq!(table.sample(&mut ra), fresh.sample(&mut rb));
                assert_eq!(ra, rb, "draw-sequence RNG states diverged");
            }
        }
    }

    #[test]
    fn reweight_to_zero_drains_mass() {
        let mut table = RadixTable::new(&[1.0, 2.0]).unwrap();
        table.reweight(1, 0.0);
        assert_eq!(table.total_weight(), 1.0);
        let mut rng = DeterministicRng::new(17);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 0);
        }
        table.reweight(0, 0.0);
        assert_eq!(table.total_weight(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-mass radix table")]
    fn sampling_zero_mass_panics() {
        let mut table = RadixTable::new(&[1.0]).unwrap();
        table.reweight(0, 0.0);
        table.sample(&mut DeterministicRng::new(1));
    }

    #[test]
    fn max_slab_bounds_and_tracks_reweights() {
        let mut table = RadixTable::new(&[1.0, 3.0, 0.5]).unwrap();
        assert_eq!(table.max_slab(), 4.0);
        table.reweight(1, 0.5);
        assert_eq!(table.max_slab(), 1.0);
        table.reweight(2, 100.0);
        assert_eq!(table.max_slab(), 128.0);
    }

    #[test]
    fn build_errors_propagate() {
        assert!(RadixTable::new(&[]).is_err());
        assert!(RadixTable::new(&[0.0]).is_err());
        assert!(RadixTable::new(&[-1.0, 2.0]).is_err());
        assert!(matches!(
            RadixTable::new(&[1.0, f64::MAX]),
            Err(SamplingError::InvalidWeight { index: 1 })
        ));
    }

    #[test]
    fn totals_are_canonical() {
        let table = RadixTable::new(&[0.25, 0.5, 0.75]).unwrap();
        assert!((table.total_weight() - 1.5).abs() < 1e-12);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        assert!(table.heap_bytes() > 0);
        table.prefetch();
        table.prefetch_leaves();
    }

    #[test]
    fn expected_trials_stay_below_two() {
        // Worst-case acceptance ratio: every weight just above a power of
        // two. Count RNG draws per sample; each trial consumes 2 draws.
        let weights = vec![1.000001f64; 33];
        let table = RadixTable::new(&weights).unwrap();
        let mut rng = DeterministicRng::new(18);
        let before = rng;
        let draws = 20_000usize;
        for _ in 0..draws {
            table.sample(&mut rng);
        }
        let mut consumed = 0u64;
        let mut probe = before;
        while probe != rng {
            probe.next_u64();
            consumed += 1;
        }
        let trials_per_draw = consumed as f64 / 2.0 / draws as f64;
        assert!(trials_per_draw < 2.2, "expected trials {trials_per_draw}");
    }
}
