//! Inverse Transform Sampling over a discrete distribution.
//!
//! ITS (§3, Figure 1a of the paper) stores the prefix sums of the
//! unnormalized weights — the cumulative distribution function — and samples
//! by drawing `r ∈ [0, total)` and binary-searching for the first bucket
//! whose cumulative weight exceeds `r`. Build is O(n), sampling O(log n).
//!
//! KnightKing itself prefers the [alias method](crate::alias) for its O(1)
//! sample cost, but ITS remains important: the Gemini-style baseline's
//! two-phase sampler uses it, dynamic full-scan sampling builds a throwaway
//! CDF per step, and the benchmark suite compares the two head-to-head.

use crate::{rng::DeterministicRng, validate_weights, SamplingError};

/// A prefix-sum (CDF) table supporting O(log n) weighted sampling.
///
/// # Examples
///
/// ```
/// use knightking_sampling::{CdfTable, DeterministicRng};
///
/// let cdf = CdfTable::new(&[2.0, 0.0, 2.0]).unwrap();
/// let mut rng = DeterministicRng::new(5);
/// for _ in 0..100 {
///     assert_ne!(cdf.sample(&mut rng), 1, "zero-weight bucket");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CdfTable {
    /// `cumulative[i]` = sum of weights `0..=i`; strictly positive tail.
    cumulative: Vec<f64>,
}

impl CdfTable {
    /// Builds the CDF from unnormalized, non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError`] if `weights` is empty, contains a
    /// negative/NaN/infinite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, SamplingError> {
        validate_weights(weights)?;
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut run = 0.0f64;
        for &w in weights {
            run += w;
            cumulative.push(run);
        }
        Ok(CdfTable { cumulative })
    }

    /// Builds a CDF in a caller-provided buffer, avoiding allocation.
    ///
    /// The full-scan baseline rebuilds a CDF at every walker step; reusing
    /// one scratch buffer per thread keeps that honest-but-slow path from
    /// also being allocation-bound.
    pub fn fill_scratch(weights: &[f64], scratch: &mut Vec<f64>) -> Result<f64, SamplingError> {
        validate_weights(weights)?;
        scratch.clear();
        scratch.reserve(weights.len());
        let mut run = 0.0f64;
        for &w in weights {
            run += w;
            scratch.push(run);
        }
        Ok(run)
    }

    /// Samples a bucket index via binary search over a prepared CDF slice.
    ///
    /// Exposed so the scratch-buffer path can share the exact search logic.
    ///
    /// # Panics
    ///
    /// Panics if `cumulative` is empty.
    #[inline]
    pub fn sample_prepared(cumulative: &[f64], rng: &mut DeterministicRng) -> usize {
        let total = *cumulative
            .last()
            .expect("sample_prepared requires a non-empty CDF");
        let r = rng.next_f64_below(total);
        // First index with cumulative weight strictly greater than r.
        let idx = cumulative.partition_point(|&c| c <= r);
        // Guard against r landing exactly on `total` through rounding.
        idx.min(cumulative.len() - 1)
    }

    /// Draws one outcome index in O(log n).
    #[inline]
    pub fn sample(&self, rng: &mut DeterministicRng) -> usize {
        Self::sample_prepared(&self.cumulative, rng)
    }

    /// Hints that this table is about to be binary-searched.
    ///
    /// The first probe of `sample` always lands on the midpoint, so that
    /// line (plus the total at the tail) is the only predictable touch.
    /// Purely a performance hint; see [`crate::prefetch`].
    #[inline]
    pub fn prefetch(&self) {
        if !self.cumulative.is_empty() {
            crate::prefetch::read(&self.cumulative[self.cumulative.len() / 2]);
            crate::prefetch::read(self.cumulative.last().unwrap());
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the table has no outcomes (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sum of the unnormalized weights the table was built from.
    pub fn total_weight(&self) -> f64 {
        *self.cumulative.last().unwrap_or(&0.0)
    }

    /// Approximate heap footprint in bytes, for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.cumulative.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let cdf = CdfTable::new(weights).unwrap();
        let mut rng = DeterministicRng::new(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[cdf.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_distribution() {
        let weights = [5.0, 1.0, 3.0, 1.0];
        let total: f64 = weights.iter().sum();
        let freqs = empirical(&weights, 200_000, 31);
        for (f, w) in freqs.iter().zip(weights.iter()) {
            assert!((f - w / total).abs() < 0.01);
        }
    }

    #[test]
    fn zero_weight_head_and_tail_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0], 20_000, 32);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
        assert_eq!(freqs[1], 1.0);
    }

    #[test]
    fn single_bucket() {
        let freqs = empirical(&[0.1], 100, 33);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    fn build_errors_propagate() {
        assert!(CdfTable::new(&[]).is_err());
        assert!(CdfTable::new(&[0.0, 0.0]).is_err());
        assert!(CdfTable::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn scratch_matches_owned() {
        let weights = [1.0, 2.0, 3.0];
        let mut scratch = Vec::new();
        let total = CdfTable::fill_scratch(&weights, &mut scratch).unwrap();
        assert!((total - 6.0).abs() < 1e-12);
        let owned = CdfTable::new(&weights).unwrap();
        assert_eq!(scratch, owned.cumulative);

        // The scratch path samples identically given identical RNG state.
        let mut r1 = DeterministicRng::new(9);
        let mut r2 = DeterministicRng::new(9);
        for _ in 0..1000 {
            assert_eq!(
                CdfTable::sample_prepared(&scratch, &mut r1),
                owned.sample(&mut r2)
            );
        }
    }

    #[test]
    fn agrees_with_alias_statistically() {
        use crate::alias::AliasTable;
        let weights = [1.0, 4.0, 2.0, 8.0, 1.0];
        let alias = AliasTable::new(&weights).unwrap();
        let cdf = CdfTable::new(&weights).unwrap();
        let draws = 200_000;
        let mut rng = DeterministicRng::new(34);
        let mut ca = vec![0f64; weights.len()];
        let mut cc = vec![0f64; weights.len()];
        for _ in 0..draws {
            ca[alias.sample(&mut rng)] += 1.0;
            cc[cdf.sample(&mut rng)] += 1.0;
        }
        for (a, c) in ca.iter().zip(cc.iter()) {
            assert!((a - c).abs() / (draws as f64) < 0.01);
        }
    }

    #[test]
    fn accessors() {
        let cdf = CdfTable::new(&[1.0, 1.0]).unwrap();
        assert_eq!(cdf.len(), 2);
        assert!(!cdf.is_empty());
        assert!((cdf.total_weight() - 2.0).abs() < 1e-12);
        assert_eq!(cdf.heap_bytes(), 16);
    }
}
