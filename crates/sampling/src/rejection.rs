//! Rejection sampling for dynamic random walk (§4 of the paper).
//!
//! The engine never scans all out-edges of the walker's residing vertex.
//! Instead it throws darts at a 2-D board:
//!
//! * the **main rectangle** is `Q(v) × ΣPs(e)` — the envelope height times
//!   the total static weight. An `x` sample inside it picks a candidate
//!   edge proportionally to `Ps` (via an alias table, or uniformly when
//!   unbiased); the `y` sample is then compared against the candidate's
//!   dynamic component `Pd`.
//! * each declared **outlier** (an edge whose `Pd` may exceed `Q(v)`, §4.2)
//!   contributes an *appendix* rectangle of `width_bound × (height_bound −
//!   Q)`, representing the chopped-off top of its bar. A dart landing in an
//!   appendix is accepted with probability `actual chopped area / estimated
//!   appendix area`.
//! * darts at or below the optional **lower bound** `L(v)` are
//!   *pre-accepted* without evaluating `Pd` at all — which for second-order
//!   walks also skips a round-trip of remote state queries.
//!
//! Provided the user-declared bounds are true bounds (`Q ≥ Pd` for
//! non-outlier edges, `width_bound ≥ Ps` and `height_bound ≥ Pd` for
//! outliers, `L ≤ Pd` for all edges), the accepted edge is distributed
//! exactly proportionally to `Ps(e) · Pd(e)` — see the exactness property
//! tests at the bottom of this module and in `tests/` of this crate.

use crate::rng::DeterministicRng;

/// A declared outlier: a candidate edge whose `Pd` may exceed the envelope.
///
/// The `target` field identifies the edge by its destination vertex; the
/// engine locates the concrete edge (e.g. node2vec's *return edge* is the
/// one leading back to the walker's previous stop). Bounds may be loose —
/// looser bounds only cost extra rejected trials, never correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierSlot {
    /// Destination vertex of the outlier edge.
    pub target: u32,
    /// Upper bound on the edge's static component `Ps`.
    pub width_bound: f64,
    /// Upper bound on the edge's dynamic component `Pd`.
    pub height_bound: f64,
}

/// The sampling board for one walker step at one vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// `Q(v)`: upper bound on `Pd` over all *non-outlier* edges.
    pub q: f64,
    /// `L(v)`: lower bound on `Pd` over all edges; `0.0` disables
    /// pre-acceptance.
    pub lower: f64,
    /// `ΣPs(e)` over all out-edges of the vertex (the degree itself for
    /// unbiased walks).
    pub static_total: f64,
    /// Declared outliers, each contributing an appendix area.
    pub outliers: Vec<OutlierSlot>,
}

/// Where one dart landed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trial {
    /// The dart landed in the main rectangle at height `y ∈ [0, Q)`.
    ///
    /// The caller samples the candidate edge from the static distribution
    /// and accepts iff `y < Pd(candidate)`; if `y ≤ L(v)` it may pre-accept
    /// without evaluating `Pd`.
    Main {
        /// Dart height within the envelope.
        y: f64,
    },
    /// The dart landed in the appendix of `outliers[index]`.
    ///
    /// The caller locates the outlier edge and accepts iff
    /// `x_mass < Ps(edge)` **and** `y < Pd(edge)` (note `y ≥ Q` here, so
    /// this tests the chopped-off part of the bar).
    Appendix {
        /// Index into [`Envelope::outliers`].
        index: usize,
        /// Horizontal dart position scaled by the slot's `width_bound`.
        x_mass: f64,
        /// Dart height, in `[Q, height_bound)`.
        y: f64,
    },
}

impl Envelope {
    /// Creates an envelope with no lower bound and no outliers.
    pub fn simple(q: f64, static_total: f64) -> Self {
        Envelope {
            q,
            lower: 0.0,
            static_total,
            outliers: Vec::new(),
        }
    }

    /// Area of the main rectangle.
    #[inline]
    pub fn main_area(&self) -> f64 {
        self.q * self.static_total
    }

    /// Estimated area of the appendix for `outliers[i]`.
    #[inline]
    fn appendix_area(&self, slot: &OutlierSlot) -> f64 {
        slot.width_bound * (slot.height_bound - self.q).max(0.0)
    }

    /// Total dart-board area: main rectangle plus all appendices.
    ///
    /// A zero total area means no edge can have positive transition
    /// probability; the walker must terminate (§2.2).
    pub fn total_area(&self) -> f64 {
        self.main_area()
            + self
                .outliers
                .iter()
                .map(|o| self.appendix_area(o))
                .sum::<f64>()
    }

    /// Hints that this envelope's outlier slots are about to be walked by
    /// [`Envelope::draw`]. Purely a performance hint; see
    /// [`crate::prefetch`].
    #[inline]
    pub fn prefetch(&self) {
        crate::prefetch::slice(&self.outliers);
    }

    /// Throws one dart, returning where it landed.
    ///
    /// Returns `None` when the board has zero area.
    pub fn draw(&self, rng: &mut DeterministicRng) -> Option<Trial> {
        let main = self.main_area();
        let total = self.total_area();
        if total <= 0.0 {
            return None;
        }
        let mut r = rng.next_f64_below(total);
        if r < main {
            // Height is uniform in [0, Q); the horizontal coordinate is
            // delegated to the caller's static sampler.
            return Some(Trial::Main {
                y: r / self.static_total,
            });
        }
        r -= main;
        for (index, slot) in self.outliers.iter().enumerate() {
            let area = self.appendix_area(slot);
            if r < area {
                let height = slot.height_bound - self.q;
                let x_mass = (r / height).min(slot.width_bound);
                // Spend an independent draw on the vertical coordinate so x
                // and y are uncorrelated.
                let y = self.q + rng.next_f64_below(height);
                return Some(Trial::Appendix { index, x_mass, y });
            }
            r -= area;
        }
        // Floating-point slack can push `r` a hair past the last appendix;
        // land it in the main rectangle, which is always a valid region.
        Some(Trial::Main {
            y: rng.next_f64_below(self.q.max(f64::MIN_POSITIVE)),
        })
    }

    /// Expected number of trials per accepted sample (Eq. 3 of the paper),
    /// generalized to include appendix areas.
    ///
    /// `effective_mass` must be `Σ Ps(e) · Pd(e)` over all edges.
    pub fn expected_trials(&self, effective_mass: f64) -> f64 {
        if effective_mass <= 0.0 {
            f64::INFINITY
        } else {
            self.total_area() / effective_mass
        }
    }
}

/// Outcome of running local rejection sampling to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalOutcome {
    /// An edge was accepted; carries the edge index and the number of
    /// trials consumed.
    Accepted {
        /// Index of the accepted out-edge.
        edge: usize,
        /// Number of darts thrown, including the accepting one.
        trials: u32,
    },
    /// `max_trials` darts all missed; the caller should fall back to an
    /// exact full scan (which also detects the no-eligible-edge case).
    Exhausted,
    /// The board has zero area: no edge has positive probability.
    NoMass,
}

/// Runs rejection sampling to completion for a *local* decision — the fast
/// path for static and first-order dynamic walks, where `Pd` can be
/// evaluated without remote state queries.
///
/// * `candidate` samples one edge index from the static distribution
///   (alias table or uniform).
/// * `ps` returns the static component of an edge (only consulted for
///   appendix darts).
/// * `pd` returns the dynamic component of an edge; the engine threads its
///   edges-evaluated counter through this closure.
/// * `locate_outlier` resolves an [`OutlierSlot`] to a concrete edge index,
///   or `None` if the declared outlier edge does not exist at this vertex.
pub fn sample_local(
    env: &Envelope,
    rng: &mut DeterministicRng,
    max_trials: u32,
    mut candidate: impl FnMut(&mut DeterministicRng) -> usize,
    mut ps: impl FnMut(usize) -> f64,
    mut pd: impl FnMut(usize) -> f64,
    mut locate_outlier: impl FnMut(&OutlierSlot) -> Option<usize>,
) -> LocalOutcome {
    if env.total_area() <= 0.0 {
        return LocalOutcome::NoMass;
    }
    for trial in 1..=max_trials {
        let Some(dart) = env.draw(rng) else {
            return LocalOutcome::NoMass;
        };
        match dart {
            Trial::Main { y } => {
                let edge = candidate(rng);
                if y <= env.lower || y < pd(edge) {
                    return LocalOutcome::Accepted {
                        edge,
                        trials: trial,
                    };
                }
            }
            Trial::Appendix { index, x_mass, y } => {
                let slot = env.outliers[index];
                if let Some(edge) = locate_outlier(&slot) {
                    if x_mass < ps(edge) && y < pd(edge) {
                        return LocalOutcome::Accepted {
                            edge,
                            trials: trial,
                        };
                    }
                }
            }
        }
    }
    LocalOutcome::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: empirical distribution of `sample_local` over
    /// explicit `ps`/`pd` arrays must match `ps[i]·pd[i]` exactly.
    fn check_exactness(ps: &[f64], pd: &[f64], env: Envelope, seed: u64) {
        let n = ps.len();
        let cdf = crate::CdfTable::new(ps).unwrap();
        let mut rng = DeterministicRng::new(seed);
        let draws = 300_000usize;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            match sample_local(
                &env,
                &mut rng,
                10_000,
                |r| cdf.sample(r),
                |e| ps[e],
                |e| pd[e],
                |slot| (0..n).find(|&e| e as u32 == slot.target),
            ) {
                LocalOutcome::Accepted { edge, .. } => counts[edge] += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let mass: f64 = ps.iter().zip(pd).map(|(a, b)| a * b).sum();
        for i in 0..n {
            let expect = ps[i] * pd[i] / mass;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.012,
                "edge {i}: got {got:.4} expected {expect:.4}"
            );
        }
    }

    #[test]
    fn unbiased_node2vec_shape() {
        // p = 2, q = 0.5 → Pd ∈ {0.5, 1, 2}; envelope Q = 2.
        let ps = [1.0, 1.0, 1.0, 1.0];
        let pd = [1.0, 2.0, 2.0, 0.5];
        check_exactness(&ps, &pd, Envelope::simple(2.0, 4.0), 41);
    }

    #[test]
    fn biased_walk_exact() {
        let ps = [0.5, 3.0, 1.5, 2.0, 1.0];
        let pd = [1.0, 0.25, 0.75, 1.0, 0.5];
        let total: f64 = ps.iter().sum();
        check_exactness(&ps, &pd, Envelope::simple(1.0, total), 42);
    }

    #[test]
    fn lower_bound_preserves_distribution() {
        let ps = [1.0, 1.0, 1.0];
        let pd = [0.5, 1.0, 0.75];
        let env = Envelope {
            q: 1.0,
            lower: 0.5,
            static_total: 3.0,
            outliers: Vec::new(),
        };
        check_exactness(&ps, &pd, env, 43);
    }

    #[test]
    fn outlier_folding_preserves_distribution() {
        // Return edge (index 3) has Pd = 2, everything else ≤ 1, so the
        // envelope can stay at Q = 1 with one declared outlier.
        let ps = [1.0, 1.0, 1.0, 1.0];
        let pd = [1.0, 0.5, 0.5, 2.0];
        let env = Envelope {
            q: 1.0,
            lower: 0.0,
            static_total: 4.0,
            outliers: vec![OutlierSlot {
                target: 3,
                width_bound: 1.0,
                height_bound: 2.0,
            }],
        };
        check_exactness(&ps, &pd, env, 44);
    }

    #[test]
    fn loose_outlier_bounds_stay_exact() {
        // Over-estimated width and height only waste trials.
        let ps = [2.0, 1.0, 0.5];
        let pd = [0.5, 3.0, 1.0];
        let env = Envelope {
            q: 1.0,
            lower: 0.0,
            static_total: 3.5,
            outliers: vec![OutlierSlot {
                target: 1,
                width_bound: 2.5,  // actual Ps is 1.0
                height_bound: 5.0, // actual Pd is 3.0
            }],
        };
        check_exactness(&ps, &pd, env, 45);
    }

    #[test]
    fn outlier_with_pd_below_q_adds_no_mass() {
        // Declared outlier turns out not to exceed the envelope: its
        // appendix darts must all reject, leaving the distribution exact.
        let ps = [1.0, 1.0];
        let pd = [1.0, 0.5];
        let env = Envelope {
            q: 1.0,
            lower: 0.0,
            static_total: 2.0,
            outliers: vec![OutlierSlot {
                target: 1,
                width_bound: 1.0,
                height_bound: 3.0,
            }],
        };
        check_exactness(&ps, &pd, env, 46);
    }

    #[test]
    fn zero_area_reports_no_mass() {
        let env = Envelope::simple(0.0, 10.0);
        let mut rng = DeterministicRng::new(47);
        let out = sample_local(&env, &mut rng, 10, |_| 0, |_| 1.0, |_| 1.0, |_| None);
        assert_eq!(out, LocalOutcome::NoMass);
    }

    #[test]
    fn all_pd_zero_exhausts() {
        // Positive envelope but every bar is zero: darts always miss. The
        // engine's full-scan fallback is what turns this into termination.
        let env = Envelope::simple(1.0, 4.0);
        let mut rng = DeterministicRng::new(48);
        let out = sample_local(
            &env,
            &mut rng,
            64,
            |r| r.next_index(4),
            |_| 1.0,
            |_| 0.0,
            |_| None,
        );
        assert_eq!(out, LocalOutcome::Exhausted);
    }

    #[test]
    fn missing_outlier_edge_rejects_gracefully() {
        // The declared outlier's target is not actually adjacent; appendix
        // darts must reject rather than panic, and main-rectangle sampling
        // remains exact.
        let ps = [1.0, 1.0];
        let pd = [1.0, 1.0];
        let env = Envelope {
            q: 1.0,
            lower: 0.0,
            static_total: 2.0,
            outliers: vec![OutlierSlot {
                target: 99,
                width_bound: 1.0,
                height_bound: 2.0,
            }],
        };
        check_exactness(&ps, &pd, env, 49);
    }

    #[test]
    fn expected_trials_formula() {
        // Eq. 3: E = Q·ΣPs / Σ(Ps·Pd).
        let env = Envelope::simple(2.0, 4.0);
        let mass = 1.0 + 2.0 + 2.0 + 0.5;
        let e = env.expected_trials(mass);
        assert!((e - 8.0 / 5.5).abs() < 1e-12);
        assert_eq!(env.expected_trials(0.0), f64::INFINITY);
    }

    #[test]
    fn outlier_folding_reduces_expected_trials() {
        // p = 0.5, q = 2 node2vec at a degree-100 vertex: one bar at 2,
        // the rest at 0.5. Folding the outlier must shrink the board.
        let deg = 100.0;
        let naive = Envelope::simple(2.0, deg);
        let folded = Envelope {
            q: 1.0,
            lower: 0.0,
            static_total: deg,
            outliers: vec![OutlierSlot {
                target: 0,
                width_bound: 1.0,
                height_bound: 2.0,
            }],
        };
        let mass = 2.0 + 99.0 * 0.5;
        assert!(folded.expected_trials(mass) < naive.expected_trials(mass) / 1.9);
    }

    #[test]
    fn trials_counted() {
        let env = Envelope::simple(1.0, 2.0);
        let mut rng = DeterministicRng::new(50);
        // Pd = 1 everywhere → first dart always accepted.
        let out = sample_local(
            &env,
            &mut rng,
            10,
            |r| r.next_index(2),
            |_| 1.0,
            |_| 1.0,
            |_| None,
        );
        assert!(matches!(out, LocalOutcome::Accepted { trials: 1, .. }));
    }
}
