//! Software prefetch hints for the stage-interleaved walker engine.
//!
//! A walker step is a dependent pointer chase — CSR row bounds → edge
//! slice → sampler entry — so the engine's hot loop hides memory latency
//! by issuing prefetches for walker *i + d* while walker *i* samples
//! (ThunderRW-style step interleaving). The hints here are pure
//! performance annotations: they never fault, never touch memory
//! architecturally, and compile to nothing on targets without a known
//! prefetch instruction, so every caller stays byte-identical with or
//! without them.
//!
//! `core::arch` only — no dependencies, no `unsafe` leaking to callers.

/// How many cache lines [`span`] will touch at most for one range.
///
/// Hub vertices have edge rows far larger than L1; prefetching an entire
/// multi-megabyte row would evict the working set it is trying to warm.
/// Four lines cover the first 32 edge targets (or 64 weight bytes) — the
/// region a rejection trial is overwhelmingly likely to hit first.
pub const MAX_SPAN_LINES: usize = 4;

/// Cache line size assumed for [`span`]; exactness is irrelevant to
/// correctness (a wrong guess only wastes or merges hint slots).
const LINE: usize = 64;

/// Hints that the cache line containing `p` will soon be read.
///
/// Accepts any pointer, including dangling or null — the instruction is
/// specified to never fault. No-op on targets without a stable prefetch
/// primitive.
#[inline(always)]
pub fn read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a hint; it never faults regardless of `p`.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP is a hint; it never faults regardless of `p`.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{ptr}]",
            ptr = in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Hints the first [`MAX_SPAN_LINES`] cache lines of `len` elements
/// starting at `p`.
///
/// The cap bounds the cost on hub rows; see [`MAX_SPAN_LINES`].
#[inline(always)]
pub fn span<T>(p: *const T, len: usize) {
    let bytes = len.saturating_mul(core::mem::size_of::<T>());
    let lines = bytes.div_ceil(LINE).min(MAX_SPAN_LINES);
    for i in 0..lines {
        read((p as *const u8).wrapping_add(i * LINE));
    }
}

/// Hints a whole slice (capped at [`MAX_SPAN_LINES`] lines).
#[inline(always)]
pub fn slice<T>(s: &[T]) {
    span(s.as_ptr(), s.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_faults_on_hostile_pointers() {
        read(core::ptr::null::<u64>());
        read(usize::MAX as *const u64);
        read((&42u64) as *const u64);
        span(core::ptr::null::<u8>(), 10_000);
        span([1u32, 2, 3].as_ptr(), 3);
        slice::<u64>(&[]);
        slice(&[1.0f64; 512]);
    }

    #[test]
    fn span_lines_are_capped() {
        // Purely a compile/semantics check: a huge len must not overflow
        // the pointer arithmetic (wrapping_add) or loop unboundedly.
        span(core::ptr::null::<u8>(), usize::MAX);
    }
}
