//! Property-based tests for the graph substrate: CSR construction,
//! adjacency invariants, partition coverage, and edge-list round-trips.

use knightking_graph::{builder::GraphBuilder, io, Partition, VertexId};
use proptest::prelude::*;

/// An arbitrary edge list over `n` vertices.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1usize..64).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), prop::collection::vec(edge, 0..256))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every inserted directed edge is findable; none are invented.
    #[test]
    fn csr_contains_exactly_the_inserted_edges((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::directed(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        prop_assert_eq!(g.edge_count(), edges.len());
        // Multiset equality per source.
        for v in 0..n as u32 {
            let mut expected: Vec<u32> = edges
                .iter()
                .filter(|&&(s, _)| s == v)
                .map(|&(_, d)| d)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(g.neighbors(v), &expected[..]);
        }
    }

    /// Adjacency is sorted, `has_edge`/`find_edge`/`edge_range` agree.
    #[test]
    fn csr_lookup_functions_agree((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::directed(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        for v in 0..n as u32 {
            prop_assert!(g.neighbors(v).windows(2).all(|w| w[0] <= w[1]));
            for x in 0..n as u32 {
                let range = g.edge_range(v, x);
                let count = g.neighbors(v).iter().filter(|&&d| d == x).count();
                prop_assert_eq!(range.len(), count);
                prop_assert_eq!(g.has_edge(v, x), count > 0);
                if let Some(i) = g.find_edge(v, x) {
                    prop_assert_eq!(g.edge(v, i).dst, x);
                } else {
                    prop_assert_eq!(count, 0);
                }
            }
        }
    }

    /// Undirected graphs are symmetric with doubled edge count.
    #[test]
    fn undirected_symmetry((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::undirected(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        prop_assert_eq!(g.edge_count(), edges.len() * 2);
        for v in 0..n as u32 {
            for &x in g.neighbors(v) {
                prop_assert!(g.has_edge(x, v), "missing mirror of ({v}, {x})");
            }
        }
    }

    /// Weights and types stay attached to their edge through the
    /// counting sort and adjacency sort.
    #[test]
    fn attributes_follow_edges((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::directed(n).with_weights().with_edge_types();
        for (i, &(s, d)) in edges.iter().enumerate() {
            b.add_full_edge(s, d, (i + 1) as f32, (i % 200) as u8);
        }
        let g = b.build();
        // For each stored edge, its (weight, type) pair must correspond
        // to SOME inserted edge with the same endpoints.
        for v in 0..n as u32 {
            for e in g.edges(v) {
                let found = edges.iter().enumerate().any(|(i, &(s, d))| {
                    s == v && d == e.dst
                        && (i + 1) as f32 == e.weight
                        && (i % 200) as u8 == e.edge_type
                });
                prop_assert!(found, "edge ({v}, {}) carries foreign attributes", e.dst);
            }
        }
    }

    /// Partitions cover every vertex exactly once, owners agree with
    /// ranges, and ranges are contiguous and ordered.
    #[test]
    fn partition_invariants((n, edges) in edges_strategy(), n_nodes in 1usize..12, alpha in 0.0f64..10.0) {
        let mut b = GraphBuilder::directed(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        let p = Partition::balanced(&g, n_nodes, alpha);
        prop_assert_eq!(p.n_nodes(), n_nodes);
        prop_assert_eq!(p.vertex_count(), n);
        let mut covered = 0usize;
        let mut prev_end = 0 as VertexId;
        for node in 0..n_nodes {
            let r = p.range(node);
            prop_assert_eq!(r.start, prev_end, "ranges must be contiguous");
            prev_end = r.end;
            covered += r.len();
            for v in r {
                prop_assert_eq!(p.owner(v), node);
            }
        }
        prop_assert_eq!(covered, n);
    }

    /// Binary format round-trip preserves the graph exactly, including
    /// attributes.
    #[test]
    fn binary_round_trip((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::undirected(n).with_weights().with_edge_types();
        for (i, &(s, d)) in edges.iter().enumerate() {
            b.add_full_edge(s, d, (i % 13) as f32 + 0.25, (i % 200) as u8);
        }
        let g = b.build();
        let mut buf = Vec::new();
        knightking_graph::binfmt::write_binary(&g, &mut buf).unwrap();
        let g2 = knightking_graph::binfmt::read_binary(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g2.vertex_count(), g.vertex_count());
        for v in 0..n as u32 {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
            prop_assert_eq!(g2.edge_weights(v), g.edge_weights(v));
            prop_assert_eq!(g2.edge_types_of(v), g.edge_types_of(v));
        }
    }

    /// The Bloom neighbor index agrees with binary search on every pair.
    #[test]
    fn neighbor_index_always_agrees((n, edges) in edges_strategy(), min_deg in 0usize..16) {
        let mut b = GraphBuilder::directed(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        let idx = knightking_graph::NeighborIndex::build(&g, min_deg);
        for v in 0..n as u32 {
            for x in 0..n as u32 {
                prop_assert_eq!(idx.has_edge(&g, v, x), g.has_edge(v, x));
            }
        }
    }

    /// Local extraction partitions the edge set exactly.
    #[test]
    fn extract_local_partitions_edges((n, edges) in edges_strategy(), nodes in 1usize..6) {
        let mut b = GraphBuilder::directed(n);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        let p = Partition::balanced(&g, nodes, 1.0);
        let mut total = 0usize;
        for node in 0..nodes {
            let local = p.extract_local(&g, node);
            total += local.edge_count();
            for v in 0..n as u32 {
                if p.owner(v) == node {
                    prop_assert_eq!(local.neighbors(v), g.neighbors(v));
                } else {
                    prop_assert_eq!(local.degree(v), 0);
                }
            }
        }
        prop_assert_eq!(total, g.edge_count());
    }

    /// Edge-list text round-trip preserves the graph exactly.
    #[test]
    fn edge_list_round_trip((n, edges) in edges_strategy()) {
        let mut b = GraphBuilder::directed(n).with_weights();
        for (i, &(s, d)) in edges.iter().enumerate() {
            b.add_weighted_edge(s, d, (i % 31) as f32 + 0.5);
        }
        let g = b.build();

        let mut buf: Vec<u8> = Vec::new();
        io::write_edge_list(&g, &mut buf, false).unwrap();
        let fmt = io::EdgeListFormat {
            weighted: true,
            typed: false,
            undirected: false,
        };
        let g2 = io::read_edge_list(std::io::Cursor::new(buf), n, fmt).unwrap();
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        for v in 0..n as u32 {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
            prop_assert_eq!(g2.edge_weights(v), g.edge_weights(v));
        }
    }
}
