//! 1-D contiguous vertex partitioning (§6.1 of the paper).
//!
//! KnightKing estimates a node's processing workload as the sum of its
//! local vertex and edge counts and balances that sum across nodes with a
//! contiguous 1-D split. Contiguity makes ownership lookup a binary search
//! over at most `n_nodes` boundaries, and gives each node one dense CSR
//! slice — the property that lets a walker directly address any edge of its
//! residing vertex.

use crate::{CsrGraph, VertexId};

/// A contiguous 1-D partition of the vertex set across `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `starts[i]..starts[i + 1]` is node `i`'s vertex range
    /// (len `n_nodes + 1`, `starts[0] == 0`, `starts[n] == |V|`).
    starts: Vec<VertexId>,
}

impl Partition {
    /// Partitions `graph` across `n_nodes`, balancing `α·|V_i| + |E_i|`.
    ///
    /// `alpha` weighs a vertex against an edge in the workload estimate;
    /// the paper's heuristic is the plain sum, i.e. `alpha = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0`.
    pub fn balanced(graph: &CsrGraph, n_nodes: usize, alpha: f64) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        let v = graph.vertex_count();
        let total_work: f64 = alpha * v as f64 + graph.edge_count() as f64;
        let per_node = total_work / n_nodes as f64;

        let mut starts = Vec::with_capacity(n_nodes + 1);
        starts.push(0 as VertexId);
        let mut acc = 0.0f64;
        let mut next_vertex = 0usize;
        for node in 0..n_nodes - 1 {
            let target = per_node * (node + 1) as f64;
            while next_vertex < v && acc < target {
                acc += alpha + graph.degree(next_vertex as VertexId) as f64;
                next_vertex += 1;
            }
            // Never let a later node start before an earlier one, and keep
            // at least the remaining nodes' worth of room.
            starts.push(next_vertex as VertexId);
        }
        starts.push(v as VertexId);
        Partition { starts }
    }

    /// Splits vertices evenly by count, ignoring edges. Useful for tests
    /// and as the degenerate case of `balanced` with `alpha → ∞`.
    pub fn even(vertex_count: usize, n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        let mut starts = Vec::with_capacity(n_nodes + 1);
        for node in 0..=n_nodes {
            starts.push((vertex_count * node / n_nodes) as VertexId);
        }
        Partition { starts }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of partitioned vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        *self.starts.last().unwrap() as usize
    }

    /// The node owning vertex `v`, in O(log n_nodes).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the partitioned range.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        assert!(
            (v as usize) < self.vertex_count(),
            "vertex {v} outside partition"
        );
        // First boundary strictly greater than v, minus one.
        self.starts.partition_point(|&s| s <= v) - 1
    }

    /// Node `i`'s vertex range.
    #[inline]
    pub fn range(&self, node: usize) -> std::ops::Range<VertexId> {
        self.starts[node]..self.starts[node + 1]
    }

    /// Number of vertices owned by node `i`.
    #[inline]
    pub fn local_vertex_count(&self, node: usize) -> usize {
        (self.starts[node + 1] - self.starts[node]) as usize
    }

    /// Extracts node `i`'s local graph slice: same vertex id space, but
    /// only the out-edges of vertices this node owns. Every other vertex
    /// has degree zero.
    ///
    /// This is the storage layout of a real distributed deployment — a
    /// node physically holds nothing beyond its partition — and is what
    /// the engine hands each simulated node, so out-of-partition accesses
    /// are structurally impossible rather than merely forbidden.
    pub fn extract_local(&self, graph: &CsrGraph, node: usize) -> CsrGraph {
        let v_count = graph.vertex_count();
        let range = self.range(node);
        let mut offsets = vec![0u64; v_count + 1];
        let mut run = 0u64;
        for v in 0..v_count as VertexId {
            if range.contains(&v) {
                run += graph.degree(v) as u64;
            }
            offsets[v as usize + 1] = run;
        }
        let local_edges = run as usize;
        let mut targets = Vec::with_capacity(local_edges);
        let mut weights = graph.is_weighted().then(|| Vec::with_capacity(local_edges));
        let mut edge_types = graph.is_typed().then(|| Vec::with_capacity(local_edges));
        for v in range.clone() {
            targets.extend_from_slice(graph.neighbors(v));
            if let Some(w) = &mut weights {
                w.extend_from_slice(graph.edge_weights(v).expect("weighted"));
            }
            if let Some(t) = &mut edge_types {
                t.extend_from_slice(graph.edge_types_of(v).expect("typed"));
            }
        }
        CsrGraph::from_parts(offsets, targets, weights, edge_types)
    }

    /// Workload estimate `α·|V_i| + |E_i|` for each node, for balance
    /// diagnostics and tests.
    pub fn workloads(&self, graph: &CsrGraph, alpha: f64) -> Vec<f64> {
        (0..self.n_nodes())
            .map(|node| {
                let r = self.range(node);
                let edges: usize = (r.start..r.end).map(|v| graph.degree(v)).sum();
                alpha * (r.end - r.start) as f64 + edges as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use knightking_sampling::DeterministicRng;

    fn random_graph(v: usize, e: usize, seed: u64) -> CsrGraph {
        let mut rng = DeterministicRng::new(seed);
        let mut b = GraphBuilder::directed(v);
        for _ in 0..e {
            b.add_edge(rng.next_index(v) as u32, rng.next_index(v) as u32);
        }
        b.build()
    }

    #[test]
    fn covers_all_vertices_exactly_once() {
        let g = random_graph(1000, 5000, 1);
        let p = Partition::balanced(&g, 7, 1.0);
        assert_eq!(p.n_nodes(), 7);
        let mut covered = 0usize;
        for node in 0..7 {
            covered += p.local_vertex_count(node);
            for v in p.range(node) {
                assert_eq!(p.owner(v), node);
            }
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn balances_workload_within_tolerance() {
        let g = random_graph(10_000, 80_000, 2);
        let p = Partition::balanced(&g, 8, 1.0);
        let loads = p.workloads(&g, 1.0);
        let total: f64 = loads.iter().sum();
        let ideal = total / 8.0;
        for (node, &l) in loads.iter().enumerate() {
            assert!(
                (l - ideal).abs() / ideal < 0.15,
                "node {node} load {l} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn skewed_graph_still_partitions_correctly() {
        // One vertex holds almost all edges; its node must end up with few
        // other vertices.
        let mut b = GraphBuilder::directed(100);
        for d in 0..1000u32 {
            b.add_edge(0, d % 100);
        }
        b.add_edge(99, 0);
        let g = b.build();
        let p = Partition::balanced(&g, 4, 1.0);
        assert_eq!(p.owner(0), 0);
        assert_eq!(
            p.local_vertex_count(0)
                + p.local_vertex_count(1)
                + p.local_vertex_count(2)
                + p.local_vertex_count(3),
            100
        );
        // The hub's node should own far fewer vertices than the average.
        assert!(p.local_vertex_count(0) < 25);
    }

    #[test]
    fn single_node_owns_everything() {
        let g = random_graph(50, 100, 3);
        let p = Partition::balanced(&g, 1, 1.0);
        assert_eq!(p.range(0), 0..50);
        assert_eq!(p.owner(49), 0);
    }

    #[test]
    fn more_nodes_than_vertices_leaves_empty_nodes() {
        let g = random_graph(3, 3, 4);
        let p = Partition::balanced(&g, 8, 1.0);
        assert_eq!(p.n_nodes(), 8);
        let covered: usize = (0..8).map(|n| p.local_vertex_count(n)).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn even_partition_splits_by_count() {
        let p = Partition::even(10, 3);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(1), 3..6);
        assert_eq!(p.range(2), 6..10);
        assert_eq!(p.owner(5), 1);
        assert_eq!(p.owner(6), 2);
    }

    #[test]
    #[should_panic(expected = "outside partition")]
    fn owner_out_of_range_panics() {
        Partition::even(5, 2).owner(5);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        Partition::even(5, 0);
    }

    #[test]
    fn extract_local_covers_the_graph_exactly_once() {
        let g = random_graph(500, 4000, 5);
        let p = Partition::balanced(&g, 4, 1.0);
        let locals: Vec<CsrGraph> = (0..4).map(|n| p.extract_local(&g, n)).collect();
        let mut total_edges = 0;
        for (node, local) in locals.iter().enumerate() {
            assert_eq!(local.vertex_count(), g.vertex_count());
            total_edges += local.edge_count();
            for v in 0..500u32 {
                if p.owner(v) == node {
                    assert_eq!(local.neighbors(v), g.neighbors(v), "owned vertex {v}");
                } else {
                    assert_eq!(local.degree(v), 0, "foreign vertex {v} must be empty");
                }
            }
        }
        assert_eq!(total_edges, g.edge_count());
    }

    #[test]
    fn extract_local_keeps_weights_and_types() {
        let mut b = GraphBuilder::directed(6).with_weights().with_edge_types();
        b.add_full_edge(0, 1, 1.5, 2);
        b.add_full_edge(3, 4, 2.5, 7);
        b.add_full_edge(5, 0, 3.5, 1);
        let g = b.build();
        let p = Partition::even(6, 2);
        let a = p.extract_local(&g, 0);
        let c = p.extract_local(&g, 1);
        assert_eq!(a.edge_weights(0).unwrap(), &[1.5]);
        assert_eq!(a.edge_types_of(0).unwrap(), &[2]);
        assert_eq!(a.degree(3), 0);
        assert_eq!(c.edge_weights(3).unwrap(), &[2.5]);
        assert_eq!(c.edge_types_of(5).unwrap(), &[1]);
        assert_eq!(c.degree(0), 0);
    }

    #[test]
    fn owner_boundaries_are_exact() {
        let p = Partition::even(100, 4);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(24), 0);
        assert_eq!(p.owner(25), 1);
        assert_eq!(p.owner(99), 3);
    }
}
