//! Synthetic graph generators used throughout the paper's evaluation.
//!
//! §7.3 studies sampling cost against controlled topology: uniform-degree
//! graphs (density sweep, Figure 6a), truncated power-law graphs (skewness
//! sweep, Figure 6b), and uniform graphs with injected hotspots
//! (Figure 6c). §7.1 additionally needs weighted versions of each graph
//! with weights drawn from `[1, 5)`, and Figure 8 needs power-law weight
//! assignment with a controllable maximum.
//!
//! Since the paper's real-world graphs (Twitter, Friendster, UK-Union) are
//! tens of gigabytes, the benchmark harness stands them in with [`rmat`]
//! graphs whose skew is tuned to match each graph's character; the
//! substitution is documented in `DESIGN.md`.
//!
//! All generators produce *undirected* graphs (edges stored twice), matching
//! the paper's setup ("we use their undirected version"). Degrees below
//! refer to the undirected degree.

use crate::{builder::GraphBuilder, CsrGraph, EdgeTypeId, VertexId, Weight};
use knightking_sampling::DeterministicRng;

/// How to assign edge weights (`Ps`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightKind {
    /// Unweighted graph (`Ps = 1` implicitly; no weight array stored).
    None,
    /// Weights uniform in `[lo, hi)` — the paper uses `[1, 5)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f32,
        /// Exclusive upper bound.
        hi: f32,
    },
    /// Weights `w ∈ [1, max]` with density `∝ w^-exponent` (Figure 8's
    /// power-law weight assignment).
    PowerLaw {
        /// Largest possible weight.
        max: f32,
        /// Power-law exponent (> 1).
        exponent: f32,
    },
}

/// Options shared by all generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenOptions {
    /// Weight assignment.
    pub weights: WeightKind,
    /// When `Some(t)`, each edge gets a uniform random type in `[0, t)` —
    /// the heterogeneous-graph setup for Meta-path (§7.1 uses 5 types).
    pub edge_types: Option<EdgeTypeId>,
    /// RNG seed; equal seeds give identical graphs.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            weights: WeightKind::None,
            edge_types: None,
            seed: 1,
        }
    }
}

impl GenOptions {
    /// Unweighted, untyped, with the given seed.
    pub fn seeded(seed: u64) -> Self {
        GenOptions {
            seed,
            ..GenOptions::default()
        }
    }

    /// The paper's weighted setup: weights uniform in `[1, 5)`.
    pub fn paper_weighted(seed: u64) -> Self {
        GenOptions {
            weights: WeightKind::Uniform { lo: 1.0, hi: 5.0 },
            edge_types: None,
            seed,
        }
    }
}

fn draw_weight(kind: WeightKind, rng: &mut DeterministicRng) -> Weight {
    match kind {
        WeightKind::None => 1.0,
        WeightKind::Uniform { lo, hi } => lo + rng.next_f64() as f32 * (hi - lo),
        WeightKind::PowerLaw { max, exponent } => {
            // Inverse-transform sampling of a bounded Pareto on [1, max].
            let a = exponent as f64;
            let u = rng.next_f64();
            let hi = max as f64;
            if (a - 1.0).abs() < 1e-9 {
                hi.powf(u) as f32
            } else {
                let lo_p = 1.0f64;
                let hi_p = hi.powf(1.0 - a);
                ((lo_p + u * (hi_p - lo_p)).powf(1.0 / (1.0 - a))) as f32
            }
        }
    }
}

/// Builds the undirected graph from an explicit pairing of endpoints.
fn assemble(n: usize, pairs: &[(VertexId, VertexId)], opts: GenOptions) -> CsrGraph {
    let mut rng = DeterministicRng::for_stream(opts.seed, 0xA77A);
    let mut b = GraphBuilder::undirected(n);
    if !matches!(opts.weights, WeightKind::None) {
        b = b.with_weights();
    }
    if opts.edge_types.is_some() {
        b = b.with_edge_types();
    }
    for &(u, v) in pairs {
        let w = draw_weight(opts.weights, &mut rng);
        let t = opts
            .edge_types
            .map_or(0, |count| rng.next_bounded(count as u64) as EdgeTypeId);
        b.add_full_edge(u, v, w, t);
    }
    b.build()
}

/// Pairs up a stub list (configuration model), consuming it.
fn pair_stubs(stubs: &mut Vec<VertexId>, rng: &mut DeterministicRng) -> Vec<(VertexId, VertexId)> {
    // Fisher–Yates shuffle, then pair consecutive stubs. Self-loops and
    // parallel edges are kept — they are rare and harmless for random
    // walks, and dropping them would perturb the degree sequence.
    for i in (1..stubs.len()).rev() {
        let j = rng.next_index(i + 1);
        stubs.swap(i, j);
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

/// Generates an undirected graph where every vertex has degree exactly
/// `degree` (configuration model), as in Figure 6a.
///
/// `n * degree` should be even; if odd, one stub is dropped and a single
/// vertex ends up one short.
///
/// # Examples
///
/// ```
/// use knightking_graph::gen::{uniform_degree, GenOptions};
///
/// let g = uniform_degree(100, 8, GenOptions::seeded(7));
/// assert_eq!(g.vertex_count(), 100);
/// assert_eq!(g.degree(42), 8);
/// ```
pub fn uniform_degree(n: usize, degree: usize, opts: GenOptions) -> CsrGraph {
    let mut rng = DeterministicRng::for_stream(opts.seed, 0x51B5);
    let mut stubs = Vec::with_capacity(n * degree);
    for v in 0..n as VertexId {
        for _ in 0..degree {
            stubs.push(v);
        }
    }
    let pairs = pair_stubs(&mut stubs, &mut rng);
    assemble(n, &pairs, opts)
}

/// Generates an undirected graph whose degrees follow a *truncated*
/// power-law `P(k) ∝ k^-gamma` on `[min_degree, cap]`, as in Figure 6b.
///
/// Raising `cap` with `gamma` fixed makes the distribution more skewed
/// while only mildly raising the mean — the knob the paper turns.
pub fn truncated_power_law(
    n: usize,
    gamma: f64,
    min_degree: usize,
    cap: usize,
    opts: GenOptions,
) -> CsrGraph {
    assert!(min_degree >= 1 && cap >= min_degree, "bad degree range");
    let mut rng = DeterministicRng::for_stream(opts.seed, 0x70B7);
    // Build the discrete CDF of k^-gamma over [min_degree, cap]. The cap
    // for our scaled-down experiments stays ≤ ~100k, so a dense CDF is fine.
    let weights: Vec<f64> = (min_degree..=cap)
        .map(|k| (k as f64).powf(-gamma))
        .collect();
    let cdf = knightking_sampling::CdfTable::new(&weights)
        .expect("power-law weights are positive by construction");
    let mut stubs = Vec::new();
    for v in 0..n as VertexId {
        let k = min_degree + cdf.sample(&mut rng);
        for _ in 0..k {
            stubs.push(v);
        }
    }
    let pairs = pair_stubs(&mut stubs, &mut rng);
    assemble(n, &pairs, opts)
}

/// Generates the Figure 6c topology: a uniform graph of degree
/// `base_degree` with `hotspot_count` vertices of degree `hotspot_degree`
/// spliced in.
///
/// The hotspots are the first `hotspot_count` vertex ids; each connects to
/// uniformly random non-hotspot vertices.
pub fn with_hotspots(
    n: usize,
    base_degree: usize,
    hotspot_count: usize,
    hotspot_degree: usize,
    opts: GenOptions,
) -> CsrGraph {
    assert!(hotspot_count < n, "hotspots must leave ordinary vertices");
    let mut rng = DeterministicRng::for_stream(opts.seed, 0x405F);
    let mut stubs = Vec::new();
    for v in hotspot_count as VertexId..n as VertexId {
        for _ in 0..base_degree {
            stubs.push(v);
        }
    }
    let mut pairs = pair_stubs(&mut stubs, &mut rng);
    let ordinary = (n - hotspot_count) as u64;
    for h in 0..hotspot_count as VertexId {
        for _ in 0..hotspot_degree {
            let other = hotspot_count as VertexId + rng.next_bounded(ordinary) as VertexId;
            pairs.push((h, other));
        }
    }
    assemble(n, &pairs, opts)
}

/// R-MAT generator — the stand-in for the paper's real-world social graphs.
///
/// Produces `2^scale` vertices and `edge_factor · 2^scale` undirected
/// edges by recursive quadrant descent with probabilities
/// `(a, b, c, 1 − a − b − c)`. The classic skew setting
/// `(0.57, 0.19, 0.19)` yields a heavy-tailed degree distribution similar
/// to Twitter's; `(0.45, 0.22, 0.22)` is milder, similar to Friendster's.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, opts: GenOptions) -> CsrGraph {
    assert!(scale <= 31, "scale too large for u32 vertex ids");
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let edges = edge_factor * n;
    let mut rng = DeterministicRng::for_stream(opts.seed, 0x46A7);
    let mut pairs = Vec::with_capacity(edges);
    for _ in 0..edges {
        let (mut lo_u, mut lo_v) = (0u32, 0u32);
        let mut half = (n >> 1) as u32;
        while half > 0 {
            let r = rng.next_f64();
            if r < a {
                // upper-left: no change
            } else if r < a + b {
                lo_v += half;
            } else if r < a + b + c {
                lo_u += half;
            } else {
                lo_u += half;
                lo_v += half;
            }
            half >>= 1;
        }
        pairs.push((lo_u, lo_v));
    }
    assemble(n, &pairs, opts)
}

/// Convenience presets matching the characters of the paper's Table 2
/// graphs, at laptop scale.
pub mod presets {
    use super::*;

    /// A mildly-skewed social graph (Friendster-like): R-MAT with gentle
    /// quadrant skew.
    pub fn friendster_like(scale: u32, opts: GenOptions) -> CsrGraph {
        rmat(scale, 16, 0.45, 0.22, 0.22, opts)
    }

    /// A heavily-skewed social graph (Twitter-like): R-MAT with classic
    /// Graph500 skew, producing a few ultra-high-degree hubs.
    pub fn twitter_like(scale: u32, opts: GenOptions) -> CsrGraph {
        rmat(scale, 16, 0.57, 0.19, 0.19, opts)
    }

    /// A small social graph (LiveJournal-like): lower degree, mild skew.
    pub fn livejournal_like(scale: u32, opts: GenOptions) -> CsrGraph {
        rmat(scale, 9, 0.48, 0.21, 0.21, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degree_is_exact() {
        let g = uniform_degree(200, 6, GenOptions::seeded(1));
        for v in 0..200 {
            assert_eq!(g.degree(v), 6, "vertex {v}");
        }
        assert_eq!(g.edge_count(), 200 * 6);
    }

    #[test]
    fn uniform_degree_deterministic_per_seed() {
        let a = uniform_degree(100, 4, GenOptions::seeded(9));
        let b = uniform_degree(100, 4, GenOptions::seeded(9));
        let c = uniform_degree(100, 4, GenOptions::seeded(10));
        for v in 0..100 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        assert!((0..100).any(|v| a.neighbors(v) != c.neighbors(v)));
    }

    #[test]
    fn power_law_cap_respected_and_skew_grows() {
        let low_cap = truncated_power_law(3000, 2.0, 2, 20, GenOptions::seeded(2));
        let high_cap = truncated_power_law(3000, 2.0, 2, 2000, GenOptions::seeded(2));
        assert!(low_cap.max_degree() <= 2 * 20); // pairing can add a little
        let (m1, v1) = low_cap.degree_stats();
        let (m2, v2) = high_cap.degree_stats();
        // Raising the cap raises variance much faster than the mean.
        assert!(v2 / v1 > (m2 / m1) * 2.0, "v1={v1} v2={v2} m1={m1} m2={m2}");
    }

    #[test]
    fn hotspots_have_requested_degree() {
        let g = with_hotspots(1000, 10, 3, 5000, GenOptions::seeded(3));
        for h in 0..3 {
            assert!(g.degree(h) >= 5000, "hotspot {h} degree {}", g.degree(h));
        }
        // Ordinary vertices stay near the base degree (plus hotspot links).
        let (mean, _) = g.degree_stats();
        assert!(mean < 50.0);
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let g = presets::twitter_like(12, GenOptions::seeded(4));
        assert_eq!(g.vertex_count(), 4096);
        let (mean, var) = g.degree_stats();
        // Heavy tail: variance far exceeds the mean.
        assert!(var > mean * 10.0, "mean {mean} var {var}");
        assert!(g.max_degree() > 100);
    }

    #[test]
    fn friendster_like_less_skewed_than_twitter_like() {
        let f = presets::friendster_like(12, GenOptions::seeded(5));
        let t = presets::twitter_like(12, GenOptions::seeded(5));
        let (_, vf) = f.degree_stats();
        let (_, vt) = t.degree_stats();
        assert!(
            vt > vf * 2.0,
            "twitter-like var {vt} vs friendster-like {vf}"
        );
    }

    #[test]
    fn weighted_generation_in_range() {
        let g = uniform_degree(100, 4, GenOptions::paper_weighted(6));
        assert!(g.is_weighted());
        for v in 0..100 {
            for &w in g.edge_weights(v).unwrap() {
                assert!((1.0..5.0).contains(&w), "weight {w}");
            }
        }
    }

    #[test]
    fn power_law_weights_bounded_and_skewed() {
        let opts = GenOptions {
            weights: WeightKind::PowerLaw {
                max: 100.0,
                exponent: 2.0,
            },
            edge_types: None,
            seed: 7,
        };
        let g = uniform_degree(500, 10, opts);
        let mut below_10 = 0usize;
        let mut total = 0usize;
        for v in 0..500 {
            for &w in g.edge_weights(v).unwrap() {
                assert!((1.0..=100.0).contains(&w));
                total += 1;
                if w < 10.0 {
                    below_10 += 1;
                }
            }
        }
        // Power law with exponent 2: ~90% of mass below 10.
        assert!(below_10 as f64 / total as f64 > 0.8);
    }

    #[test]
    fn typed_generation_covers_all_types() {
        let opts = GenOptions {
            weights: WeightKind::None,
            edge_types: Some(5),
            seed: 8,
        };
        let g = uniform_degree(500, 10, opts);
        assert!(g.is_typed());
        let mut seen = [false; 5];
        for v in 0..500 {
            for &t in g.edge_types_of(v).unwrap() {
                assert!(t < 5);
                seen[t as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn undirected_symmetry_holds() {
        let g = presets::livejournal_like(10, GenOptions::seeded(11));
        for v in 0..g.vertex_count() as u32 {
            for x in g.neighbors(v) {
                assert!(g.has_edge(*x, v), "asymmetric edge ({v}, {x})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad degree range")]
    fn power_law_rejects_bad_range() {
        truncated_power_law(10, 2.0, 5, 4, GenOptions::default());
    }
}
