//! Plain-text edge-list I/O.
//!
//! The format is the de-facto standard used by SNAP and most graph
//! datasets: one edge per line, whitespace-separated fields
//! `src dst [weight] [type]`, with `#`-prefixed comment lines ignored.
//! All vertices mentioned must be below the declared vertex count; use
//! [`load_edge_list_auto`] to infer the count from the data.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::{builder::GraphBuilder, CsrGraph, GraphError};

/// Which optional columns an edge list carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeListFormat {
    /// Third column is a weight.
    pub weighted: bool,
    /// Column after `dst` (and weight, if any) is an edge type.
    pub typed: bool,
    /// Treat edges as undirected (store both directions).
    pub undirected: bool,
}

impl Default for EdgeListFormat {
    fn default() -> Self {
        EdgeListFormat {
            weighted: false,
            typed: false,
            undirected: true,
        }
    }
}

/// Parses an edge list from a reader with a declared vertex count.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and
/// [`GraphError::VertexOutOfRange`] when an id is at or beyond
/// `vertex_count`.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    vertex_count: usize,
    format: EdgeListFormat,
) -> Result<CsrGraph, GraphError> {
    let mut b = if format.undirected {
        GraphBuilder::undirected(vertex_count)
    } else {
        GraphBuilder::directed(vertex_count)
    };
    if format.weighted {
        b = b.with_weights();
    }
    if format.typed {
        b = b.with_edge_types();
    }

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse_u32 = |field: Option<&str>, what: &str| -> Result<u32, GraphError> {
            field
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<u32>()
                .map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what}: {e}"),
                })
        };
        let src = parse_u32(fields.next(), "source vertex")?;
        let dst = parse_u32(fields.next(), "destination vertex")?;
        for v in [src, dst] {
            if v as usize >= vertex_count {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    vertex_count,
                });
            }
        }
        let weight = if format.weighted {
            let w: f32 = fields
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: "missing weight".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad weight: {e}"),
                })?;
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidWeight { weight: w });
            }
            w
        } else {
            1.0
        };
        let edge_type = if format.typed {
            fields
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: "missing edge type".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad edge type: {e}"),
                })?
        } else {
            0
        };
        b.add_full_edge(src, dst, weight, edge_type);
    }
    Ok(b.build())
}

/// Loads an edge list from a file, inferring the vertex count as
/// `max id + 1`.
///
/// Reads the file twice: once to find the maximum id, once to build.
///
/// # Errors
///
/// Propagates I/O and parse failures as [`GraphError`].
pub fn load_edge_list_auto(path: &Path, format: EdgeListFormat) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut max_id: u32 = 0;
    let mut any = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        for what in ["source", "destination"] {
            let id: u32 = fields
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("missing {what} vertex"),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what} vertex: {e}"),
                })?;
            max_id = max_id.max(id);
            any = true;
        }
    }
    let vertex_count = if any { max_id as usize + 1 } else { 0 };
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file), vertex_count, format)
}

/// Writes a graph as a plain-text edge list.
///
/// Undirected graphs (which store each edge twice) emit each edge once,
/// with `src <= dst`; set `dedup_undirected` to `false` to dump the raw
/// directed form.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_edge_list<W: Write>(
    graph: &CsrGraph,
    writer: W,
    dedup_undirected: bool,
) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    for v in 0..graph.vertex_count() as u32 {
        for e in graph.edges(v) {
            if dedup_undirected && e.dst < v {
                continue;
            }
            write!(out, "{} {}", e.src, e.dst)?;
            if graph.is_weighted() {
                write!(out, " {}", e.weight)?;
            }
            if graph.is_typed() {
                write!(out, " {}", e.edge_type)?;
            }
            writeln!(out)?;
        }
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_edge_list() {
        let data = "# comment\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(Cursor::new(data), 3, EdgeListFormat::default()).unwrap();
        assert_eq!(g.edge_count(), 6); // undirected, stored twice
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn parses_weighted_typed_directed() {
        let fmt = EdgeListFormat {
            weighted: true,
            typed: true,
            undirected: false,
        };
        let data = "0 1 2.5 3\n1 0 4.0 1\n";
        let g = read_edge_list(Cursor::new(data), 2, fmt).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(0, 0).weight, 2.5);
        assert_eq!(g.edge(0, 0).edge_type, 3);
        assert_eq!(g.edge(1, 0).weight, 4.0);
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = read_edge_list(Cursor::new("0 5\n"), 3, EdgeListFormat::default()).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err =
            read_edge_list(Cursor::new("0 1\nxyz 2\n"), 3, EdgeListFormat::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_weight_column() {
        let fmt = EdgeListFormat {
            weighted: true,
            typed: false,
            undirected: true,
        };
        let err = read_edge_list(Cursor::new("0 1\n"), 2, fmt).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_negative_weight() {
        let fmt = EdgeListFormat {
            weighted: true,
            typed: false,
            undirected: true,
        };
        let err = read_edge_list(Cursor::new("0 1 -2.0\n"), 2, fmt).unwrap_err();
        assert!(matches!(err, GraphError::InvalidWeight { .. }));
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("kk_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");

        let g = crate::gen::uniform_degree(50, 4, crate::gen::GenOptions::paper_weighted(3));
        let file = std::fs::File::create(&path).unwrap();
        write_edge_list(&g, file, true).unwrap();

        let fmt = EdgeListFormat {
            weighted: true,
            typed: false,
            undirected: true,
        };
        let g2 = load_edge_list_auto(&path, fmt).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in 0..g.vertex_count() as u32 {
            assert_eq!(g.neighbors(v), g2.neighbors(v), "vertex {v}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n"), 0, EdgeListFormat::default()).unwrap();
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn auto_load_infers_vertex_count() {
        let dir = std::env::temp_dir().join("kk_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "0 7\n3 2\n").unwrap();
        let g = load_edge_list_auto(&path, EdgeListFormat::default()).unwrap();
        assert_eq!(g.vertex_count(), 8);
        std::fs::remove_file(&path).ok();
    }
}
