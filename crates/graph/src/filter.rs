//! Bloom-filter acceleration for neighbor membership queries.
//!
//! Second-order walks hammer one primitive: "does `t` have an edge to
//! `x`?". The CSR's sorted adjacency answers in O(log d), but at
//! million-edge hubs that is ~20 cache-missing probes per query. The
//! original KnightKing pairs the adjacency with per-vertex Bloom filters:
//! a negative filter probe (the common case — most candidate pairs are
//! *not* adjacent) answers in O(1) with a couple of cache lines, and only
//! positive probes fall back to the exact binary search.
//!
//! [`NeighborIndex`] implements that scheme for the vertices where it
//! pays off (degree above a threshold); small vertices stay on plain
//! binary search, which already fits in one cache line.

use knightking_sampling::SplitMix64;

use crate::{CsrGraph, VertexId};

/// Bits per edge in each filter. 10 bits/key with 4 hash probes gives a
/// false-positive rate under 2 % — false positives only cost a fallback
/// binary search, never a wrong answer.
const BITS_PER_EDGE: usize = 10;

/// Number of hash probes per query.
const HASHES: u32 = 4;

/// Per-vertex Bloom filters over high-degree adjacency lists.
#[derive(Debug, Clone)]
pub struct NeighborIndex {
    /// Per-vertex slice into `bits`, or `u64::MAX..u64::MAX` sentinel for
    /// unfiltered (low-degree) vertices. Stored as `(start, len_words)`.
    spans: Vec<(u64, u32)>,
    /// Concatenated filter words.
    bits: Vec<u64>,
    /// Vertices below this degree have no filter.
    min_degree: usize,
}

impl NeighborIndex {
    /// Builds filters for every vertex of `graph` with degree at least
    /// `min_degree`.
    pub fn build(graph: &CsrGraph, min_degree: usize) -> Self {
        let v_count = graph.vertex_count();
        let mut spans = Vec::with_capacity(v_count);
        let mut bits: Vec<u64> = Vec::new();
        for v in 0..v_count as VertexId {
            let deg = graph.degree(v);
            if deg < min_degree {
                spans.push((u64::MAX, 0));
                continue;
            }
            let words = (deg * BITS_PER_EDGE).div_ceil(64).max(1);
            let start = bits.len() as u64;
            bits.resize(bits.len() + words, 0);
            let slice = &mut bits[start as usize..];
            for &x in graph.neighbors(v) {
                let mut h = SplitMix64::new((v as u64) << 32 | x as u64);
                for _ in 0..HASHES {
                    let bit = h.next_u64() as usize % (words * 64);
                    slice[bit / 64] |= 1u64 << (bit % 64);
                }
            }
            spans.push((start, words as u32));
        }
        NeighborIndex {
            spans,
            bits,
            min_degree,
        }
    }

    /// Whether vertex `v` carries a filter.
    pub fn has_filter(&self, v: VertexId) -> bool {
        self.spans[v as usize].0 != u64::MAX
    }

    /// The degree threshold this index was built with.
    pub fn min_degree(&self) -> usize {
        self.min_degree
    }

    /// Exact membership test: Bloom pre-filter (when present) plus
    /// binary-search confirmation.
    ///
    /// Always returns the same answer as [`CsrGraph::has_edge`]; the
    /// filter only short-circuits negatives.
    #[inline]
    pub fn has_edge(&self, graph: &CsrGraph, v: VertexId, x: VertexId) -> bool {
        let (start, words) = self.spans[v as usize];
        if start != u64::MAX {
            let slice = &self.bits[start as usize..start as usize + words as usize];
            let total_bits = words as usize * 64;
            let mut h = SplitMix64::new((v as u64) << 32 | x as u64);
            for _ in 0..HASHES {
                let bit = h.next_u64() as usize % total_bits;
                if slice[bit / 64] & (1u64 << (bit % 64)) == 0 {
                    return false; // definitive negative
                }
            }
        }
        graph.has_edge(v, x)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<(u64, u32)>() + self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn agrees_with_binary_search_everywhere() {
        let g = gen::presets::twitter_like(10, gen::GenOptions::seeded(200));
        let idx = NeighborIndex::build(&g, 8);
        for v in 0..g.vertex_count() as VertexId {
            // All real neighbors must test positive.
            for &x in g.neighbors(v) {
                assert!(idx.has_edge(&g, v, x), "({v}, {x}) false negative");
            }
            // A spread of non-neighbors must test negative.
            for probe in 0..20u32 {
                let x = (probe * 53) % g.vertex_count() as u32;
                assert_eq!(
                    idx.has_edge(&g, v, x),
                    g.has_edge(v, x),
                    "disagreement at ({v}, {x})"
                );
            }
        }
    }

    #[test]
    fn low_degree_vertices_skip_filters() {
        let g = gen::uniform_degree(100, 4, gen::GenOptions::seeded(201));
        let idx = NeighborIndex::build(&g, 8);
        assert!((0..100).all(|v| !idx.has_filter(v)));
        // Still answers correctly through the fallback.
        for v in 0..100u32 {
            for &x in g.neighbors(v) {
                assert!(idx.has_edge(&g, v, x));
            }
        }
    }

    #[test]
    fn high_degree_vertices_get_filters() {
        let g = gen::with_hotspots(500, 4, 2, 400, gen::GenOptions::seeded(202));
        let idx = NeighborIndex::build(&g, 100);
        assert!(idx.has_filter(0) && idx.has_filter(1));
        assert!(!idx.has_filter(499));
        assert!(idx.heap_bytes() > 0);
        assert_eq!(idx.min_degree(), 100);
    }

    #[test]
    fn filter_rejects_most_non_neighbors_without_fallback() {
        // Statistical check on the false-positive rate: probe many absent
        // pairs and count how often the Bloom stage alone would pass them
        // (measured indirectly: with a ~2% FP target, the exact test and
        // a pure-Bloom test disagree rarely, and never in the direction
        // of a false negative).
        let g = gen::uniform_degree(200, 64, gen::GenOptions::seeded(203));
        let idx = NeighborIndex::build(&g, 16);
        let mut checked = 0;
        for v in 0..200u32 {
            for x in 0..200u32 {
                assert_eq!(idx.has_edge(&g, v, x), g.has_edge(v, x));
                checked += 1;
            }
        }
        assert_eq!(checked, 40_000);
    }

    #[test]
    fn empty_graph() {
        let g = crate::GraphBuilder::directed(0).build();
        let idx = NeighborIndex::build(&g, 1);
        assert_eq!(idx.heap_bytes(), 0);
    }
}
