//! Incremental construction of [`CsrGraph`]s from edge lists.
//!
//! The builder collects raw edges, then performs a two-pass counting sort
//! into CSR form — O(V + E) time, no per-vertex allocation — followed by a
//! per-vertex sort of adjacency by destination (required for the O(log d)
//! neighbor queries of second-order walks).

use crate::{csr::CsrGraph, EdgeTypeId, VertexId, Weight};

/// Builds a [`CsrGraph`] edge by edge.
///
/// # Examples
///
/// ```
/// use knightking_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::undirected(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.edge_count(), 4); // undirected edges stored twice
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    vertex_count: usize,
    undirected: bool,
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
    edge_types: Option<Vec<EdgeTypeId>>,
}

impl GraphBuilder {
    /// Starts a directed graph with `vertex_count` vertices.
    pub fn directed(vertex_count: usize) -> Self {
        GraphBuilder {
            vertex_count,
            undirected: false,
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: None,
            edge_types: None,
        }
    }

    /// Starts an undirected graph with `vertex_count` vertices.
    ///
    /// Every added edge is stored in both directions, per §6.1.
    pub fn undirected(vertex_count: usize) -> Self {
        GraphBuilder {
            undirected: true,
            ..GraphBuilder::directed(vertex_count)
        }
    }

    /// Enables per-edge weights (the static component `Ps`).
    ///
    /// # Panics
    ///
    /// Panics if edges were already added.
    pub fn with_weights(mut self) -> Self {
        assert!(self.srcs.is_empty(), "enable weights before adding edges");
        self.weights = Some(Vec::new());
        self
    }

    /// Enables per-edge types (for heterogeneous / Meta-path graphs).
    ///
    /// # Panics
    ///
    /// Panics if edges were already added.
    pub fn with_edge_types(mut self) -> Self {
        assert!(self.srcs.is_empty(), "enable types before adding edges");
        self.edge_types = Some(Vec::new());
        self
    }

    /// Number of vertices declared at construction.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges added so far (before direction doubling).
    pub fn added_edges(&self) -> usize {
        self.srcs.len()
    }

    fn push(&mut self, src: VertexId, dst: VertexId, weight: Weight, edge_type: EdgeTypeId) {
        assert!(
            (src as usize) < self.vertex_count && (dst as usize) < self.vertex_count,
            "edge ({src}, {dst}) out of range (|V| = {})",
            self.vertex_count
        );
        self.srcs.push(src);
        self.dsts.push(dst);
        if let Some(w) = &mut self.weights {
            assert!(
                weight.is_finite() && weight >= 0.0,
                "invalid edge weight {weight}"
            );
            w.push(weight);
        }
        if let Some(t) = &mut self.edge_types {
            t.push(edge_type);
        }
    }

    /// Adds an unweighted, untyped edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        self.push(src, dst, 1.0, 0);
    }

    /// Adds a weighted edge. Requires [`GraphBuilder::with_weights`].
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: Weight) {
        self.push(src, dst, weight, 0);
    }

    /// Adds a typed edge. Requires [`GraphBuilder::with_edge_types`].
    pub fn add_typed_edge(&mut self, src: VertexId, dst: VertexId, edge_type: EdgeTypeId) {
        self.push(src, dst, 1.0, edge_type);
    }

    /// Adds a fully-specified edge.
    pub fn add_full_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        weight: Weight,
        edge_type: EdgeTypeId,
    ) {
        self.push(src, dst, weight, edge_type);
    }

    /// Finalizes into an immutable [`CsrGraph`].
    ///
    /// Runs a counting sort by source, then sorts each vertex's adjacency
    /// by destination (weights and types permuted alongside).
    pub fn build(self) -> CsrGraph {
        let v = self.vertex_count;
        let directed_edges = if self.undirected {
            self.srcs.len() * 2
        } else {
            self.srcs.len()
        };

        // Pass 1: out-degrees.
        let mut offsets = vec![0u64; v + 1];
        for i in 0..self.srcs.len() {
            offsets[self.srcs[i] as usize + 1] += 1;
            if self.undirected {
                offsets[self.dsts[i] as usize + 1] += 1;
            }
        }
        for i in 0..v {
            offsets[i + 1] += offsets[i];
        }

        // Pass 2: scatter.
        let mut targets = vec![0 as VertexId; directed_edges];
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| vec![0.0 as Weight; directed_edges]);
        let mut edge_types = self
            .edge_types
            .as_ref()
            .map(|_| vec![0 as EdgeTypeId; directed_edges]);
        let mut cursor: Vec<u64> = offsets[..v].to_vec();
        let place = |src: VertexId,
                     dst: VertexId,
                     i: usize,
                     cursor: &mut [u64],
                     targets: &mut [VertexId],
                     weights: &mut Option<Vec<Weight>>,
                     edge_types: &mut Option<Vec<EdgeTypeId>>| {
            let pos = cursor[src as usize] as usize;
            cursor[src as usize] += 1;
            targets[pos] = dst;
            if let (Some(out), Some(src_w)) = (weights.as_mut(), self.weights.as_ref()) {
                out[pos] = src_w[i];
            }
            if let (Some(out), Some(src_t)) = (edge_types.as_mut(), self.edge_types.as_ref()) {
                out[pos] = src_t[i];
            }
        };
        for i in 0..self.srcs.len() {
            place(
                self.srcs[i],
                self.dsts[i],
                i,
                &mut cursor,
                &mut targets,
                &mut weights,
                &mut edge_types,
            );
            if self.undirected {
                place(
                    self.dsts[i],
                    self.srcs[i],
                    i,
                    &mut cursor,
                    &mut targets,
                    &mut weights,
                    &mut edge_types,
                );
            }
        }

        // Pass 3: sort each adjacency range by destination, carrying the
        // parallel arrays along via an index permutation.
        for vtx in 0..v {
            let lo = offsets[vtx] as usize;
            let hi = offsets[vtx + 1] as usize;
            if hi - lo <= 1 {
                continue;
            }
            let range = &targets[lo..hi];
            if range.windows(2).all(|w| w[0] <= w[1]) {
                continue;
            }
            let mut perm: Vec<usize> = (0..hi - lo).collect();
            perm.sort_unstable_by_key(|&i| targets[lo + i]);
            apply_permutation(&mut targets[lo..hi], &perm);
            if let Some(w) = &mut weights {
                apply_permutation(&mut w[lo..hi], &perm);
            }
            if let Some(t) = &mut edge_types {
                apply_permutation(&mut t[lo..hi], &perm);
            }
        }

        CsrGraph::from_parts(offsets, targets, weights, edge_types)
    }
}

/// Reorders `data` so that `data[i] = old_data[perm[i]]`.
fn apply_permutation<T: Copy>(data: &mut [T], perm: &[usize]) {
    let snapshot: Vec<T> = data.to_vec();
    for (i, &p) in perm.iter().enumerate() {
        data[i] = snapshot[p];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sort_places_every_edge() {
        let mut b = GraphBuilder::directed(4);
        let edges = [(2u32, 0u32), (0, 3), (2, 1), (1, 1), (0, 0), (3, 2)];
        for (s, d) in edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        assert_eq!(g.edge_count(), 6);
        for (s, d) in edges {
            assert!(g.has_edge(s, d), "missing edge ({s}, {d})");
        }
    }

    #[test]
    fn weights_follow_sorted_adjacency() {
        let mut b = GraphBuilder::directed(3).with_weights();
        b.add_weighted_edge(0, 2, 20.0);
        b.add_weighted_edge(0, 1, 10.0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0).unwrap(), &[10.0, 20.0]);
    }

    #[test]
    fn undirected_weights_mirrored() {
        let mut b = GraphBuilder::undirected(3).with_weights();
        b.add_weighted_edge(0, 1, 3.0);
        b.add_weighted_edge(2, 0, 4.0);
        let g = b.build();
        assert_eq!(g.edge_weights(0).unwrap(), &[3.0, 4.0]);
        assert_eq!(g.edge_weights(1).unwrap(), &[3.0]);
        assert_eq!(g.edge_weights(2).unwrap(), &[4.0]);
    }

    #[test]
    fn types_follow_sorted_adjacency_undirected() {
        let mut b = GraphBuilder::undirected(3).with_edge_types();
        b.add_typed_edge(0, 2, 9);
        b.add_typed_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.edge_types_of(0).unwrap(), &[5, 9]);
        assert_eq!(g.edge_types_of(2).unwrap(), &[9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::directed(2).add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn nan_weight_panics() {
        GraphBuilder::directed(2)
            .with_weights()
            .add_weighted_edge(0, 1, f32::NAN);
    }

    #[test]
    #[should_panic(expected = "before adding edges")]
    fn late_with_weights_panics() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        let _ = b.with_weights();
    }

    #[test]
    fn apply_permutation_works() {
        let mut data = [10, 20, 30, 40];
        apply_permutation(&mut data, &[3, 1, 0, 2]);
        assert_eq!(data, [40, 20, 10, 30]);
    }

    #[test]
    fn accessors() {
        let mut b = GraphBuilder::undirected(5);
        assert_eq!(b.vertex_count(), 5);
        b.add_edge(0, 1);
        assert_eq!(b.added_edges(), 1);
    }
}
