//! Compressed sparse row graph storage (§6.1 of the paper).
//!
//! All out-edges of a vertex are stored contiguously and *sorted by
//! destination*, which is what lets a node answer "is `x` a neighbor of
//! `t`?" — the walker-to-vertex state query behind second-order walks — in
//! O(log d) with no auxiliary index. Undirected graphs store each edge
//! twice, once per direction, exactly as the paper prescribes.

use crate::{EdgeTypeId, VertexId, Weight};

/// An immutable graph in compressed sparse row form.
///
/// Constructed through [`crate::GraphBuilder`]; never mutated afterwards,
/// so it can be shared freely across the simulated cluster's node threads.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` (len `|V| + 1`).
    offsets: Vec<u64>,
    /// Destination of each edge, sorted within each vertex's range.
    targets: Vec<VertexId>,
    /// Optional per-edge weights, parallel to `targets`.
    weights: Option<Vec<Weight>>,
    /// Optional per-edge types, parallel to `targets`.
    edge_types: Option<Vec<EdgeTypeId>>,
}

/// A borrowed view of one out-edge, handed to user transition functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeView {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (`1.0` on unweighted graphs).
    pub weight: Weight,
    /// Edge type (`0` on homogeneous graphs).
    pub edge_type: EdgeTypeId,
    /// Index of this edge within `src`'s out-edge range.
    pub index: usize,
}

impl CsrGraph {
    /// Assembles a graph from raw CSR arrays.
    ///
    /// Intended for [`crate::GraphBuilder`]; invariants (monotone offsets,
    /// sorted adjacency, parallel array lengths) are asserted in debug
    /// builds.
    pub(crate) fn from_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
        edge_types: Option<Vec<EdgeTypeId>>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        if let Some(w) = &weights {
            debug_assert_eq!(w.len(), targets.len());
        }
        if let Some(t) = &edge_types {
            debug_assert_eq!(t.len(), targets.len());
        }
        debug_assert!((0..offsets.len() - 1).all(|v| {
            let range = offsets[v] as usize..offsets[v + 1] as usize;
            targets[range].windows(2).all(|w| w[0] <= w[1])
        }));
        CsrGraph {
            offsets,
            targets,
            weights,
            edge_types,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges. An undirected graph reports
    /// twice its logical edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Destinations of `v`'s out-edges, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Weights of `v`'s out-edges, or `None` on unweighted graphs.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights.as_ref().map(|w| {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            &w[lo..hi]
        })
    }

    /// Types of `v`'s out-edges, or `None` on homogeneous graphs.
    #[inline]
    pub fn edge_types_of(&self, v: VertexId) -> Option<&[EdgeTypeId]> {
        self.edge_types.as_ref().map(|t| {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            &t[lo..hi]
        })
    }

    /// Whether the graph carries per-edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Whether the graph carries per-edge types.
    #[inline]
    pub fn is_typed(&self) -> bool {
        self.edge_types.is_some()
    }

    /// The `i`-th out-edge of `v` as an [`EdgeView`].
    ///
    /// # Panics
    ///
    /// Panics if `v` or `i` is out of range.
    #[inline]
    pub fn edge(&self, v: VertexId, i: usize) -> EdgeView {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        let pos = lo + i;
        assert!(pos < hi, "edge index {i} out of range for vertex {v}");
        EdgeView {
            src: v,
            dst: self.targets[pos],
            weight: self.weights.as_ref().map_or(1.0, |w| w[pos]),
            edge_type: self.edge_types.as_ref().map_or(0, |t| t[pos]),
            index: i,
        }
    }

    /// Checks whether `v` has an out-edge to `x` in O(log d).
    ///
    /// This is the primitive behind `postNeighborQuery`: node2vec's
    /// distance test `d_tx ∈ {0, 1, 2}` reduces to this membership check
    /// at the node owning `t`.
    #[inline]
    pub fn has_edge(&self, v: VertexId, x: VertexId) -> bool {
        self.neighbors(v).binary_search(&x).is_ok()
    }

    /// Finds the index (within `v`'s out-edges) of some edge leading to
    /// `x`, in O(log d).
    ///
    /// With parallel edges, any one of them may be returned; the rejection
    /// sampler's outlier path only needs *an* edge with the declared
    /// destination.
    #[inline]
    pub fn find_edge(&self, v: VertexId, x: VertexId) -> Option<usize> {
        self.neighbors(v).binary_search(&x).ok()
    }

    /// Returns the contiguous range of edge indices (within `v`'s
    /// out-edges) whose destination is `x`, in O(log d).
    ///
    /// Empty when no such edge exists; longer than 1 for parallel edges.
    /// The rejection sampler's outlier path uses this to spread appendix
    /// probability mass across parallel outlier edges exactly.
    pub fn edge_range(&self, v: VertexId, x: VertexId) -> std::ops::Range<usize> {
        let adj = self.neighbors(v);
        let lo = adj.partition_point(|&d| d < x);
        let hi = adj.partition_point(|&d| d <= x);
        lo..hi
    }

    /// Iterates the out-edges of `v` as [`EdgeView`]s.
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = EdgeView> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |pos| EdgeView {
            src: v,
            dst: self.targets[pos],
            weight: self.weights.as_ref().map_or(1.0, |w| w[pos]),
            edge_type: self.edge_types.as_ref().map_or(0, |t| t[pos]),
            index: pos - lo,
        })
    }

    /// Sum of `v`'s out-edge weights (its out-degree when unweighted).
    pub fn weight_sum(&self, v: VertexId) -> f64 {
        match self.edge_weights(v) {
            Some(ws) => ws.iter().map(|&w| w as f64).sum(),
            None => self.degree(v) as f64,
        }
    }

    /// Mean and variance of the out-degree distribution (Table 2 columns).
    pub fn degree_stats(&self) -> (f64, f64) {
        knightking_sampling::stats::mean_variance(
            (0..self.vertex_count()).map(|v| self.degree(v as VertexId) as f64),
        )
    }

    /// Largest out-degree in the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Hints that `v`'s row bounds (`offsets[v]`, `offsets[v + 1]`) are
    /// about to be read.
    ///
    /// First prefetch stage of the interleaved engine: both offsets share
    /// a cache line except at line boundaries, so one hint per line
    /// suffices. Purely a performance hint — never faults, even for
    /// out-of-range `v`.
    #[inline]
    pub fn prefetch_row_bounds(&self, v: VertexId) {
        let p = self.offsets.as_ptr().wrapping_add(v as usize);
        knightking_sampling::prefetch::read(p);
        knightking_sampling::prefetch::read(p.wrapping_add(1));
    }

    /// Hints that `v`'s edge payload (targets, weights) is about to be
    /// scanned, reading the (by now cached) row bounds to locate it.
    ///
    /// Second prefetch stage of the interleaved engine, issued closer to
    /// use than [`CsrGraph::prefetch_row_bounds`]. Capped at a few cache
    /// lines per array so hub vertices don't flush the cache they are
    /// meant to warm.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (same contract as [`CsrGraph::degree`]).
    #[inline]
    pub fn prefetch_row_payload(&self, v: VertexId) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        let len = hi - lo;
        if len == 0 {
            return;
        }
        knightking_sampling::prefetch::span(self.targets.as_ptr().wrapping_add(lo), len);
        if let Some(w) = &self.weights {
            knightking_sampling::prefetch::span(w.as_ptr().wrapping_add(lo), len);
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 8
            + self.targets.len() * 4
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)
            + self.edge_types.as_ref().map_or(0, |t| t.len())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn small_directed_graph_accessors() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build();

        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(3), 1);
        assert!(!g.is_weighted());
        assert!(!g.is_typed());
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.find_edge(1, 3), Some(0));
        assert_eq!(g.find_edge(1, 0), None);
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        b.add_edge(0, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[0, 1, 2]);
    }

    #[test]
    fn undirected_stores_both_directions() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn weighted_edges_round_trip() {
        let mut b = GraphBuilder::undirected(2).with_weights();
        b.add_weighted_edge(0, 1, 2.5);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0).unwrap(), &[2.5]);
        assert_eq!(g.edge_weights(1).unwrap(), &[2.5]);
        assert_eq!(g.edge(0, 0).weight, 2.5);
        assert!((g.weight_sum(0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn typed_edges_round_trip() {
        let mut b = GraphBuilder::directed(3).with_edge_types();
        b.add_typed_edge(0, 1, 4);
        b.add_typed_edge(0, 2, 7);
        let g = b.build();
        assert!(g.is_typed());
        // Adjacency sorted by destination, so types follow the sort.
        assert_eq!(g.edge_types_of(0).unwrap(), &[4, 7]);
        assert_eq!(g.edge(0, 1).edge_type, 7);
    }

    #[test]
    fn isolated_vertices_have_empty_ranges() {
        let mut b = GraphBuilder::directed(5);
        b.add_edge(0, 4);
        let g = b.build();
        for v in 1..4 {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn self_loops_and_parallel_edges_kept() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
        assert!(g.find_edge(0, 1).is_some());
    }

    #[test]
    fn edge_range_covers_parallel_edges() {
        let mut b = GraphBuilder::directed(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        let g = b.build();
        assert_eq!(g.edge_range(0, 1), 0..1);
        assert_eq!(g.edge_range(0, 2), 1..3);
        assert_eq!(g.edge_range(0, 3), 3..4);
        assert!(g.edge_range(0, 0).is_empty());
        assert!(g.edge_range(1, 0).is_empty());
    }

    #[test]
    fn edge_views_enumerate_in_order() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        let g = b.build();
        let views: Vec<_> = g.edges(0).collect();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].dst, 1);
        assert_eq!(views[0].index, 0);
        assert_eq!(views[1].dst, 2);
        assert_eq!(views[1].index, 1);
        assert_eq!(views[0].weight, 1.0);
    }

    #[test]
    fn degree_stats_match() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build();
        let (mean, var) = g.degree_stats();
        assert!((mean - 1.0).abs() < 1e-12);
        // Degrees 2, 1, 0 → variance 2/3.
        assert!((var - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::directed(0).build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_index_panics() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1);
        let g = b.build();
        g.edge(0, 1);
    }
}
