//! Compact binary graph format for fast load/save.
//!
//! Text edge lists are convenient but parse at tens of MB/s; a production
//! engine reloads multi-gigabyte graphs, so we provide a raw-CSR binary
//! format that round-trips a [`CsrGraph`] at memory-copy speed:
//!
//! ```text
//! magic   "KKG1"                     4 bytes
//! flags   bit0 = weighted, bit1 = typed
//! |V|     u64 LE
//! |E|     u64 LE  (stored directed edge count)
//! offsets (|V| + 1) × u64 LE
//! targets |E| × u32 LE
//! weights |E| × f32 LE               (if weighted)
//! types   |E| × u8                   (if typed)
//! ```
//!
//! The format stores the *materialized* CSR — an undirected graph that
//! was built with doubled edges stays doubled, so loading it back yields
//! an identical graph without knowing how it was constructed.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{CsrGraph, GraphError, VertexId};

const MAGIC: &[u8; 4] = b"KKG1";
/// Magic prefix shared by every format version; the fourth byte is the
/// ASCII version digit.
const MAGIC_FAMILY: &[u8; 3] = b"KKG";
const VERSION: u8 = b'1';
const FLAG_WEIGHTED: u8 = 1;
const FLAG_TYPED: u8 = 2;

fn write_u64<W: Write>(w: &mut W, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serializes a graph to the binary format.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_binary<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut out = BufWriter::new(writer);
    out.write_all(MAGIC)?;
    let mut flags = 0u8;
    if graph.is_weighted() {
        flags |= FLAG_WEIGHTED;
    }
    if graph.is_typed() {
        flags |= FLAG_TYPED;
    }
    out.write_all(&[flags])?;
    write_u64(&mut out, graph.vertex_count() as u64)?;
    write_u64(&mut out, graph.edge_count() as u64)?;

    let mut running = 0u64;
    write_u64(&mut out, 0)?;
    for v in 0..graph.vertex_count() as VertexId {
        running += graph.degree(v) as u64;
        write_u64(&mut out, running)?;
    }
    for v in 0..graph.vertex_count() as VertexId {
        for &x in graph.neighbors(v) {
            out.write_all(&x.to_le_bytes())?;
        }
    }
    if graph.is_weighted() {
        for v in 0..graph.vertex_count() as VertexId {
            for &w in graph.edge_weights(v).expect("weighted") {
                out.write_all(&w.to_le_bytes())?;
            }
        }
    }
    if graph.is_typed() {
        for v in 0..graph.vertex_count() as VertexId {
            out.write_all(graph.edge_types_of(v).expect("typed"))?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Deserializes a graph from the binary format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on a bad magic/flags/structure and
/// propagates I/O failures.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut input = BufReader::new(reader);
    let bad = |message: &str| GraphError::Parse {
        line: 0,
        message: message.to_string(),
    };

    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        // Distinguish a graph from a newer tool (actionable: upgrade or
        // re-export) from a file that is not a KKG graph at all.
        if &magic[..3] == MAGIC_FAMILY && magic[3].is_ascii_digit() && magic[3] > VERSION {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "KKG version {} is newer than this build supports (reads version {})",
                    magic[3] as char, VERSION as char
                ),
            });
        }
        return Err(GraphError::Parse {
            line: 0,
            message: format!(
                "not a KnightKing binary graph (magic {:?}, expected \"KKG1\")",
                String::from_utf8_lossy(&magic)
            ),
        });
    }
    let mut flags = [0u8; 1];
    input.read_exact(&mut flags)?;
    let flags = flags[0];
    if flags & !(FLAG_WEIGHTED | FLAG_TYPED) != 0 {
        return Err(bad("unknown flags"));
    }
    let v = read_u64(&mut input)? as usize;
    let e = read_u64(&mut input)? as usize;

    let mut offsets = Vec::with_capacity(v + 1);
    for _ in 0..=v {
        offsets.push(read_u64(&mut input)?);
    }
    if offsets[0] != 0 || *offsets.last().unwrap() as usize != e {
        return Err(bad("inconsistent offsets"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("offsets not monotone"));
    }

    let mut targets = vec![0 as VertexId; e];
    {
        let mut buf = vec![0u8; e * 4];
        input.read_exact(&mut buf)?;
        for (i, chunk) in buf.chunks_exact(4).enumerate() {
            let t = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if t as usize >= v {
                return Err(GraphError::VertexOutOfRange {
                    vertex: t,
                    vertex_count: v,
                });
            }
            targets[i] = t;
        }
    }
    // Adjacency sortedness is a structural invariant of the format.
    for vi in 0..v {
        let lo = offsets[vi] as usize;
        let hi = offsets[vi + 1] as usize;
        if targets[lo..hi].windows(2).any(|w| w[0] > w[1]) {
            return Err(bad("adjacency not sorted"));
        }
    }

    let weights = if flags & FLAG_WEIGHTED != 0 {
        let mut buf = vec![0u8; e * 4];
        input.read_exact(&mut buf)?;
        let mut ws = Vec::with_capacity(e);
        for chunk in buf.chunks_exact(4) {
            let w = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidWeight { weight: w });
            }
            ws.push(w);
        }
        Some(ws)
    } else {
        None
    };
    let edge_types = if flags & FLAG_TYPED != 0 {
        let mut buf = vec![0u8; e];
        input.read_exact(&mut buf)?;
        Some(buf)
    } else {
        None
    };

    Ok(CsrGraph::from_parts(offsets, targets, weights, edge_types))
}

/// Saves a graph to a binary file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_binary(graph: &CsrGraph, path: &Path) -> Result<(), GraphError> {
    write_binary(graph, std::fs::File::create(path)?)
}

/// Loads a graph from a binary file.
///
/// # Errors
///
/// Propagates I/O and format failures.
pub fn load_binary(path: &Path) -> Result<CsrGraph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn round_trip(g: &CsrGraph) -> CsrGraph {
        let mut buf = Vec::new();
        write_binary(g, &mut buf).unwrap();
        read_binary(std::io::Cursor::new(buf)).unwrap()
    }

    fn assert_graphs_equal(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in 0..a.vertex_count() as VertexId {
            assert_eq!(a.neighbors(v), b.neighbors(v));
            assert_eq!(a.edge_weights(v), b.edge_weights(v));
            assert_eq!(a.edge_types_of(v), b.edge_types_of(v));
        }
    }

    #[test]
    fn unweighted_round_trip() {
        let g = gen::presets::twitter_like(9, gen::GenOptions::seeded(230));
        assert_graphs_equal(&g, &round_trip(&g));
    }

    #[test]
    fn weighted_typed_round_trip() {
        let opts = gen::GenOptions {
            weights: gen::WeightKind::Uniform { lo: 1.0, hi: 5.0 },
            edge_types: Some(5),
            seed: 231,
        };
        let g = gen::uniform_degree(200, 8, opts);
        assert_graphs_equal(&g, &round_trip(&g));
    }

    #[test]
    fn empty_graph_round_trip() {
        let g = crate::GraphBuilder::directed(0).build();
        assert_graphs_equal(&g, &round_trip(&g));
    }

    #[test]
    fn isolated_vertices_round_trip() {
        let mut b = crate::GraphBuilder::directed(5);
        b.add_edge(1, 3);
        let g = b.build();
        assert_graphs_equal(&g, &round_trip(&g));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(std::io::Cursor::new(b"XXXX....".to_vec())).unwrap_err();
        assert!(err.to_string().contains("not a KnightKing binary graph"));
    }

    #[test]
    fn rejects_future_version_with_upgrade_hint() {
        let err = read_binary(std::io::Cursor::new(b"KKG7....".to_vec())).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("version 7"), "{msg}");
        assert!(msg.contains("newer than this build"), "{msg}");
    }

    #[test]
    fn text_edge_list_is_not_mistaken_for_future_version() {
        // A text file starting with digits/comments must produce the
        // "not a binary graph" error, not a version complaint.
        let err = read_binary(std::io::Cursor::new(b"0 1\n1 2\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("not a KnightKing binary graph"));
    }

    #[test]
    fn rejects_truncated_file() {
        let g = gen::uniform_degree(50, 4, gen::GenOptions::seeded(232));
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_binary(std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        // Hand-craft: 1 vertex, 1 edge pointing at vertex 7.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"KKG1");
        buf.push(0);
        buf.extend_from_slice(&1u64.to_le_bytes()); // |V|
        buf.extend_from_slice(&1u64.to_le_bytes()); // |E|
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        buf.extend_from_slice(&1u64.to_le_bytes()); // offsets[1]
        buf.extend_from_slice(&7u32.to_le_bytes()); // target
        let err = read_binary(std::io::Cursor::new(buf)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 7, .. }
        ));
    }

    #[test]
    fn file_based_save_load() {
        let dir = std::env::temp_dir().join("kk_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.kkg");
        let g = gen::presets::livejournal_like(8, gen::GenOptions::paper_weighted(233));
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_graphs_equal(&g, &g2);
        std::fs::remove_file(&path).ok();
    }
}
