#![warn(missing_docs)]

//! Graph substrate for the KnightKing random walk engine.
//!
//! Implements §6.1 of the paper plus everything the evaluation needs:
//!
//! * [`csr`] — compressed sparse row storage with per-vertex sorted
//!   adjacency, optional edge weights and edge types, and O(log d)
//!   neighbor membership checks (the primitive behind node2vec's
//!   walker-to-vertex state queries).
//! * [`builder`] — incremental construction from edge lists, with directed
//!   and undirected (stored-twice) modes.
//! * [`partition`] — 1-D contiguous vertex partitioning balancing
//!   `α·|V| + |E|` per node, exactly the heuristic of §6.1.
//! * [`gen`] — the synthetic graph generators used in §7.3 (uniform
//!   degree, truncated power-law, hotspot injection) plus an R-MAT
//!   generator standing in for the paper's real-world social graphs, and
//!   the `[1, 5)` random weight assignment of §7.1.
//! * [`io`] — plain-text edge-list load/save; [`binfmt`] — compact
//!   binary CSR format for fast reloads.
//! * [`filter`] — optional per-vertex Bloom filters accelerating the
//!   neighbor membership queries of second-order walks at hub vertices.

pub mod binfmt;
pub mod builder;
pub mod components;
pub mod csr;
pub mod filter;
pub mod gen;
pub mod io;
pub mod partition;

pub use builder::GraphBuilder;
pub use components::{connected_components, Components};
pub use csr::{CsrGraph, EdgeView};
pub use filter::NeighborIndex;
pub use partition::Partition;

/// Software-prefetch hints, re-exported so graph consumers (the dynamic
/// overlay, the engine's stage-interleaved hot loop) can warm rows
/// without a direct dependency on the sampling crate.
pub use knightking_sampling::prefetch;

/// Identifies a vertex. Dense ids in `[0, |V|)`.
pub type VertexId = u32;

/// Identifies an edge type (for heterogeneous graphs / Meta-path walks).
pub type EdgeTypeId = u8;

/// Edge weight, the static transition component `Ps` of biased walks.
pub type Weight = f32;

/// Errors produced by graph construction and loading.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id at or beyond the declared count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The declared vertex count.
        vertex_count: usize,
    },
    /// An edge weight was negative, NaN, or infinite.
    InvalidWeight {
        /// The offending weight.
        weight: Weight,
    },
    /// A malformed line was encountered while parsing an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => {
                write!(f, "vertex {vertex} out of range (|V| = {vertex_count})")
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "invalid edge weight {weight}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
