//! Connected components via union-find.
//!
//! Walk-corpus quality depends on connectivity — a walker never leaves
//! its component, so coverage and mixing claims only make sense per
//! component. The CLI's `stats` command and several examples report the
//! component structure computed here.
//!
//! Components are computed over the *undirected closure*: `u ∪ v` for
//! every stored edge `(u, v)`, which equals weak connectivity for
//! directed graphs and plain connectivity for undirected ones.

use crate::{CsrGraph, VertexId};

/// Union-find (disjoint set union) with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// separate.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }
}

/// Summary of a graph's (weak) connectivity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per vertex, densely renumbered from 0.
    pub labels: Vec<u32>,
    /// Vertex count of each component, indexed by label.
    pub sizes: Vec<u32>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 on an empty graph).
    pub fn largest(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Whether two vertices share a component.
    pub fn connected(&self, a: VertexId, b: VertexId) -> bool {
        self.labels[a as usize] == self.labels[b as usize]
    }
}

/// Computes the (weakly) connected components of `graph`.
pub fn connected_components(graph: &CsrGraph) -> Components {
    let n = graph.vertex_count();
    let mut uf = UnionFind::new(n);
    for v in 0..n as VertexId {
        for &x in graph.neighbors(v) {
            uf.union(v, x);
        }
    }
    // Dense renumbering in order of first appearance.
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for v in 0..n as u32 {
        let root = uf.find(v);
        if labels[root as usize] == u32::MAX {
            labels[root as usize] = sizes.len() as u32;
            sizes.push(0);
        }
        let label = labels[root as usize];
        labels[v as usize] = label;
        sizes[label as usize] += 1;
    }
    Components { labels, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn singletons_without_edges() {
        let g = GraphBuilder::directed(4).build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 4);
        assert_eq!(c.largest(), 1);
        assert!(!c.connected(0, 1));
    }

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::undirected(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.largest(), 3);
        assert!(c.connected(0, 2));
        assert!(c.connected(3, 4));
        assert!(!c.connected(2, 3));
        assert_eq!(c.sizes.iter().sum::<u32>(), 6);
    }

    #[test]
    fn directed_edges_count_as_weak_links() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        let g = b.build();
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn agrees_with_bfs_reachability() {
        let g = gen::presets::livejournal_like(9, gen::GenOptions::seeded(250));
        let c = connected_components(&g);
        // BFS from vertex 0 must reach exactly its component.
        let mut reached = vec![false; g.vertex_count()];
        let mut stack = vec![0u32];
        reached[0] = true;
        let mut count = 1u32;
        while let Some(v) = stack.pop() {
            for &x in g.neighbors(v) {
                if !reached[x as usize] {
                    reached[x as usize] = true;
                    count += 1;
                    stack.push(x);
                }
            }
        }
        assert_eq!(count, c.sizes[c.labels[0] as usize]);
        for v in 0..g.vertex_count() as u32 {
            assert_eq!(reached[v as usize], c.connected(0, v), "vertex {v}");
        }
    }

    #[test]
    fn union_find_primitives() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.find(1), uf.find(2));
        assert_ne!(uf.find(0), uf.find(4));
    }
}
