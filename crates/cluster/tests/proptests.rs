//! Property-based tests of the collective semantics: arbitrary message
//! patterns must be delivered exactly once, in sender order, across any
//! node count.

use knightking_cluster::{run_cluster, Scheduler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every node sends an arbitrary number of tagged messages to every
    /// other node over several rounds; everything must arrive exactly
    /// once, grouped by round, ordered by sender.
    #[test]
    fn exchange_delivers_exactly_once(
        n_nodes in 1usize..7,
        rounds in 1usize..4,
        counts in prop::collection::vec(0usize..20, 1..150),
    ) {
        let results = run_cluster::<(u64, u64, u64), _, _>(n_nodes, |ctx| {
            let n = ctx.n_nodes();
            let mut received: Vec<(u64, u64, u64)> = Vec::new();
            for round in 0..rounds {
                let mut outbox: Vec<Vec<(u64, u64, u64)>> =
                    (0..n).map(|_| Vec::new()).collect();
                for (to, out) in outbox.iter_mut().enumerate() {
                    // Deterministic per-(sender, receiver, round) count.
                    let k = counts[(ctx.node * 31 + to * 7 + round) % counts.len()];
                    for i in 0..k {
                        out.push((ctx.node as u64, round as u64, i as u64));
                    }
                }
                let inbox = ctx.exchange(outbox);
                // Sender-order within one exchange.
                let senders: Vec<u64> = inbox.iter().map(|&(s, _, _)| s).collect();
                let mut sorted = senders.clone();
                sorted.sort_unstable();
                assert_eq!(senders, sorted, "inbox not sender-ordered");
                received.extend(inbox);
            }
            received
        });

        // Global exactly-once check: reconstruct what each node should
        // have received.
        for (me, inbox) in results.iter().enumerate() {
            let mut expected = Vec::new();
            for round in 0..rounds {
                for from in 0..n_nodes {
                    let k = counts[(from * 31 + me * 7 + round) % counts.len()];
                    for i in 0..k {
                        expected.push((from as u64, round as u64, i as u64));
                    }
                }
            }
            prop_assert_eq!(inbox, &expected, "node {} inbox mismatch", me);
        }
    }

    /// Allreduce agrees across nodes and rounds for arbitrary inputs.
    #[test]
    fn allreduce_is_consistent(
        n_nodes in 1usize..7,
        values in prop::collection::vec(0u64..1000, 1..40),
    ) {
        let results = run_cluster::<(), _, _>(n_nodes, |ctx| {
            let mut sums = Vec::new();
            for (round, _) in values.iter().enumerate() {
                let mine = values[(ctx.node + round) % values.len()];
                sums.push(ctx.allreduce_sum(mine));
            }
            sums
        });
        for round in 0..values.len() {
            let expect: u64 = (0..n_nodes)
                .map(|node| values[(node + round) % values.len()])
                .sum();
            for (node, sums) in results.iter().enumerate() {
                prop_assert_eq!(sums[round], expect, "node {} round {}", node, round);
            }
        }
    }

    /// The scheduler processes arbitrary workloads exactly once with
    /// chunk-ordered accumulators, for any thread/chunk configuration.
    #[test]
    fn scheduler_exactly_once(
        threads in 1usize..6,
        chunk in 1usize..70,
        len in 0usize..400,
        light in 0usize..500,
    ) {
        let sched = Scheduler {
            threads,
            chunk_size: chunk,
            light_threshold: light,
        };
        let mut items: Vec<u64> = (0..len as u64).collect();
        let accs = sched.run_chunks(&mut items, Vec::new, |base, slice, acc: &mut Vec<u64>| {
            for (i, x) in slice.iter_mut().enumerate() {
                *x += 1;
                acc.push((base + i) as u64);
            }
        });
        prop_assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
        let flat: Vec<u64> = accs.into_iter().flatten().collect();
        prop_assert_eq!(flat, (0..len as u64).collect::<Vec<u64>>());
    }
}
